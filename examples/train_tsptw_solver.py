"""Pre-training the RL working-route planner (paper Section III-C).

SMORE's feasibility checks call a pre-trained TSPTW solver.  The paper
uses the hierarchical-RL graph pointer network of Ma et al. [16]; this
script trains that model from scratch with the two-phase scheme — the
lower model on time-window satisfaction, the upper model on satisfaction
minus route length — and reports how the learned policy compares to the
insertion heuristic and the exact DP on fresh instances.

Run:  python examples/train_tsptw_solver.py   (about 2 minutes on CPU)

``--history curves.jsonl`` persists the training curves
(:meth:`repro.obs.TrainingHistory.save`); ``--profile profile.jsonl``
runs the whole session under the op-level autograd profiler and prints
the per-op summary (:mod:`repro.obs.profile`).
"""

import argparse

import numpy as np

from repro import obs
from repro.core import Region
from repro.tsptw import (
    ExactDPSolver,
    GPNSolver,
    InsertionSolver,
    TSPTWTrainer,
    TSPTWTrainingConfig,
    make_default_gpn,
    sample_training_worker,
)

REGION = Region(2000.0, 2400.0)
TIME_SPAN = 240.0


def evaluate_solvers(model, rng, num_instances=20):
    """Feasibility rate and mean rtt of GPN vs insertion vs exact DP."""
    solvers = {
        "gpn (greedy)": GPNSolver(model, repair=False),
        "gpn + repair": GPNSolver(model, repair=True),
        "insertion": InsertionSolver(),
        "exact DP": ExactDPSolver(),
    }
    stats = {name: {"feasible": 0, "rtt": []} for name in solvers}
    for _ in range(num_instances):
        worker, tasks = sample_training_worker(rng, REGION, TIME_SPAN,
                                               num_travel=2, num_sensing=4,
                                               window_minutes=60.0)
        sensing = [t for t in tasks if hasattr(t, "tw_start")]
        for name, solver in solvers.items():
            result = solver.plan(worker, sensing)
            if result.feasible:
                stats[name]["feasible"] += 1
                stats[name]["rtt"].append(result.route_travel_time)
    return stats, num_instances


def report(title, stats, count):
    print(f"\n{title}")
    print(f"{'solver':<14} {'feasible':>9} {'mean rtt':>9}")
    for name, row in stats.items():
        rate = row["feasible"] / count
        rtt = np.mean(row["rtt"]) if row["rtt"] else float("nan")
        print(f"{name:<14} {rate:>8.0%} {rtt:>8.1f}m")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--history", default=None, metavar="PATH",
                        help="save the training curves as JSONL to PATH")
    parser.add_argument("--profile", default=None, metavar="PATH",
                        help="profile the run at op level; write the JSONL "
                             "profile to PATH")
    args = parser.parse_args(argv)

    if args.profile:
        with obs.profiling(args.profile) as profiler:
            _run(args)
        print()
        print(obs.render_profile(profiler))
        print(f"\nProfile written to {args.profile}")
    else:
        _run(args)


def _run(args) -> None:
    model = make_default_gpn(REGION, TIME_SPAN, d_model=24, seed=0)
    config = TSPTWTrainingConfig(
        lower_iterations=40, upper_iterations=30, batch_size=6, lr=2e-3,
        num_travel=2, num_sensing=4, window_minutes=60.0,
        time_span=TIME_SPAN)
    trainer = TSPTWTrainer(model, REGION, config,
                           rng=np.random.default_rng(0))

    stats, count = evaluate_solvers(model, np.random.default_rng(123))
    report("before training", stats, count)

    print("\ntraining lower model (time-window satisfaction reward)...")
    trainer.train_lower()
    lower = trainer.history.series("lower")
    print(f"  reward: {np.mean(lower[:5]):.2f} -> {np.mean(lower[-5:]):.2f}")

    print("training upper model (satisfaction - route-length penalty)...")
    trainer.train_upper()
    upper = trainer.history.series("upper")
    print(f"  reward: {np.mean(upper[:5]):.2f} -> {np.mean(upper[-5:]):.2f}")

    # The history is a repro.obs.TrainingHistory: one series per curve,
    # including the per-phase gradient norms recorded every iteration.
    history = trainer.history
    assert len(history.series("lower")) == config.lower_iterations
    assert len(history.series("upper")) == config.upper_iterations
    assert history.last("lower_grad_norm") is not None
    print("\ntraining history:")
    print(history.summary())

    if args.history:
        history.save(args.history)
        print(f"\nHistory written to {args.history} "
              f"(reload with TrainingHistory.load)")

    stats, count = evaluate_solvers(model, np.random.default_rng(123))
    report("after training", stats, count)

    print("\nNote: 'gpn + repair' falls back to the insertion heuristic on "
          "infeasible decodes,\nimplementing the paper's future-work remark "
          "on absorbing the RL solver's false alarms.")


if __name__ == "__main__":
    main()
