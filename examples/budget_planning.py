"""Budget planning: how much should a sensing campaign pay?

A city operator wants to know the coverage-per-budget curve before
committing funds (the question behind the paper's Table II).  This script
sweeps the budget on a LaDe-style last-mile scenario, solves each point
with SMORE's ratio policy, and prints the marginal coverage per extra unit
of budget — showing the diminishing returns the paper observes ("as the
data continues to be collected, the increase of the data coverage becomes
slow").

Run:  python examples/budget_planning.py
"""

import numpy as np

from repro.datasets import InstanceOptions, generate_instances
from repro.smore import RatioSelectionRule, SMORESolver
from repro.tsptw import InsertionSolver

BUDGETS = (100.0, 200.0, 300.0, 400.0, 500.0)
NUM_INSTANCES = 2


def main() -> None:
    solver_factory = lambda: SMORESolver(  # noqa: E731
        InsertionSolver(), RatioSelectionRule(), name="SMORE")

    print(f"{'budget':>7} {'phi':>7} {'tasks':>6} {'spent':>7} "
          f"{'phi/100-budget':>15}")
    previous_phi = 0.0
    previous_budget = 0.0
    for budget in BUDGETS:
        options = InstanceOptions(budget=budget, task_density=0.15)
        instances = generate_instances("lade", NUM_INSTANCES, seed=100,
                                       options=options)
        solutions = [solver_factory().solve(inst) for inst in instances]
        for solution in solutions:
            assert solution.is_valid(), solution.validate()
        phi = float(np.mean([s.objective for s in solutions]))
        tasks = float(np.mean([s.num_completed for s in solutions]))
        spent = float(np.mean([s.total_incentive for s in solutions]))
        marginal = (phi - previous_phi) / (budget - previous_budget) * 100.0
        print(f"{budget:>7.0f} {phi:>7.3f} {tasks:>6.1f} {spent:>7.1f} "
              f"{marginal:>15.3f}")
        previous_phi, previous_budget = phi, budget

    print("\nMarginal coverage per budget unit falls as the budget grows —")
    print("the hierarchical entropy objective saturates (paper, Table II).")


if __name__ == "__main__":
    main()
