"""Delivery campaign: the paper's headline pipeline, end to end.

Scenario: a sensing platform recruits couriers of a Beijing-style delivery
district (the paper's Delivery dataset) to collect air-quality readings
over a 4-hour window with a budget of 300.

The script (1) generates train/val/test instances, (2) trains TASNet —
imitation warm start, then REINFORCE with a critic baseline — and (3)
compares trained SMORE against the greedy and RL baselines on the held-out
test instances.

Run:  python examples/delivery_campaign.py  (about 1-2 minutes on CPU)
"""

import numpy as np

from repro.baselines import JDRLSolver, RandomSolver, TCPGSolver, TVPGSolver
from repro.datasets import InstanceOptions, generate_instances
from repro.smore import (
    SMORESolver,
    TASNet,
    TASNetConfig,
    TASNetPolicy,
    TASNetTrainer,
    TrainingConfig,
    imitation_pretrain,
)
from repro.tsptw import InsertionSolver


def main() -> None:
    options = InstanceOptions(budget=300.0, window_minutes=30.0, alpha=0.5,
                              task_density=0.15)
    train = generate_instances("delivery", 10, seed=0, options=options)
    val = generate_instances("delivery", 2, seed=50, options=options)
    test = generate_instances("delivery", 3, seed=100, options=options)
    print(f"instances: train={len(train)} val={len(val)} test={len(test)}")
    print(f"example:   {test[0].describe()}")

    planner = InsertionSolver()
    net = TASNet(TASNetConfig(d_model=16, num_heads=2, num_layers=1,
                              conv_channels=2),
                 grid_nx=10, grid_ny=12, rng=np.random.default_rng(0))
    policy = TASNetPolicy(net)

    print("\n[1/2] imitation warm start (coverage-incentive-ratio teacher)...")
    losses = imitation_pretrain(policy, planner, train, iterations=25,
                                lr=3e-3, seed=1)
    print(f"      cross-entropy: {losses[0]:.2f} -> {losses[-1]:.2f}")

    print("[2/2] REINFORCE fine-tuning with critic baseline...")
    trainer = TASNetTrainer(policy, planner,
                            TrainingConfig(iterations=15, batch_size=2,
                                           lr=5e-4, seed=2))
    trainer.train(train, val_instances=val)
    print(f"      validation coverage: {trainer.history['val'][-1]:.3f}")

    solvers = [
        RandomSolver(seed=1),
        TVPGSolver(),
        TCPGSolver(),
        JDRLSolver(seed=2),
        SMORESolver(planner, policy, name="SMORE"),
    ]
    print(f"\n{'method':<8} {'phi':>7} {'tasks':>6} {'time':>8}")
    scores = {}
    for solver in solvers:
        solutions = [solver.solve(instance) for instance in test]
        for solution in solutions:
            assert solution.is_valid(), solution.validate()
        name = solutions[0].solver_name
        scores[name] = float(np.mean([s.objective for s in solutions]))
        mean_tasks = np.mean([s.num_completed for s in solutions])
        mean_time = np.mean([s.wall_time for s in solutions])
        print(f"{name:<8} {scores[name]:>7.3f} {mean_tasks:>6.1f} "
              f"{mean_time:>7.2f}s")

    best_baseline = max(v for k, v in scores.items() if k != "SMORE")
    gain = 100.0 * (scores["SMORE"] / best_baseline - 1.0)
    print(f"\nSMORE vs best baseline: {gain:+.1f}% "
          f"(paper reports +5.2% on average)")

    # Operator-facing breakdown of the plan for the first test instance.
    from repro.experiments import analyze_solution

    solution = SMORESolver(planner, policy, name="SMORE").solve(test[0])
    print("\nplan breakdown (instance 0):")
    print(analyze_solution(solution).render())


if __name__ == "__main__":
    main()
