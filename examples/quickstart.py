"""Quickstart: solve a hand-built USMDW instance with SMORE.

Builds a small urban-sensing scenario from scratch — two couriers with
mandatory delivery stops, a 4x4 sensing grid — and solves it three ways:
the coverage-incentive-ratio rule, an (untrained) TASNet policy, and the
TVPG greedy baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.baselines import TVPGSolver
from repro.core import (
    CoverageModel,
    Grid,
    Location,
    Region,
    SensingTask,
    TravelTask,
    USMDWInstance,
    Worker,
)
from repro.smore import (
    RatioSelectionRule,
    SMORESolver,
    TASNet,
    TASNetConfig,
    TASNetPolicy,
)
from repro.tsptw import InsertionSolver


def build_instance() -> USMDWInstance:
    """A 1 km x 1 km district, two couriers, 4-hour sensing project."""
    region = Region(1000.0, 1000.0)
    grid = Grid(region, 4, 4)
    coverage = CoverageModel(grid, time_span=240.0, slot_minutes=60.0,
                             alpha=0.5)

    workers = (
        # Courier 1: west-to-east with two deliveries; 2h on the clock.
        Worker(1, Location(50, 100), Location(950, 100), 0.0, 150.0,
               (TravelTask(10, Location(350, 150), 10.0),
                TravelTask(11, Location(650, 80), 10.0))),
        # Courier 2: a loop in the north half, departing at minute 60.
        Worker(2, Location(100, 900), Location(150, 880), 60.0, 220.0,
               (TravelTask(20, Location(500, 850), 10.0),
                TravelTask(21, Location(820, 930), 10.0))),
    )

    # One sensing task per grid cell, windows staggered over the 4 hours.
    tasks = []
    for k, (i, j) in enumerate(grid.all_cells()):
        center = grid.cell_center(i, j)
        tw_start = 60.0 * (k % 4)
        tasks.append(SensingTask(100 + k, center, tw_start, tw_start + 60.0,
                                 service_time=5.0))

    return USMDWInstance(workers=workers, sensing_tasks=tuple(tasks),
                         budget=120.0, mu=1.0, coverage=coverage,
                         name="quickstart")


def main() -> None:
    instance = build_instance()
    print(instance.describe())
    planner = InsertionSolver()

    solvers = [
        SMORESolver(planner, RatioSelectionRule(), name="SMORE (ratio rule)"),
        SMORESolver(
            planner,
            TASNetPolicy(TASNet(
                TASNetConfig(d_model=16, num_heads=2, num_layers=1,
                             conv_channels=2),
                grid_nx=4, grid_ny=4, rng=np.random.default_rng(0))),
            name="SMORE (untrained TASNet)"),
        TVPGSolver(),
    ]

    print(f"\n{'solver':<28} {'phi':>7} {'tasks':>6} {'spent':>8} {'time':>7}")
    for solver in solvers:
        solution = solver.solve(instance)
        assert solution.is_valid(), solution.validate()
        print(f"{solution.solver_name:<28} {solution.objective:>7.3f} "
              f"{solution.num_completed:>6d} "
              f"{solution.total_incentive:>8.1f} "
              f"{solution.wall_time:>6.2f}s")

    # Inspect one worker's planned route.
    best = solvers[0].solve(instance)
    for worker_id, route in sorted(best.routes.items()):
        timing = route.simulate()
        stops = " -> ".join(
            f"{'S' if hasattr(s.task, 'tw_start') else 'D'}{s.task.task_id}"
            f"@{s.service_start:.0f}m" for s in timing.stops)
        print(f"\nworker {worker_id}: depart {timing.departure:.0f}m, "
              f"{stops}, arrive {timing.arrival_at_destination:.0f}m")


if __name__ == "__main__":
    main()
