"""From raw trip logs to sensing assignments — the production pipeline.

Real deployments of the paper's system do not receive Worker objects: they
receive trajectory data (courier GPS traces, photo check-in sequences) and
must derive the multi-destination structure first.  This script walks the
full pipeline:

1. synthesize noisy GPS trip logs for a fleet of couriers (forward model);
2. recover each worker — endpoints, mandatory stops, time window — with
   stay-point detection (Li et al., 2008);
3. assemble a USMDW instance from the recovered workers;
4. solve it with SMORE and export the dispatch plan as JSON.

Run:  python examples/trajectory_pipeline.py
"""

import json

import numpy as np

from repro.core import (
    CoverageModel,
    Grid,
    Region,
    USMDWInstance,
    make_sensing_grid_tasks,
)
from repro.datasets import (
    delivery_generator,
    synthesize_trip,
    worker_from_trajectory,
)
from repro.smore import RatioSelectionRule, SMORESolver
from repro.tsptw import InsertionSolver

NUM_COURIERS = 5
GPS_NOISE_METERS = 8.0


def main() -> None:
    rng = np.random.default_rng(42)
    generator = delivery_generator()
    spec = generator.spec

    # --- 1. trip logs (in reality: the logistics company's GPS archive) --
    ground_truth = generator.make_workers(rng, count=NUM_COURIERS)
    trips = [
        synthesize_trip(worker, sample_period=1.0,
                        noise_std=GPS_NOISE_METERS, rng=rng)
        for worker in ground_truth
    ]
    print(f"synthesized {len(trips)} trip logs, "
          f"{sum(len(t) for t in trips)} GPS samples total")

    # --- 2. stay-point extraction -> workers -----------------------------
    workers = []
    for i, (trip, truth) in enumerate(zip(trips, ground_truth)):
        worker = worker_from_trajectory(trip, worker_id=i + 1, radius=40.0,
                                        min_duration=5.0, service_time=10.0,
                                        slack=1.5)
        workers.append(worker)
        print(f"  courier {i + 1}: {truth.num_travel_tasks} true stops -> "
              f"{worker.num_travel_tasks} detected, "
              f"window [{worker.earliest_departure:.0f}, "
              f"{worker.latest_arrival:.0f}] min")

    # --- 3. the sensing project -----------------------------------------
    grid = Grid(Region(spec.region.width, spec.region.height),
                spec.grid_nx, spec.grid_ny)
    tasks = make_sensing_grid_tasks(grid, spec.time_span, 30.0,
                                    service_time=5.0, density=0.15, rng=rng)
    # Clamp worker windows into the project span (trips start at minute 0
    # here; real pipelines align clocks in preprocessing).
    instance = USMDWInstance(
        workers=tuple(workers), sensing_tasks=tuple(tasks), budget=300.0,
        mu=1.0,
        coverage=CoverageModel(grid, spec.time_span, 30.0, alpha=0.5),
        speed=spec.speed, name="from-trajectories")
    print(f"\ninstance: {instance.describe()}")

    # --- 4. solve and export ---------------------------------------------
    solver = SMORESolver(InsertionSolver(speed=spec.speed),
                         RatioSelectionRule(), name="SMORE")
    solution = solver.solve(instance)
    assert solution.is_valid(), solution.validate()
    print(f"solution: {solution.summary()}")

    plan = solution.to_dict()
    print(f"\ndispatch plan (JSON, first worker):")
    first = next(iter(plan["workers"].values()), None)
    print(json.dumps({"objective": plan["objective"],
                      "total_incentive": plan["total_incentive"],
                      "example_worker": first}, indent=2)[:900])


if __name__ == "__main__":
    main()
