"""Tourism campaign: recruiting tourists and visualising the coverage.

Scenario: the paper's second motivating workload — tourists visiting
Melbourne-style attractions over a 6-hour afternoon.  Tourists have fewer,
longer stops (20 minutes per POI) than couriers, and their movements
cluster around landmarks, leaving most of the city unsensed unless routes
are re-planned.

The script compares SMORE (ratio rule — no training needed for a demo)
with the opportunistic no-re-planning scenario of the paper's Figure 6 and
prints the completion heatmaps.

Run:  python examples/tourism_campaign.py
"""

import numpy as np

from repro.datasets import InstanceOptions, generate_instances
from repro.experiments.case_study import (
    completion_heatmap,
    opportunistic_solution,
)
from repro.smore import RatioSelectionRule, SMORESolver
from repro.tsptw import InsertionSolver

SHADES = " .:-=+*#%@"


def render(heat: np.ndarray) -> str:
    top = heat.max() or 1.0
    rows = []
    for j in range(heat.shape[1] - 1, -1, -1):
        row = "".join(SHADES[int(round((len(SHADES) - 1) * heat[i, j] / top))] * 2
                      for i in range(heat.shape[0]))
        rows.append("|" + row + "|")
    return "\n".join(rows)


def main() -> None:
    options = InstanceOptions(budget=300.0, window_minutes=30.0, alpha=0.5,
                              task_density=0.15)
    instance = generate_instances("tourism", 1, seed=100, options=options)[0]
    print(instance.describe())

    # Scenario A: tourists keep their own itineraries and sense only what
    # they walk past.
    passive = opportunistic_solution(instance)
    passive_tasks = getattr(passive, "opportunistic_tasks")
    passive_phi = instance.coverage.phi(passive_tasks)

    # Scenario B: SMORE re-plans itineraries within the incentive budget.
    solver = SMORESolver(InsertionSolver(speed=instance.speed),
                         RatioSelectionRule(), name="SMORE")
    active = solver.solve(instance)
    assert active.is_valid(), active.validate()

    print(f"\nwithout re-planning: phi={passive_phi:.3f} "
          f"({len(passive_tasks)} tasks, incentive 0)")
    print(f"with SMORE:          phi={active.objective:.3f} "
          f"({active.num_completed} tasks, "
          f"incentive {active.total_incentive:.0f})")

    print("\ncompletion heatmap — without re-planning:")
    print(render(completion_heatmap(instance, passive_tasks)))
    print("\ncompletion heatmap — with SMORE:")
    print(render(completion_heatmap(instance, active.completed_tasks)))

    covered_passive = len({instance.coverage.grid.cell_of(t.location)
                           for t in passive_tasks})
    covered_active = len({instance.coverage.grid.cell_of(t.location)
                          for t in active.completed_tasks})
    total = instance.coverage.grid.num_cells
    print(f"\ncells covered: {covered_passive}/{total} -> "
          f"{covered_active}/{total}")


if __name__ == "__main__":
    main()
