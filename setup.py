from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "SMORE: Urban Sensing for Multi-Destination Workers via Deep "
        "Reinforcement Learning (ICDE 2024) - full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
)
