"""Cheapest-feasible-insertion TSPTW heuristic with or-opt improvement.

The workhorse planner of this reproduction: polynomial, handles windows
natively, and is accurate enough that SMORE's feasibility checks rarely
produce the "false alarms" the paper attributes to approximate solvers.

Construction inserts tasks one by one — mandatory travel tasks first (they
are unconstrained and shape the backbone), then sensing tasks in order of
window start — each at the position minimising the route travel time among
all *feasible* positions.  Improvement then relocates single tasks (or-opt
with segment length 1) while feasibility holds.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..core.entities import SensingTask, Worker
from ..core.geometry import DEFAULT_SPEED
from ..core.route import WorkingRoute, simulate_route
from .base import PlannerBase, RouteResult, combined_tasks

__all__ = ["InsertionSolver", "cheapest_insertion_position"]


def _advance(clock: float, x: float, y: float, task, speed: float,
             is_sensing: bool) -> float | None:
    """Travel to ``task``, wait if needed, service it; None if window missed."""
    loc = task.location
    clock += math.hypot(loc.x - x, loc.y - y) / speed
    if is_sensing:
        if clock < task.tw_start:
            clock = task.tw_start
        elif clock > task.tw_end - task.service_time:
            return None
    return clock + task.service_time


def cheapest_insertion_position(worker: Worker, tasks: list, new_task,
                                speed: float) -> tuple[int, float] | None:
    """Best feasible position for ``new_task`` in ``tasks``.

    Returns ``(position, route_travel_time_after)`` or None when every
    position violates a window or the latest-arrival constraint.  Runs a
    lean prefix-reusing scan: the timing state after each existing stop is
    computed once, and each candidate position only re-propagates the
    suffix.
    """
    departure = worker.earliest_departure
    latest = worker.latest_arrival
    dest = worker.destination
    sensing_flags = [isinstance(t, SensingTask) for t in tasks]
    new_is_sensing = isinstance(new_task, SensingTask)

    # prefix[p]: clock after completing tasks[:p] (None once infeasible).
    prefix: list[float | None] = [departure]
    px, py = worker.origin.x, worker.origin.y
    positions = [(px, py)]
    clock: float | None = departure
    for task, is_sensing in zip(tasks, sensing_flags):
        if clock is not None:
            clock = _advance(clock, positions[-1][0], positions[-1][1],
                             task, speed, is_sensing)
        prefix.append(clock)
        positions.append((task.location.x, task.location.y))

    best: tuple[int, float] | None = None
    for position in range(len(tasks) + 1):
        clock = prefix[position]
        if clock is None:
            break  # prefix already infeasible; later positions share it
        x, y = positions[position]
        clock = _advance(clock, x, y, new_task, speed, new_is_sensing)
        if clock is None:
            continue
        x, y = new_task.location.x, new_task.location.y
        ok = True
        for idx in range(position, len(tasks)):
            task = tasks[idx]
            clock = _advance(clock, x, y, task, speed, sensing_flags[idx])
            if clock is None:
                ok = False
                break
            x, y = task.location.x, task.location.y
            # A suffix stop finishing later than the pure-wait slack of the
            # remaining route cannot recover; the final check below catches it.
        if not ok:
            continue
        clock += math.hypot(dest.x - x, dest.y - y) / speed
        if clock > latest + 1e-9:
            continue
        rtt = clock - departure
        if best is None or rtt < best[1]:
            best = (position, rtt)
    return best


class InsertionSolver(PlannerBase):
    """Cheapest feasible insertion plus or-opt local search.

    Parameters
    ----------
    speed:
        Worker speed (m/min).
    improvement_rounds:
        Maximum or-opt sweeps after construction; 0 disables improvement.
    """

    def __init__(self, speed: float = DEFAULT_SPEED, improvement_rounds: int = 2,
                 use_two_opt: bool = False):
        self.speed = speed
        self.improvement_rounds = improvement_rounds
        self.use_two_opt = use_two_opt

    # ------------------------------------------------------------------ #
    def plan(self, worker: Worker,
             sensing_tasks: Sequence[SensingTask]) -> RouteResult:
        all_tasks = combined_tasks(worker, sensing_tasks)
        if not all_tasks:
            return RouteResult.from_route(WorkingRoute(worker, (), speed=self.speed))

        # Travel tasks first (windowless backbone), then sensing tasks by
        # window start so early windows are placed while slack remains.
        travel = list(worker.travel_tasks)
        sensing = sorted(sensing_tasks, key=lambda s: (s.tw_start, s.task_id))

        route_tasks: list = []
        for task in travel + sensing:
            best = cheapest_insertion_position(worker, route_tasks, task, self.speed)
            if best is None:
                return RouteResult.infeasible()
            route_tasks.insert(best[0], task)

        route_tasks = self._or_opt(worker, route_tasks)
        if self.use_two_opt:
            route_tasks = self._two_opt(worker, route_tasks)
        route = WorkingRoute(worker, tuple(route_tasks), speed=self.speed)
        return RouteResult.from_route(route)

    def plan_with_insertion(self, worker: Worker, base_tasks: Sequence,
                            new_task) -> RouteResult:
        """Insert one task into an existing feasible order (no reordering).

        The incremental feasibility check SMORE's candidate updates rely
        on: O(n^2) instead of rebuilding the whole route.  The result is a
        valid upper bound on the optimal route travel time.
        """
        best = cheapest_insertion_position(worker, list(base_tasks), new_task,
                                           self.speed)
        if best is None:
            return RouteResult.infeasible()
        position, _rtt = best
        tasks = list(base_tasks)
        tasks.insert(position, new_task)
        route = WorkingRoute(worker, tuple(tasks), speed=self.speed)
        return RouteResult.from_route(route)

    def _two_opt(self, worker: Worker, tasks: list) -> list:
        """Classic 2-opt: reverse segments while feasible and improving.

        Time windows make many reversals infeasible, so this is a light
        polish on top of or-opt rather than the primary search.
        """
        if len(tasks) < 3:
            return tasks
        current = list(tasks)
        current_rtt = simulate_route(worker, current, speed=self.speed).route_travel_time
        for _ in range(self.improvement_rounds):
            improved = False
            for i in range(len(current) - 1):
                for j in range(i + 1, len(current)):
                    candidate = (current[:i] + current[i:j + 1][::-1]
                                 + current[j + 1:])
                    timing = simulate_route(worker, candidate, speed=self.speed)
                    if timing.feasible and \
                            timing.route_travel_time < current_rtt - 1e-9:
                        current = candidate
                        current_rtt = timing.route_travel_time
                        improved = True
            if not improved:
                break
        return current

    # ------------------------------------------------------------------ #
    def _or_opt(self, worker: Worker, tasks: list) -> list:
        """Relocate single tasks while the route travel time improves."""
        if len(tasks) < 2 or self.improvement_rounds <= 0:
            return tasks
        current = list(tasks)
        current_rtt = simulate_route(worker, current, speed=self.speed).route_travel_time
        for _ in range(self.improvement_rounds):
            improved = False
            for i in range(len(current)):
                moved = current[i]
                rest = current[:i] + current[i + 1:]
                best = cheapest_insertion_position(worker, rest, moved, self.speed)
                if best is not None and best[1] < current_rtt - 1e-9:
                    rest.insert(best[0], moved)
                    current = rest
                    current_rtt = best[1]
                    improved = True
            if not improved:
                break
        return current
