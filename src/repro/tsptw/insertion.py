"""Cheapest-feasible-insertion TSPTW heuristic with or-opt improvement.

The workhorse planner of this reproduction: polynomial, handles windows
natively, and is accurate enough that SMORE's feasibility checks rarely
produce the "false alarms" the paper attributes to approximate solvers.

Construction inserts tasks one by one — mandatory travel tasks first (they
are unconstrained and shape the backbone), then sensing tasks in order of
window start — each at the position minimising the route travel time among
all *feasible* positions.  Improvement then relocates single tasks (or-opt
with segment length 1) while feasibility holds.

Two engines implement the position scoring:

* the object path (``use_kernels=False``): every candidate check is an
  independent per-position suffix re-propagation over Python objects —
  the original reference implementation;
* the kernel path (default): batched candidate checks
  (:meth:`InsertionSolver.plan_insertions_many`) run one vectorized
  :func:`repro.tsptw.kernels.sweep_insertions` over the packed arrays of
  a bound instance (:meth:`InsertionSolver.bind_instance`), scoring every
  (position, task) lane at once, and per-result timings materialise
  lazily.  Single-insertion scans keep the scalar engine in both modes —
  one task against one route has no lanes to amortize a pack over, and
  the pure-Python scan measures faster than numpy element access at
  every route size.

Both engines produce bit-identical results (same floats, same argmin
tie-breaking), verified by randomized parity tests, so seeded rollouts,
cached plans and the fork pool are unaffected by the switch.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Callable, Sequence

from ..core.entities import SensingTask, TravelTask, Worker
from ..core.geometry import DEFAULT_SPEED, Location
from ..core.packed import packed_instance
from ..core.route import WorkingRoute, simulate_route
from ..obs.profile import scope as profile_scope
from . import kernels
from .base import PlannerBase, RouteResult, combined_tasks

__all__ = ["InsertionSolver", "cheapest_insertion_position"]

#: Batch size at which ``plan_insertions_many`` switches from looped
#: scalar scans to the vectorized sweep (numpy per-op overhead dominates
#: below this).
_SWEEP_MIN_TASKS = 4

#: How many distinct bound instances a solver retains (LRU).  Multi-
#: instance decoding binds every instance in a batch up front and then
#: interleaves planner calls across them; eviction only drops a worker's
#: fast path (packed arrays, base-route memo) — never substitutes another
#: instance's arrays — so an undersized cap costs speed, not correctness.
_MAX_BOUND_INSTANCES = 64

DistFn = Callable[[Location, Location], float]


class _KernelResult:
    """Duck-typed :class:`RouteResult` for the kernel engine.

    Feasibility and route travel time come straight from the kernel scan;
    the per-stop :class:`~repro.core.route.RouteTiming` — which most
    consumers (candidate tables, caches) never read — is materialised
    lazily by simulating the route on first access, with identical values.
    """

    __slots__ = ("route", "feasible", "pos", "_rtt", "_timing")

    def __init__(self, route: WorkingRoute, rtt: float, feasible: bool,
                 pos: int | None = None):
        self.route = route
        self.feasible = feasible
        self.pos = pos
        self._rtt = rtt
        self._timing = None

    @property
    def timing(self):
        if self._timing is None:
            self._timing = self.route.simulate()
        return self._timing

    @property
    def route_travel_time(self) -> float:
        return self._rtt


class _LazyInsertionResult:
    """Sweep hit whose :class:`WorkingRoute` is built only on demand.

    A candidate sweep scores every available task against a worker's
    route, but downstream only ever walks the route of the one entry the
    policy picks — so the tuple splice and route construction for the
    other ~hundred hits per step are pure waste.  This result carries the
    (base order, position, task) triple instead and exposes
    :meth:`make_route` for consumers (the candidate table) that can defer
    construction themselves; ``route`` / ``timing`` materialise eagerly
    for anyone else, with values identical to the eager path.
    """

    __slots__ = ("worker", "base", "pos", "task", "speed", "feasible",
                 "_rtt", "_route", "_timing")

    def __init__(self, worker: Worker, base: tuple, pos: int, task,
                 speed: float, rtt: float, feasible: bool):
        self.worker = worker
        self.base = base
        self.pos = pos
        self.task = task
        self.speed = speed
        self.feasible = feasible
        self._rtt = rtt
        self._route = None
        self._timing = None

    def make_route(self) -> WorkingRoute:
        if self._route is None:
            tasks = self.base[:self.pos] + (self.task,) + self.base[self.pos:]
            self._route = WorkingRoute(self.worker, tasks, speed=self.speed)
        return self._route

    @property
    def route(self) -> WorkingRoute:
        return self.make_route()

    @property
    def timing(self):
        if self._timing is None:
            self._timing = self.make_route().simulate()
        return self._timing

    @property
    def route_travel_time(self) -> float:
        return self._rtt


def _advance(clock: float, d: float, task, speed: float,
             is_sensing: bool) -> float | None:
    """Travel ``d`` meters to ``task``, wait if needed, service it;
    None if the window is missed."""
    clock += d / speed
    if is_sensing:
        if clock < task.tw_start:
            clock = task.tw_start
        elif clock > task.tw_end - task.service_time:
            return None
    return clock + task.service_time


def cheapest_insertion_position(worker: Worker, tasks: list, new_task,
                                speed: float,
                                dist: DistFn | None = None,
                                min_position: int = 0
                                ) -> tuple[int, float] | None:
    """Best feasible position for ``new_task`` in ``tasks``.

    Returns ``(position, route_travel_time_after)`` or None when every
    position violates a window or the latest-arrival constraint.  Runs a
    lean prefix-reusing scan: the timing state after each existing stop is
    computed once, and each candidate position only re-propagates the
    suffix.  ``dist`` optionally replaces the inline ``math.hypot`` with a
    shared travel-distance provider (e.g.
    :meth:`~repro.core.packed.PackedInstance.distance_between`); distances
    are identical either way, so results do not depend on it.

    ``min_position`` anchors the scan at a mid-route position: positions
    before it are never considered, which is how dynamic re-planning
    respects the committed prefix of a worker already en route (the stops
    the worker has departed toward cannot be reordered or preceded by a
    new stop).
    """
    departure = worker.earliest_departure
    latest = worker.latest_arrival
    dest = worker.destination
    sensing_flags = [isinstance(t, SensingTask) for t in tasks]
    new_is_sensing = isinstance(new_task, SensingTask)
    hypot = math.hypot

    # prefix[p]: clock after completing tasks[:p] (None once infeasible).
    prefix: list[float | None] = [departure]
    positions: list[Location] = [worker.origin]
    clock: float | None = departure
    for task, is_sensing in zip(tasks, sensing_flags):
        if clock is not None:
            prev = positions[-1]
            loc = task.location
            d = (dist(prev, loc) if dist is not None
                 else hypot(loc.x - prev.x, loc.y - prev.y))
            clock = _advance(clock, d, task, speed, is_sensing)
        prefix.append(clock)
        positions.append(task.location)

    new_loc = new_task.location
    best: tuple[int, float] | None = None
    for position in range(min_position, len(tasks) + 1):
        clock = prefix[position]
        if clock is None:
            break  # prefix already infeasible; later positions share it
        prev = positions[position]
        d = (dist(prev, new_loc) if dist is not None
             else hypot(new_loc.x - prev.x, new_loc.y - prev.y))
        clock = _advance(clock, d, new_task, speed, new_is_sensing)
        if clock is None:
            continue
        prev = new_loc
        ok = True
        for idx in range(position, len(tasks)):
            task = tasks[idx]
            loc = task.location
            d = (dist(prev, loc) if dist is not None
                 else hypot(loc.x - prev.x, loc.y - prev.y))
            clock = _advance(clock, d, task, speed, sensing_flags[idx])
            if clock is None:
                ok = False
                break
            prev = loc
            # A suffix stop finishing later than the pure-wait slack of the
            # remaining route cannot recover; the final check below catches it.
        if not ok:
            continue
        d = (dist(prev, dest) if dist is not None
             else hypot(dest.x - prev.x, dest.y - prev.y))
        clock += d / speed
        if clock > latest + 1e-9:
            continue
        rtt = clock - departure
        if best is None or rtt < best[1]:
            best = (position, rtt)
    return best


class InsertionSolver(PlannerBase):
    """Cheapest feasible insertion plus or-opt local search.

    Parameters
    ----------
    speed:
        Worker speed (m/min).
    improvement_rounds:
        Maximum or-opt sweeps after construction; 0 disables improvement.
    use_kernels:
        Batched candidate checks scored by the vectorized packed-array
        sweep (default) or by looped object-path scans.  Results are
        bit-identical; the flag exists so the object path stays available
        as a reference and for A/B benchmarking.
    """

    def __init__(self, speed: float = DEFAULT_SPEED, improvement_rounds: int = 2,
                 use_two_opt: bool = False, use_kernels: bool = True):
        self.speed = speed
        self.improvement_rounds = improvement_rounds
        self.use_two_opt = use_two_opt
        self.use_kernels = use_kernels
        self._packed = None
        # id(packed) -> packed, LRU-ordered; bounds how many instances'
        # bindings a long-lived solver retains.
        self._bound: OrderedDict[int, object] = OrderedDict()
        # id(worker) -> (worker, packed).  Holding the worker keeps its id
        # stable for the entry's lifetime; worker ids alone are NOT unique
        # across instances, so every per-worker table is identity-keyed.
        self._worker_pack: dict[int, tuple[Worker, object]] = {}
        self._base_cache: dict[int, RouteResult] = {}

    # ------------------------------------------------------------------ #
    def bind_instance(self, instance) -> None:
        """Share the instance's packed arrays / travel-distance matrix.

        Kernels work unbound too (they fall back to ``math.hypot``), but a
        bound solver reuses one lazily built distance matrix across every
        planner call — and, through copy-on-write ``fork``, across pool
        children.  Binding also enables the per-worker base-route memo:
        ``plan(worker, [])`` is a pure function of the (immutable) bound
        instance, and candidate sweeps re-request it every initialisation.

        A solver may be bound to several instances at once (multi-instance
        decoding interleaves planner calls across a batch of environments
        sharing one solver); each call resolves its packed arrays through
        the *worker's* instance, so bindings never bleed across instances.
        """
        packed = packed_instance(instance)
        key = id(packed)
        if key in self._bound:
            self._bound.move_to_end(key)
        else:
            self._bound[key] = packed
            for w in instance.workers:
                self._worker_pack[id(w)] = (w, packed)
            while len(self._bound) > _MAX_BOUND_INSTANCES:
                _, evicted = self._bound.popitem(last=False)
                stale = [wid for wid, (_, p) in self._worker_pack.items()
                         if p is evicted]
                for wid in stale:
                    del self._worker_pack[wid]
                    self._base_cache.pop(wid, None)
        self._packed = packed

    def _packed_for(self, worker: Worker):
        """The bound packed arrays of the worker's own instance, or None."""
        entry = self._worker_pack.get(id(worker))
        return entry[1] if entry is not None else None

    def base_route(self, worker: Worker) -> RouteResult:
        wid = id(worker)
        if wid not in self._worker_pack:
            return self.plan(worker, [])
        result = self._base_cache.get(wid)
        if result is None:
            result = self.plan(worker, [])
            self._base_cache[wid] = result
        return result

    def _cheapest(self, worker: Worker, tasks: list, new_task,
                  min_position: int = 0) -> tuple[int, float] | None:
        # Single-insertion scans run the scalar engine in BOTH modes: one
        # position against one task has no lanes to vectorize, and the
        # pure-Python scan (C-level math.hypot, unboxed floats) measures
        # faster than numpy element access at every route size.  The
        # packed kernels take over exactly where vectorization pays —
        # the batched sweep in :meth:`plan_insertions_many`.
        return cheapest_insertion_position(worker, tasks, new_task,
                                           self.speed,
                                           min_position=min_position)

    def _route_result(self, worker: Worker, tasks: Sequence,
                      known: tuple[bool, float] | None = None,
                      covers: bool | None = None,
                      pos: int | None = None) -> RouteResult:
        """Build the planner's result for a final task order.

        ``known`` is the (windows-feasible, rtt) pair when the kernel scan
        already established it — the scan replays the simulation's exact
        op sequence, so reusing its numbers instead of re-simulating is
        bitwise identical and skips a per-result repack.  ``covers``
        short-circuits the travel-coverage check when the caller knows it
        (inserting a sensing task cannot change travel-task membership).
        """
        route = WorkingRoute(worker, tuple(tasks), speed=self.speed)
        if known is not None and self.use_kernels:
            windows_ok, rtt = known
            if covers is None:
                covers = route.covers_all_travel_tasks()
            return _KernelResult(route, rtt, windows_ok and covers, pos=pos)
        result = RouteResult.from_route(route)
        if pos is not None:
            result = RouteResult(result.route, result.timing,
                                 result.feasible, pos=pos)
        return result

    # ------------------------------------------------------------------ #
    def plan(self, worker: Worker,
             sensing_tasks: Sequence[SensingTask]) -> RouteResult:
        all_tasks = combined_tasks(worker, sensing_tasks)
        if not all_tasks:
            return self._route_result(worker, ())

        # Travel tasks first (windowless backbone), then sensing tasks by
        # window start so early windows are placed while slack remains.
        travel = list(worker.travel_tasks)
        sensing = sorted(sensing_tasks, key=lambda s: (s.tw_start, s.task_id))

        route_tasks: list = []
        for task in travel + sensing:
            best = self._cheapest(worker, route_tasks, task)
            if best is None:
                return RouteResult.infeasible()
            route_tasks.insert(best[0], task)

        route_tasks = self._or_opt(worker, route_tasks)
        if self.use_two_opt:
            route_tasks = self._two_opt(worker, route_tasks)
        return self._route_result(worker, route_tasks)

    def plan_with_insertion(self, worker: Worker, base_tasks: Sequence,
                            new_task, min_position: int = 0) -> RouteResult:
        """Insert one task into an existing feasible order (no reordering).

        The incremental feasibility check SMORE's candidate updates rely
        on: O(n^2) instead of rebuilding the whole route.  The result is a
        valid upper bound on the optimal route travel time.
        ``min_position`` anchors the scan mid-route (dynamic re-planning
        from a worker's committed position); 0 keeps the historical
        whole-route scan.
        """
        best = self._cheapest(worker, list(base_tasks), new_task,
                              min_position=min_position)
        if best is None:
            return RouteResult.infeasible()
        position, rtt = best
        tasks = list(base_tasks)
        tasks.insert(position, new_task)
        if self.use_kernels:
            return self._route_result(worker, tasks, known=(True, rtt),
                                      pos=position)
        return self._route_result(worker, tasks, pos=position)

    def plan_insertions_many(self, worker: Worker, base_tasks: Sequence,
                             new_tasks: Sequence,
                             min_position: int = 0) -> list[RouteResult]:
        """Check many single-task insertions into one base order.

        The batched entry point behind ``CandidateTable``'s init/recompute
        sweeps.  Available in *both* engine modes — with kernels one
        vectorized sweep scores every (position, task) lane at once; the
        object path loops :meth:`plan_with_insertion` — so perf counters
        and results are identical whichever engine runs.  ``min_position``
        restricts every lane to positions at or past a worker's committed
        mid-route position, identically in both engines.
        """
        new_tasks = list(new_tasks)
        if not self.use_kernels or len(new_tasks) < _SWEEP_MIN_TASKS:
            return [self.plan_with_insertion(worker, base_tasks, task,
                                             min_position=min_position)
                    for task in new_tasks]
        base = list(base_tasks)
        with profile_scope("kernel.insertion_sweep"):
            pack = kernels.pack_route(worker, base, self.speed,
                                      self._packed_for(worker))
            hits = kernels.sweep_insertions(pack, new_tasks,
                                            min_position=min_position)
        # Sensing-task insertion leaves travel membership unchanged, so the
        # coverage verdict is a property of the base order alone.
        base_tup = tuple(base)
        present = {t.task_id for t in base_tup
                   if isinstance(t, TravelTask)}
        covers = all(d.task_id in present for d in worker.travel_tasks)
        results = []
        for task, hit in zip(new_tasks, hits):
            if hit is None:
                results.append(RouteResult.infeasible())
                continue
            results.append(_LazyInsertionResult(
                worker, base_tup, hit[0], task, self.speed, hit[1], covers))
        return results

    def _two_opt(self, worker: Worker, tasks: list) -> list:
        """Classic 2-opt: reverse segments while feasible and improving.

        Time windows make many reversals infeasible, so this is a light
        polish on top of or-opt rather than the primary search.
        """
        if len(tasks) < 3:
            return tasks
        current = list(tasks)
        current_rtt = self._route_rtt(worker, current)[1]
        for _ in range(self.improvement_rounds):
            improved = False
            for i in range(len(current) - 1):
                for j in range(i + 1, len(current)):
                    candidate = (current[:i] + current[i:j + 1][::-1]
                                 + current[j + 1:])
                    feasible, rtt = self._route_rtt(worker, candidate)
                    if feasible and rtt < current_rtt - 1e-9:
                        current = candidate
                        current_rtt = rtt
                        improved = True
            if not improved:
                break
        return current

    def _route_rtt(self, worker: Worker, tasks: list) -> tuple[bool, float]:
        """(window-feasible, rtt) of an order."""
        timing = simulate_route(worker, tasks, speed=self.speed)
        return timing.feasible, timing.route_travel_time

    # ------------------------------------------------------------------ #
    def _or_opt(self, worker: Worker, tasks: list) -> list:
        """Relocate single tasks while the route travel time improves."""
        if len(tasks) < 2 or self.improvement_rounds <= 0:
            return tasks
        current = list(tasks)
        current_rtt = self._route_rtt(worker, current)[1]
        for _ in range(self.improvement_rounds):
            improved = False
            for i in range(len(current)):
                moved = current[i]
                rest = current[:i] + current[i + 1:]
                best = self._cheapest(worker, rest, moved)
                if best is not None and best[1] < current_rtt - 1e-9:
                    rest.insert(best[0], moved)
                    current = rest
                    current_rtt = best[1]
                    improved = True
            if not improved:
                break
        return current
