"""Graph pointer network for TSPTW (after Ma et al. [16]).

The paper pre-trains a hierarchical-RL TSPTW solver and calls it for every
feasibility check.  This module implements the policy network: a
Transformer encoder over task nodes and a pointer decoder that selects the
next node step by step.  Following the paper's adaptation, the decoder
query carries both the origin and the final destination embedding (the
original method has a single depot).

Node features (normalised to [0, 1] by the scale config):
``(x, y, tw_start, tw_end, service_time, is_travel_task)``.

:class:`HierarchicalGPN` composes a *lower* model, trained to satisfy time
windows, with an *upper* model that consumes the lower policy's output as
an extra feature and is trained on the combined reward (window satisfaction
minus a route-length penalty) — the two-level scheme of [16].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .. import nn
from ..core.entities import SensingTask, TravelTask, Worker
from ..core.geometry import DEFAULT_SPEED, travel_time
from ..core.route import WorkingRoute
from .base import PlannerBase, RouteResult, combined_tasks
from .insertion import InsertionSolver

__all__ = ["GPNScale", "GPNModel", "HierarchicalGPN", "GPNSolver", "DecodeResult"]

Task = TravelTask | SensingTask

_NODE_FEATURES = 6


@dataclass(frozen=True)
class GPNScale:
    """Normalisation constants for node features."""

    space: float      # meters; divides coordinates
    time: float       # minutes; divides all times

    def node_features(self, worker: Worker, tasks: Sequence[Task]) -> np.ndarray:
        rows = []
        for task in tasks:
            if isinstance(task, SensingTask):
                tw_s, tw_e, is_travel = task.tw_start, task.tw_end, 0.0
            else:
                tw_s, tw_e = worker.earliest_departure, worker.latest_arrival
                is_travel = 1.0
            rows.append([
                task.location.x / self.space,
                task.location.y / self.space,
                tw_s / self.time,
                tw_e / self.time,
                task.service_time / self.time,
                is_travel,
            ])
        return np.asarray(rows, dtype=np.float64).reshape(len(tasks), _NODE_FEATURES)

    def endpoint_features(self, worker: Worker) -> np.ndarray:
        """Features of origin and destination: position + time bounds."""
        return np.array([
            [worker.origin.x / self.space, worker.origin.y / self.space,
             worker.earliest_departure / self.time],
            [worker.destination.x / self.space, worker.destination.y / self.space,
             worker.latest_arrival / self.time],
        ])


@dataclass
class DecodeResult:
    """A decoded visiting order with its log-probability."""

    order: list[int]
    log_prob: nn.Tensor
    route: WorkingRoute
    timing: object  # RouteTiming

    @property
    def satisfied(self) -> int:
        """Number of sensing tasks whose window was met."""
        count = 0
        for stop in self.timing.stops:
            task = stop.task
            if isinstance(task, SensingTask):
                if task.can_start_at(stop.service_start):
                    count += 1
            else:
                count += 1
        return count


class GPNModel(nn.Module):
    """Encoder + pointer decoder over task nodes.

    ``extra_key_features`` lets the upper model receive the lower policy's
    per-node probability as an additional pointer-key input.
    """

    def __init__(self, d_model: int = 32, num_heads: int = 4, num_layers: int = 2,
                 extra_key_features: int = 0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.d_model = d_model
        self.embed = nn.Linear(_NODE_FEATURES, d_model, rng=rng)
        self.encoder = nn.TransformerEncoder(d_model, num_heads, num_layers, rng=rng)
        self.endpoint_embed = nn.Linear(3, d_model, rng=rng)
        # Query context: origin emb + destination emb + current node emb
        # + (current time, remaining budget).
        self.query_proj = nn.Linear(3 * d_model + 2, d_model, rng=rng)
        self.pointer = nn.PointerAttention(
            d_model, d_model + extra_key_features, clip=10.0, rng=rng)
        self.extra_key_features = extra_key_features

    def encode(self, features: np.ndarray) -> nn.Tensor:
        return self.encoder(self.embed(nn.Tensor(features)))

    def pointer_logits(self, node_emb: nn.Tensor, origin_emb: nn.Tensor,
                       dest_emb: nn.Tensor, current_emb: nn.Tensor,
                       time_features: np.ndarray,
                       visited_mask: np.ndarray,
                       extra_keys: np.ndarray | None = None) -> nn.Tensor:
        context = nn.ops.concat(
            [origin_emb, dest_emb, current_emb, nn.Tensor(time_features)])
        query = self.query_proj(context)
        keys = node_emb
        if self.extra_key_features:
            if extra_keys is None:
                raise ValueError("model expects extra key features")
            keys = nn.ops.concat([node_emb, nn.Tensor(extra_keys)], axis=1)
        return self.pointer(query, keys, mask=visited_mask)


class HierarchicalGPN(nn.Module):
    """Lower (window-satisfaction) + upper (length-aware) pointer models."""

    def __init__(self, scale: GPNScale, d_model: int = 32, num_heads: int = 4,
                 num_layers: int = 2, speed: float = DEFAULT_SPEED,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.scale = scale
        self.speed = speed
        self.lower = GPNModel(d_model, num_heads, num_layers, rng=rng)
        self.upper = GPNModel(d_model, num_heads, num_layers,
                              extra_key_features=1, rng=rng)

    # ------------------------------------------------------------------ #
    def _decode(self, model: GPNModel, worker: Worker, tasks: list[Task],
                greedy: bool, rng: np.random.Generator | None,
                lower_probs_fn=None) -> DecodeResult:
        n = len(tasks)
        features = self.scale.node_features(worker, tasks)
        node_emb = model.encode(features)
        endpoints = model.endpoint_embed(
            nn.Tensor(self.scale.endpoint_features(worker)))
        origin_emb, dest_emb = endpoints[0], endpoints[1]

        visited = np.zeros(n, dtype=bool)
        order: list[int] = []
        log_prob_terms = []
        clock = worker.earliest_departure
        position = worker.origin
        current_emb = origin_emb
        budget = max(worker.time_budget, 1e-9)

        for _ in range(n):
            time_features = np.array([
                clock / self.scale.time,
                max(0.0, worker.latest_arrival - clock) / budget,
            ])
            extra = None
            if model.extra_key_features:
                extra = lower_probs_fn(visited, clock, position, current_emb)
            logits = model.pointer_logits(
                node_emb, origin_emb, dest_emb, current_emb,
                time_features, visited, extra_keys=extra)
            log_probs = nn.ops.log_softmax(logits)
            probs = np.exp(log_probs.data)
            if greedy:
                choice = int(np.argmax(probs))
            else:
                choice = int((rng or np.random.default_rng()).choice(n, p=probs / probs.sum()))
            log_prob_terms.append(log_probs[choice])
            order.append(choice)
            visited[choice] = True

            task = tasks[choice]
            clock += travel_time(position, task.location, speed=self.speed)
            if isinstance(task, SensingTask):
                clock = max(clock, task.tw_start)
            clock += task.service_time
            position = task.location
            current_emb = node_emb[choice]

        route = WorkingRoute(worker, tuple(tasks[i] for i in order),
                             speed=self.speed)
        timing = route.simulate()
        total_log_prob = log_prob_terms[0]
        for term in log_prob_terms[1:]:
            total_log_prob = total_log_prob + term
        return DecodeResult(order, total_log_prob, route, timing)

    def decode_lower(self, worker: Worker, tasks: list[Task], greedy: bool = True,
                     rng: np.random.Generator | None = None) -> DecodeResult:
        return self._decode(self.lower, worker, tasks, greedy, rng)

    def decode_upper(self, worker: Worker, tasks: list[Task], greedy: bool = True,
                     rng: np.random.Generator | None = None) -> DecodeResult:
        """Decode with the upper model, feeding it the lower policy's probs."""
        n = len(tasks)
        features = self.scale.node_features(worker, tasks)
        with nn.no_grad():
            lower_emb = self.lower.encode(features)
            lower_endpoints = self.lower.endpoint_embed(
                nn.Tensor(self.scale.endpoint_features(worker)))
        budget = max(worker.time_budget, 1e-9)

        def lower_probs_fn(visited, clock, position, _current_emb):
            # Lower policy's suggestion at the equivalent decoding state.
            with nn.no_grad():
                time_features = np.array([
                    clock / self.scale.time,
                    max(0.0, worker.latest_arrival - clock) / budget,
                ])
                if not np.any(~visited):
                    return np.zeros((n, 1))
                # Current embedding for the lower model: last visited node,
                # or origin at the first step.
                visited_idx = np.flatnonzero(visited)
                current = (lower_emb[int(visited_idx[-1])]
                           if visited_idx.size else lower_endpoints[0])
                logits = self.lower.pointer_logits(
                    lower_emb, lower_endpoints[0], lower_endpoints[1],
                    current, time_features, visited)
                probs = np.exp(nn.ops.log_softmax(logits).data)
            return probs.reshape(n, 1)

        return self._decode(self.upper, worker, tasks, greedy, rng,
                            lower_probs_fn=lower_probs_fn)


class GPNSolver(PlannerBase):
    """RoutePlanner backed by a (pre-)trained :class:`HierarchicalGPN`.

    Decoding is greedy at inference, as in the paper.  Because the learned
    policy can mis-order windows, the solver may declare a feasible set
    infeasible (the paper's "false alarm"); with ``repair=True`` an
    insertion-solver fallback repairs such routes — our implementation of
    the paper's future-work note on absorbing approximation error.
    """

    def __init__(self, model: HierarchicalGPN, repair: bool = False,
                 use_upper: bool = True):
        self.model = model
        self.speed = model.speed
        self.repair = repair
        self.use_upper = use_upper
        self._fallback = InsertionSolver(speed=model.speed)

    def plan(self, worker: Worker,
             sensing_tasks: Sequence[SensingTask]) -> RouteResult:
        tasks = combined_tasks(worker, sensing_tasks)
        if not tasks:
            return RouteResult.from_route(WorkingRoute(worker, (), speed=self.speed))
        with nn.no_grad():
            if self.use_upper:
                decoded = self.model.decode_upper(worker, tasks, greedy=True)
            else:
                decoded = self.model.decode_lower(worker, tasks, greedy=True)
        result = RouteResult.from_route(decoded.route)
        if not result.feasible and self.repair:
            return self._fallback.plan(worker, sensing_tasks)
        return result

    def plan_many(self, worker: Worker,
                  candidate_sets: Sequence[Sequence[SensingTask]]
                  ) -> list[RouteResult]:
        """Plan several task sets for one worker, sharing the encoder pass.

        Implements the paper's complexity-analysis note that the candidate
        loops "can be implemented in parallel by batching the data and then
        passing through the pre-trained TSPTW solver": the union of all
        sensing tasks is encoded once, and each candidate set is decoded
        against a gathered slice of those embeddings.

        Two documented approximations versus per-set :meth:`plan` calls:
        node embeddings attend over the union rather than each subset, and
        the upper model's lower-policy feature is zeroed.  Routes may
        therefore differ slightly from ``plan``'s; feasibility and rtt are
        always re-verified by exact simulation.
        """
        # Deduplicate tasks by id across the candidate sets.
        union: dict[int, SensingTask] = {}
        for candidate_set in candidate_sets:
            for task in candidate_set:
                union[task.task_id] = task
        union_tasks = combined_tasks(worker, list(union.values()))
        task_position = {
            (isinstance(task, SensingTask), task.task_id): i
            for i, task in enumerate(union_tasks)
        }

        with nn.no_grad():
            features = self.model.scale.node_features(worker, union_tasks)
            node_emb = (self.model.upper if self.use_upper
                        else self.model.lower).encode(features)

        results = []
        for candidate_set in candidate_sets:
            tasks = combined_tasks(worker, candidate_set)
            indices = np.array([
                task_position[(isinstance(t, SensingTask), t.task_id)]
                for t in tasks
            ])
            with nn.no_grad():
                decoded = self._decode_with_embeddings(worker, tasks,
                                                       node_emb, indices)
            result = RouteResult.from_route(decoded.route)
            if not result.feasible and self.repair:
                result = self._fallback.plan(worker, candidate_set)
            results.append(result)
        return results

    def _decode_with_embeddings(self, worker: Worker, tasks: list[Task],
                                union_emb: nn.Tensor,
                                indices: np.ndarray) -> DecodeResult:
        """Greedy decode reusing pre-computed node embeddings."""
        model = self.model.upper if self.use_upper else self.model.lower
        n = len(tasks)
        node_emb = nn.ops.gather_rows(union_emb, indices)
        endpoints = model.endpoint_embed(
            nn.Tensor(self.model.scale.endpoint_features(worker)))
        origin_emb, dest_emb = endpoints[0], endpoints[1]

        visited = np.zeros(n, dtype=bool)
        order: list[int] = []
        clock = worker.earliest_departure
        position = worker.origin
        current_emb = origin_emb
        budget = max(worker.time_budget, 1e-9)
        from ..core.geometry import travel_time as tt

        for _ in range(n):
            time_features = np.array([
                clock / self.model.scale.time,
                max(0.0, worker.latest_arrival - clock) / budget,
            ])
            extra = (np.zeros((n, 1)) if model.extra_key_features else None)
            logits = model.pointer_logits(
                node_emb, origin_emb, dest_emb, current_emb,
                time_features, visited, extra_keys=extra)
            choice = int(np.argmax(logits.data))
            order.append(choice)
            visited[choice] = True
            task = tasks[choice]
            clock += tt(position, task.location, speed=self.speed)
            if isinstance(task, SensingTask):
                clock = max(clock, task.tw_start)
            clock += task.service_time
            position = task.location
            current_emb = node_emb[choice]

        route = WorkingRoute(worker, tuple(tasks[i] for i in order),
                             speed=self.speed)
        timing = route.simulate()
        return DecodeResult(order, nn.Tensor(0.0), route, timing)
