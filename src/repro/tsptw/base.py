"""Route-planner interface shared by all TSPTW backends.

A planner answers the question SMORE asks thousands of times (Algorithm 1):
*given a worker and a set of sensing tasks, does a feasible working route
exist, and what is its (near-)minimal route travel time?*  Travel tasks
carry no windows of their own — the planner treats them as windowed by the
worker's ``[earliest_departure, latest_arrival]`` interval, exactly as the
paper prescribes (Section III-C).

Backends implemented in this package:

* :class:`repro.tsptw.exact.ExactDPSolver` — bitmask dynamic program,
  optimal, exponential (use for <= ~15 tasks and as ground truth in tests).
* :class:`repro.tsptw.insertion.InsertionSolver` — cheapest feasible
  insertion plus or-opt improvement; the fast default.
* :class:`repro.tsptw.nearest.NearestNeighborSolver` — the Nearest
  Neighbour construction the paper's RN/TVPG/TCPG baselines start from.
* :class:`repro.tsptw.gpn.GPNSolver` — the pre-trained graph-pointer-network
  solver with hierarchical RL training (Ma et al. [16], adapted to carry
  origin + destination in the query as the paper describes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from ..core.entities import SensingTask, TravelTask, Worker
from ..core.geometry import DEFAULT_SPEED
from ..core.route import RouteTiming, WorkingRoute

__all__ = ["RouteResult", "RoutePlanner", "combined_tasks"]

Task = TravelTask | SensingTask


@dataclass(frozen=True)
class RouteResult:
    """Outcome of a planning call.

    ``feasible`` is False when the backend found no ordering that respects
    every sensing window and the worker's latest arrival; ``route`` then
    holds the best attempt (possibly None for constructive backends that
    failed outright) so callers can diagnose.
    """

    route: WorkingRoute | None
    timing: RouteTiming | None
    feasible: bool
    #: For single-insertion plans: where the scan placed the new task
    #: (None for full plans or backends that do not report it).  Dynamic
    #: candidate repair uses it to decide which entries an advancing
    #: committed position invalidates.
    pos: int | None = None

    @property
    def route_travel_time(self) -> float:
        if self.timing is None:
            return float("inf")
        return self.timing.route_travel_time

    @staticmethod
    def infeasible(route: WorkingRoute | None = None,
                   timing: RouteTiming | None = None) -> "RouteResult":
        return RouteResult(route, timing, False)

    @staticmethod
    def from_route(route: WorkingRoute) -> "RouteResult":
        timing = route.simulate()
        feasible = timing.feasible and route.covers_all_travel_tasks()
        return RouteResult(route, timing, feasible)


def combined_tasks(worker: Worker,
                   sensing_tasks: Sequence[SensingTask]) -> list[Task]:
    """The full task set a working route must visit."""
    return list(worker.travel_tasks) + list(sensing_tasks)


class RoutePlanner(Protocol):
    """Protocol all TSPTW backends satisfy."""

    speed: float

    def plan(self, worker: Worker,
             sensing_tasks: Sequence[SensingTask]) -> RouteResult:
        """Plan a working route through the worker's travel tasks plus
        ``sensing_tasks``; minimise route travel time."""
        ...

    def base_route(self, worker: Worker) -> RouteResult:
        """The worker's original route (travel tasks only) — the TSP
        baseline of the incentive definition."""
        ...


class PlannerBase:
    """Shared convenience implementation of :meth:`base_route`."""

    speed: float = DEFAULT_SPEED

    def plan(self, worker: Worker, sensing_tasks: Sequence[SensingTask]) -> RouteResult:
        raise NotImplementedError

    def base_route(self, worker: Worker) -> RouteResult:
        return self.plan(worker, [])
