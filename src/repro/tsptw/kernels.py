"""Vectorized route kernels over packed instance arrays.

The hot loops of the insertion planner re-simulate Python object routes
stop-by-stop.  This module packs one route into flat numpy arrays
(:func:`pack_route`) and provides:

* :func:`simulate_route_packed` — cumulative arrival / service-start /
  finish arrays in one pass over precomputed hop times;
* :func:`timing_from_pack` — a drop-in, bit-identical
  :class:`~repro.core.route.RouteTiming`;
* :func:`cheapest_insertion_packed` — the scalar insertion scan with two
  slack tricks: an O(1) per-position rejection against a backward
  latest-arrival array, and a delay-absorption early exit that truncates
  suffix re-propagation the moment the inserted route's clock rejoins the
  base schedule;
* :func:`sweep_insertions` — the batched kernel: all |route|+1 positions x
  all candidate tasks scored in one lock-step vectorized sweep, with
  slack-pruned task rows skipped entirely;
* :func:`nearest_neighbor_order_packed` — matrix-backed NN construction.

Bit-identity contract (the reason the object path can stay available as a
``use_kernels=False`` reference): every observable float is produced by the
same IEEE operation sequence the object path executes.  Distances come from
the ``math.hypot`` matrix of :class:`~repro.core.packed.PackedInstance`;
the vectorized sweep advances each insertion position as an independent
lane, so per-lane accumulation order matches the scalar scan exactly;
``np.argmin`` keeps the first minimum, matching the scan's strict-``<``
tie-breaking.  The backward slack array is *only* used to prune positions
that are infeasible by more than :data:`SLACK_MARGIN` — far above the
~1e-11 float drift a backward recursion can accumulate — so pruning never
changes a verdict; exact verdicts always come from forward propagation.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core.entities import SensingTask, Worker
from ..core.packed import PackedInstance
from ..core.route import RouteStop, RouteTiming

__all__ = ["RoutePack", "pack_route", "simulate_route_packed",
           "timing_from_pack", "cheapest_insertion_packed",
           "sweep_insertions", "nearest_neighbor_order_packed",
           "SLACK_MARGIN"]

_INF = float("inf")

#: Safety margin for slack-based pruning.  The backward latest-arrival
#: recursion is mathematically exact but accumulates ~1 ulp per stop of
#: float error (<1e-11 at route scale); pruning only positions that exceed
#: the slack bound by more than this margin keeps pruning sound, so it can
#: never flip a feasibility verdict relative to forward propagation.
SLACK_MARGIN = 1e-6


class RoutePack:
    """Flat-array view of one (worker, task order) pair.

    ``locs[0]`` is the origin, ``locs[1..n]`` the stops, ``locs[n+1]`` the
    destination.  ``seg[j]`` is the travel time into stop ``j`` (from
    ``locs[j]``); ``seg[n]`` is the destination leg.  ``prefix[p]`` is the
    clock after completing ``tasks[:p]``; ``valid`` counts usable prefixes
    (the scan stops at the first window violation, like the object path).
    ``slack[p]`` is the latest arrival time at stop ``p`` (``p == n``: at
    the destination) from which the remaining route can still finish.
    """

    __slots__ = ("worker", "tasks", "n", "speed", "packed", "loc_rows",
                 "locs", "tw0", "ls", "svc", "sensing", "seg", "prefix",
                 "valid", "slack", "departure", "latest_thr", "base_final",
                 "base_dest_ok")

    def __init__(self, worker: Worker, tasks: Sequence, speed: float,
                 packed: PackedInstance | None):
        n = len(tasks)
        self.worker = worker
        self.tasks = list(tasks)
        self.n = n
        self.speed = speed
        self.packed = packed
        self.departure = worker.earliest_departure
        # Same expression as the scan's final check (latest + 1e-9).
        self.latest_thr = worker.latest_arrival + 1e-9

        tw0 = np.full(n, -_INF)
        ls = np.full(n, _INF)
        svc = np.empty(n)
        sensing = np.zeros(n, dtype=bool)
        for k, task in enumerate(tasks):
            svc[k] = task.service_time
            if isinstance(task, SensingTask):
                sensing[k] = True
                tw0[k] = task.tw_start
                ls[k] = task.latest_start
        self.tw0, self.ls, self.svc, self.sensing = tw0, ls, svc, sensing

        locs = [worker.origin] + [t.location for t in tasks] \
            + [worker.destination]
        self.locs = locs
        rows: list[int] | None = None
        if packed is not None:
            rows = [packed.loc_id(l) for l in locs]
            if any(r < 0 for r in rows):
                rows = None
        self.loc_rows = rows

        # seg[j] = travel time locs[j] -> locs[j+1]; same hypot + divide
        # the object path performs per hop.
        if rows is not None:
            ds = np.fromiter(
                (packed.row(rows[j])[rows[j + 1]] for j in range(n + 1)),
                dtype=np.float64, count=n + 1)
        else:
            ds = np.fromiter(
                (math.hypot(locs[j + 1].x - locs[j].x,
                            locs[j + 1].y - locs[j].y)
                 for j in range(n + 1)),
                dtype=np.float64, count=n + 1)
        self.seg = ds / speed

        # Forward earliest-completion prefixes (the object scan's prefix
        # list), truncated at the first violation.
        prefix = np.empty(n + 1)
        prefix[0] = self.departure
        clock = self.departure
        valid = n + 1
        seg = self.seg
        for j in range(n):
            clock = clock + seg[j]
            if sensing[j]:
                if clock < tw0[j]:
                    clock = tw0[j]
                elif clock > ls[j]:
                    valid = j + 1
                    break
            clock = clock + svc[j]
            prefix[j + 1] = clock
        self.prefix = prefix
        self.valid = valid
        if valid == n + 1:
            self.base_final = float(prefix[n] + seg[n])
            self.base_dest_ok = self.base_final <= self.latest_thr
        else:
            self.base_final = _INF
            self.base_dest_ok = False

        # Backward latest-arrival slack: slack[j] is the latest arrival at
        # stop j keeping stops j..n-1 and the destination leg feasible
        # (waiting for a window to open can only help, which the min/-inf
        # cases encode).  slack[n] is the destination deadline itself.
        slack = np.empty(n + 1)
        slack[n] = self.latest_thr
        for j in range(n - 1, -1, -1):
            bound = slack[j + 1] - seg[j + 1] - svc[j]
            if sensing[j]:
                if tw0[j] > bound:
                    slack[j] = -_INF
                else:
                    slack[j] = min(ls[j], bound)
            else:
                slack[j] = bound
        self.slack = slack

    # ------------------------------------------------------------------ #
    def new_task_times(self, task) -> np.ndarray:
        """Travel times between ``task`` and every route point (n+2,).

        Entry ``r`` serves both directions (hypot is symmetric):
        position ``r`` -> task for the insertion leg, task -> stop ``r-1``
        (or the destination) for the resume leg.
        """
        packed, rows = self.packed, self.loc_rows
        loc = task.location
        if packed is not None and rows is not None:
            i = packed.loc_id(loc)
            if i >= 0:
                return packed.row(i)[rows] / self.speed
        x, y = loc.x, loc.y
        ds = np.fromiter(
            (math.hypot(x - l.x, y - l.y) for l in self.locs),
            dtype=np.float64, count=self.n + 2)
        return ds / self.speed


def pack_route(worker: Worker, tasks: Sequence, speed: float,
               packed: PackedInstance | None = None) -> RoutePack:
    """Pack one route's geometry and timing arrays (O(n))."""
    return RoutePack(worker, tasks, speed, packed)


# ---------------------------------------------------------------------- #
# Simulation
# ---------------------------------------------------------------------- #
def simulate_route_packed(pack: RoutePack):
    """Arrival / service-start / finish arrays in one pass.

    Mirrors :func:`~repro.core.route.simulate_route` op-for-op (including
    continuing past a violation so callers can inspect it) and returns
    ``(arrival, start, finish, final, feasible, violated_at)``.
    """
    n = pack.n
    seg, tw0, ls, svc, sensing = (pack.seg, pack.tw0, pack.ls, pack.svc,
                                  pack.sensing)
    arrival = np.empty(n)
    start = np.empty(n)
    finish = np.empty(n)
    clock = pack.departure
    feasible = True
    violated_at: int | None = None
    for j in range(n):
        clock = clock + seg[j]
        arrival[j] = clock
        if sensing[j]:
            s = max(clock, tw0[j])
            if s > ls[j] and feasible:
                feasible = False
                violated_at = j
        else:
            s = clock
        start[j] = s
        clock = s + svc[j]
        finish[j] = clock
    final = clock + seg[n]
    if final > pack.latest_thr and feasible:
        feasible = False
        violated_at = n
    return arrival, start, finish, float(final), feasible, violated_at


def timing_from_pack(pack: RoutePack) -> RouteTiming:
    """A bit-identical :class:`RouteTiming` built from the packed arrays."""
    arrival, start, finish, final, feasible, violated_at = \
        simulate_route_packed(pack)
    stops = tuple(
        RouteStop(task, float(arrival[j]), float(start[j]), float(finish[j]))
        for j, task in enumerate(pack.tasks))
    return RouteTiming(stops, pack.departure, final, feasible, violated_at)


# ---------------------------------------------------------------------- #
# Single-task insertion scan (slack rejection + delay absorption)
# ---------------------------------------------------------------------- #
def cheapest_insertion_packed(pack: RoutePack, new_task,
                              min_position: int = 0
                              ) -> tuple[int, float] | None:
    """Best feasible position for ``new_task``; bit-identical to the scan.

    Two exits make positions cheap: a position whose post-insertion clock
    exceeds the slack bound by more than :data:`SLACK_MARGIN` is rejected
    in O(1); during suffix re-propagation, the moment the delayed clock
    equals the base prefix clock the remaining stops replay the base
    schedule exactly, so the base result is reused and the loop stops.
    """
    n = pack.n
    prefix, seg, tw0, ls, svc, sensing = (pack.prefix, pack.seg, pack.tw0,
                                          pack.ls, pack.svc, pack.sensing)
    slack = pack.slack
    valid = pack.valid
    departure = pack.departure
    latest_thr = pack.latest_thr
    tt_new = pack.new_task_times(new_task)

    new_is_sensing = isinstance(new_task, SensingTask)
    if new_is_sensing:
        ntw0 = new_task.tw_start
        nls = new_task.tw_end - new_task.service_time
    nsvc = new_task.service_time

    best_pos = -1
    best_rtt = _INF
    for p in range(min_position, valid):
        clock = prefix[p] + tt_new[p]
        if new_is_sensing:
            if clock < ntw0:
                clock = ntw0
            elif clock > nls:
                continue
        clock = clock + nsvc
        head = clock + tt_new[p + 1]
        if head > slack[p] + SLACK_MARGIN:
            continue  # provably infeasible: skip the suffix entirely
        if p == n:
            final = head
        else:
            ok = True
            absorbed = False
            arrival = head
            idx = p
            while True:
                if sensing[idx]:
                    if arrival < tw0[idx]:
                        arrival = tw0[idx]
                    elif arrival > ls[idx]:
                        ok = False
                        break
                clock = arrival + svc[idx]
                if idx + 1 < valid and clock == prefix[idx + 1]:
                    absorbed = True  # delay fully absorbed by waiting
                    break
                idx += 1
                if idx == n:
                    break
                arrival = clock + seg[idx]
            if not ok:
                continue
            if absorbed:
                if not (valid == n + 1 and pack.base_dest_ok):
                    continue  # base suffix itself violates
                final = pack.base_final
            else:
                final = clock + seg[n]
        if final > latest_thr:
            continue
        rtt = final - departure
        if rtt < best_rtt:
            best_pos = p
            best_rtt = rtt
    if best_pos < 0:
        return None
    return best_pos, float(best_rtt)


# ---------------------------------------------------------------------- #
# Batched insertion sweep (positions x tasks, lock-step lanes)
# ---------------------------------------------------------------------- #
def _new_task_arrays(pack: RoutePack, new_tasks: Sequence):
    """(tw0, ls, svc) arrays for the batch, via the packed table if known."""
    packed = pack.packed
    T = len(new_tasks)
    if packed is not None:
        rows = [packed.sensing_row(getattr(t, "task_id", -1))
                for t in new_tasks]
        if all(r >= 0 for r in rows):
            idx = np.asarray(rows, dtype=np.intp)
            return (packed.tw_start[idx], packed.latest_start[idx],
                    packed.service[idx])
    tw0 = np.empty(T)
    ls = np.empty(T)
    svc = np.empty(T)
    for k, t in enumerate(new_tasks):
        svc[k] = t.service_time
        if isinstance(t, SensingTask):
            tw0[k] = t.tw_start
            ls[k] = t.tw_end - t.service_time
        else:
            tw0[k] = -_INF
            ls[k] = _INF
    return tw0, ls, svc


def sweep_insertions(pack: RoutePack, new_tasks: Sequence,
                     min_position: int = 0
                     ) -> list[tuple[int, float] | None]:
    """Score every (position, task) lane in one vectorized sweep.

    Each position is a lane replaying the scalar scan's exact op order on
    its own accumulator, so per-lane floats match the object path; tasks
    whose every lane fails the margin-guarded slack bound are dropped
    before propagation (they are provably infeasible); the surviving
    columns propagate all lanes and take the first-minimum over positions.

    ``min_position`` kills lanes before a worker's committed mid-route
    position up front, matching the scalar scan's anchored loop: the
    surviving lanes' floats are untouched, so first-minimum selection over
    the remaining positions is bit-identical to the anchored object scan.
    """
    T = len(new_tasks)
    if T == 0:
        return []
    n = pack.n
    P = pack.valid  # lanes 0..P-1 have usable prefixes
    speed = pack.speed
    packed, rows = pack.packed, pack.loc_rows

    # One integer-keyed row lookup per task feeds both the travel-time
    # block and the window arrays (packed sensing rows also know their
    # location column, skipping per-task Location hashing).
    task_rows = None
    if packed is not None:
        trow = [packed.sensing_row(getattr(t, "task_id", -1))
                for t in new_tasks]
        if all(r >= 0 for r in trow):
            task_rows = np.asarray(trow, dtype=np.intp)

    # Route-point -> task travel times, shape (n+2, T): row 0 the origin,
    # rows 1..n the stops, row n+1 the destination.  Row r serves lane
    # r (position r -> task) and the resume leg into stop r-1.
    if task_rows is not None and rows is not None:
        cols_arr = packed.sensing_loc[task_rows]
        tt_rt = np.empty((n + 2, T))
        for r, i in enumerate(rows):
            tt_rt[r] = packed.row(i)[cols_arr]
        tt_rt /= speed
    else:
        tt_rt = _hypot_block(pack, new_tasks) / speed

    if task_rows is not None:
        ntw0 = packed.tw_start[task_rows]
        nls = packed.latest_start[task_rows]
        nsvc = packed.service[task_rows]
    else:
        ntw0, nls, nsvc = _new_task_arrays(pack, new_tasks)

    # Lane 0..P-1: depart the prefix, service the new task.
    arr0 = pack.prefix[:P, None] + tt_rt[:P]
    feas0 = arr0 <= nls[None, :]
    if min_position > 0:
        # Anchored sweep: lanes before the committed position are dead on
        # arrival (the scalar scan never visits them).
        feas0[:min(min_position, P)] = False
    c0 = np.maximum(arr0, ntw0[None, :]) + nsvc[None, :]

    # Arrival at each lane's head stop (stop p; the destination for p==n)
    # and the O(1) slack rejection with safety margin.
    head = c0 + tt_rt[1:P + 1]
    alive = feas0 & (head <= pack.slack[:P, None] + SLACK_MARGIN)
    surv = np.flatnonzero(alive.any(axis=0))
    results: list[tuple[int, float] | None] = [None] * T
    if surv.size == 0:
        return results

    # Forward propagation for surviving columns, all lanes in lock-step.
    feas = feas0[:, surv].copy()
    c = c0[:, surv].copy()
    head_s = head[:, surv]
    seg, tw0, ls, svc, sensing = (pack.seg, pack.tw0, pack.ls, pack.svc,
                                  pack.sensing)
    for j in range(n):
        k = min(j + 1, P)
        a = c[:k] + seg[j]
        if j < P:
            a[j] = head_s[j]  # lane j resumes from the new task
        if sensing[j]:
            feas[:k] &= a <= ls[j]
            c[:k] = np.maximum(a, tw0[j]) + svc[j]
        else:
            c[:k] = a + svc[j]

    final = c + seg[n]
    if P == n + 1:
        final[n] = head_s[n]  # lane n goes new task -> destination
    feas &= final <= pack.latest_thr
    rtt = np.where(feas, final - pack.departure, _INF)
    pos = np.argmin(rtt, axis=0)  # first minimum == strict-< scan order
    col = np.arange(surv.size)
    best = rtt[pos, col]
    for k, t_idx in enumerate(surv):
        if best[k] < _INF:
            results[int(t_idx)] = (int(pos[k]), float(best[k]))
    return results


def _hypot_block(pack: RoutePack, new_tasks: Sequence) -> np.ndarray:
    """math.hypot fallback for the (n+2, T) route-point/task distances."""
    locs = pack.locs
    out = np.empty((len(locs), len(new_tasks)))
    hypot = math.hypot
    for k, t in enumerate(new_tasks):
        x, y = t.location.x, t.location.y
        for r, l in enumerate(locs):
            out[r, k] = hypot(x - l.x, y - l.y)
    return out


# ---------------------------------------------------------------------- #
# Nearest-neighbour construction
# ---------------------------------------------------------------------- #
def nearest_neighbor_order_packed(worker: Worker, tasks: Sequence,
                                  packed: PackedInstance) -> list | None:
    """Matrix-backed NN order; None when a location is not packed.

    ``np.argmin`` over the original task order replicates ``min()``'s
    first-occurrence tie-breaking on the object path exactly.
    """
    rows = [packed.loc_id(t.location) for t in tasks]
    cur = packed.loc_id(worker.origin)
    if cur < 0 or any(r < 0 for r in rows):
        return None
    cols = np.asarray(rows, dtype=np.intp)
    dead = np.zeros(len(tasks), dtype=bool)
    order = []
    for _ in range(len(tasks)):
        d = packed.row(cur)[cols]
        d = np.where(dead, _INF, d)
        k = int(np.argmin(d))
        dead[k] = True
        order.append(tasks[k])
        cur = rows[k]
    return order
