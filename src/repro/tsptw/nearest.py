"""Nearest Neighbour route construction.

The paper's RN / TVPG / TCPG baselines all start from a working route built
with the Nearest Neighbour algorithm — "we always select the nearest
location as the next location" (Section V-B).  The construction ignores
time windows while choosing; the resulting route may therefore be
infeasible, which the caller must check via the returned timing.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..core.entities import SensingTask, Worker
from ..core.geometry import DEFAULT_SPEED, Location, euclidean
from ..core.packed import packed_instance
from ..core.route import WorkingRoute
from . import kernels
from .base import PlannerBase, RouteResult, combined_tasks

__all__ = ["NearestNeighborSolver", "nearest_neighbor_order"]


def nearest_neighbor_order(worker: Worker, tasks: list,
                           dist: Callable[[Location, Location], float] | None
                           = None) -> list:
    """Order ``tasks`` greedily by distance starting from the origin.

    ``dist`` optionally replaces per-pair ``euclidean`` with a shared
    travel-distance provider (same floats, so the order is unchanged).
    """
    measure = dist if dist is not None else euclidean
    remaining = list(tasks)
    ordered = []
    position = worker.origin
    while remaining:
        nearest = min(remaining, key=lambda t: measure(position, t.location))
        remaining.remove(nearest)
        ordered.append(nearest)
        position = nearest.location
    return ordered


class NearestNeighborSolver(PlannerBase):
    """Constructs a route by repeatedly visiting the closest unvisited task."""

    def __init__(self, speed: float = DEFAULT_SPEED):
        self.speed = speed
        self._packed = None

    def bind_instance(self, instance) -> None:
        """Reuse the instance's packed travel-distance matrix."""
        self._packed = packed_instance(instance)

    def plan(self, worker: Worker,
             sensing_tasks: Sequence[SensingTask]) -> RouteResult:
        tasks = combined_tasks(worker, sensing_tasks)
        ordered = None
        if self._packed is not None:
            ordered = kernels.nearest_neighbor_order_packed(
                worker, tasks, self._packed)
        if ordered is None:
            ordered = nearest_neighbor_order(worker, tasks)
        route = WorkingRoute(worker, tuple(ordered), speed=self.speed)
        return RouteResult.from_route(route)
