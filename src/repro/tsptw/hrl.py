"""Hierarchical REINFORCE training for the GPN TSPTW solver.

Following the paper's Section III-C (and Ma et al. [16]):

1. **Lower model training** — optimised on the *lower reward*: the number
   of nodes visited inside their time windows.
2. **Upper model training** — optimised on the *upper reward*: the lower
   reward plus a penalty on the route length (here: route travel time).

Both phases use REINFORCE with an exponential-moving-average baseline and
gradient-norm clipping.  :func:`sample_training_worker` generates random
single-worker TSPTW instances for pre-training.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn, obs
from ..core.entities import SensingTask, TravelTask, Worker
from ..core.geometry import Location, Region
from ..obs import TrainingHistory
from .gpn import DecodeResult, GPNScale, HierarchicalGPN

__all__ = ["TSPTWTrainingConfig", "TSPTWTrainer", "sample_training_worker"]


def sample_training_worker(rng: np.random.Generator, region: Region,
                           time_span: float, num_travel: int, num_sensing: int,
                           window_minutes: float, service_time: float = 5.0,
                           worker_id: int = 0) -> tuple[Worker, list]:
    """Random worker + task mix for TSPTW pre-training.

    Sensing windows are drawn uniformly over the span; the worker's time
    budget is generous enough that most instances admit feasible routes,
    which keeps the lower-reward signal informative.
    """
    def random_location() -> Location:
        return Location(rng.uniform(0, region.width), rng.uniform(0, region.height))

    travel = tuple(
        TravelTask(i, random_location(), service_time)
        for i in range(num_travel)
    )
    sensing = []
    num_slots = max(1, int(time_span // window_minutes))
    for k in range(num_sensing):
        slot = int(rng.integers(0, num_slots))
        tw_start = slot * window_minutes
        sensing.append(SensingTask(100 + k, random_location(), tw_start,
                                   min(tw_start + window_minutes, time_span),
                                   min(service_time, window_minutes)))
    worker = Worker(worker_id, random_location(), random_location(),
                    0.0, time_span, travel)
    return worker, list(travel) + sensing


@dataclass
class TSPTWTrainingConfig:
    """Hyper-parameters for the two-phase pre-training."""

    lower_iterations: int = 60
    upper_iterations: int = 60
    batch_size: int = 8
    lr: float = 1e-3
    length_penalty: float = 1.0   # weight of rtt (normalised) in upper reward
    baseline_decay: float = 0.9
    grad_clip: float = 1.0
    num_travel: int = 2
    num_sensing: int = 5
    window_minutes: float = 60.0
    time_span: float = 240.0


@dataclass
class TSPTWTrainer:
    """Trains a :class:`HierarchicalGPN` with the two-phase scheme."""

    model: HierarchicalGPN
    region: Region
    config: TSPTWTrainingConfig = field(default_factory=TSPTWTrainingConfig)
    rng: np.random.Generator = field(default_factory=np.random.default_rng)
    #: ``lower`` / ``upper`` reward curves plus per-phase ``*_grad_norm``
    #: series; a :class:`~repro.obs.TrainingHistory` so callers can use
    #: ``record`` / ``last`` / ``summary`` as with the TASNet trainer.
    history: TrainingHistory = field(
        default_factory=lambda: TrainingHistory(lower=[], upper=[]))

    # ------------------------------------------------------------------ #
    def _lower_reward(self, decoded: DecodeResult) -> float:
        """Fraction of nodes meeting their window (plus terminal arrival)."""
        n = max(len(decoded.order), 1)
        reward = decoded.satisfied / n
        if decoded.timing.feasible:
            reward += 1.0  # bonus for a fully feasible route
        return reward

    def _upper_reward(self, decoded: DecodeResult) -> float:
        """Lower reward minus a normalised route-travel-time penalty."""
        rtt = decoded.timing.route_travel_time
        normalised = rtt / max(self.config.time_span, 1e-9)
        return self._lower_reward(decoded) - self.config.length_penalty * normalised

    # ------------------------------------------------------------------ #
    def _train_phase(self, phase: str) -> None:
        cfg = self.config
        if phase == "lower":
            params = self.model.lower.parameters()
            iterations = cfg.lower_iterations
            reward_fn = self._lower_reward
        else:
            params = self.model.upper.parameters()
            iterations = cfg.upper_iterations
            reward_fn = self._upper_reward
        optimizer = nn.Adam(params, lr=cfg.lr)
        baseline = None

        for _ in range(iterations):
            rewards = []
            losses = []
            for _ in range(cfg.batch_size):
                worker, tasks = sample_training_worker(
                    self.rng, self.region, cfg.time_span, cfg.num_travel,
                    cfg.num_sensing, cfg.window_minutes)
                if phase == "lower":
                    decoded = self.model.decode_lower(
                        worker, tasks, greedy=False, rng=self.rng)
                else:
                    decoded = self.model.decode_upper(
                        worker, tasks, greedy=False, rng=self.rng)
                rewards.append(reward_fn(decoded))
                losses.append(decoded.log_prob)

            mean_reward = float(np.mean(rewards))
            baseline = (mean_reward if baseline is None else
                        cfg.baseline_decay * baseline
                        + (1 - cfg.baseline_decay) * mean_reward)
            # REINFORCE: minimise -sum((r - b) * log pi).
            loss = None
            for reward, log_prob in zip(rewards, losses):
                advantage = reward - baseline
                term = log_prob * (-advantage / cfg.batch_size)
                loss = term if loss is None else loss + term
            optimizer.zero_grad()
            loss.backward()
            grad_norm = nn.clip_grad_norm(params, cfg.grad_clip)
            optimizer.step()
            self.history[phase].append(mean_reward)
            self.history.record(**{f"{phase}_grad_norm": grad_norm})
            obs.event("tsptw.train.iteration", phase=phase,
                      reward=mean_reward, grad_norm=grad_norm)

    def train_lower(self) -> None:
        """Phase 1: optimise window satisfaction."""
        self._train_phase("lower")

    def train_upper(self) -> None:
        """Phase 2: optimise window satisfaction minus route length."""
        self._train_phase("upper")

    def train(self) -> HierarchicalGPN:
        """Run both phases and return the trained model."""
        self.train_lower()
        self.train_upper()
        return self.model

    # ------------------------------------------------------------------ #
    def evaluate(self, num_instances: int = 20,
                 use_upper: bool = True) -> dict[str, float]:
        """Greedy-decode fresh instances; report feasibility rate and rtt."""
        cfg = self.config
        feasible = 0
        rtts = []
        with nn.no_grad():
            for _ in range(num_instances):
                worker, tasks = sample_training_worker(
                    self.rng, self.region, cfg.time_span, cfg.num_travel,
                    cfg.num_sensing, cfg.window_minutes)
                decoded = (self.model.decode_upper(worker, tasks)
                           if use_upper else self.model.decode_lower(worker, tasks))
                if decoded.timing.feasible:
                    feasible += 1
                    rtts.append(decoded.timing.route_travel_time)
        return {
            "feasible_rate": feasible / num_instances,
            "mean_rtt": float(np.mean(rtts)) if rtts else float("nan"),
        }


def make_default_gpn(region: Region, time_span: float, d_model: int = 32,
                     seed: int = 0) -> HierarchicalGPN:
    """Construct an untrained model scaled for ``region`` / ``time_span``."""
    scale = GPNScale(space=max(region.width, region.height), time=time_span)
    return HierarchicalGPN(scale, d_model=d_model,
                           rng=np.random.default_rng(seed))
