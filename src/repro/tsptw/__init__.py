"""``repro.tsptw`` — working-route planning (TSP with Time Windows).

SMORE calls a route planner for every feasibility check (Algorithm 1).
All backends share the :class:`~repro.tsptw.base.RoutePlanner` protocol:

* :class:`ExactDPSolver` — optimal, exponential; ground truth on small n.
* :class:`InsertionSolver` — cheapest feasible insertion + or-opt; the
  fast polynomial default used by the experiment harness.
* :class:`NearestNeighborSolver` — the construction the RN/TVPG/TCPG
  baselines start from.
* :class:`GPNSolver` — pre-trained graph pointer network with hierarchical
  RL (lower: window satisfaction; upper: + length penalty), the solver the
  paper uses.
* :class:`CachedPlanner` — memoisation wrapper for any backend.
"""

from .base import PlannerBase, RoutePlanner, RouteResult, combined_tasks
from .cache import CachedPlanner
from .exact import ExactDPSolver
from .gpn import DecodeResult, GPNModel, GPNScale, GPNSolver, HierarchicalGPN
from .hrl import (
    TSPTWTrainer,
    TSPTWTrainingConfig,
    make_default_gpn,
    sample_training_worker,
)
from .insertion import InsertionSolver, cheapest_insertion_position
from .kernels import (
    RoutePack,
    cheapest_insertion_packed,
    pack_route,
    simulate_route_packed,
    sweep_insertions,
)
from .nearest import NearestNeighborSolver, nearest_neighbor_order

__all__ = [
    "RoutePlanner", "PlannerBase", "RouteResult", "combined_tasks",
    "ExactDPSolver", "InsertionSolver", "cheapest_insertion_position",
    "NearestNeighborSolver", "nearest_neighbor_order", "CachedPlanner",
    "GPNScale", "GPNModel", "HierarchicalGPN", "GPNSolver", "DecodeResult",
    "TSPTWTrainer", "TSPTWTrainingConfig", "sample_training_worker",
    "make_default_gpn",
    "RoutePack", "pack_route", "simulate_route_packed",
    "cheapest_insertion_packed", "sweep_insertions",
]
