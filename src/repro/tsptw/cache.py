"""Memoising planner wrapper.

SMORE's candidate-update loop re-plans the same (worker, task-set) pairs —
notably the base routes used by the incentive model and the current
assigned-set route after each rejection.  :class:`CachedPlanner` memoises on
``(worker_id, frozenset of sensing task ids)``, which is sound because
entities are immutable within an instance.
"""

from __future__ import annotations

from typing import Sequence

from ..core.entities import SensingTask, Worker
from .base import RoutePlanner, RouteResult

__all__ = ["CachedPlanner"]


class CachedPlanner:
    """Wrap any :class:`RoutePlanner` with an unbounded memo table."""

    def __init__(self, planner: RoutePlanner):
        self.planner = planner
        self.speed = planner.speed
        self._cache: dict[tuple[int, frozenset[int]], RouteResult] = {}
        self._insert_cache: dict[tuple, RouteResult] = {}
        self.hits = 0
        self.misses = 0
        # Only exposed when the wrapped backend supports it, so callers
        # that feature-detect incremental insertion behave identically
        # with and without the cache.
        if not hasattr(planner, "plan_with_insertion"):
            self.plan_with_insertion = None  # type: ignore[assignment]

    def plan_with_insertion(self, worker: Worker, base_tasks,
                            new_task) -> RouteResult:
        """Memoised single-task insertion (delegates to the backend)."""
        key = (worker.worker_id, tuple(t.task_id for t in base_tasks),
               new_task.task_id)
        cached = self._insert_cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = self.planner.plan_with_insertion(worker, base_tasks, new_task)
        self._insert_cache[key] = result
        return result

    def plan(self, worker: Worker,
             sensing_tasks: Sequence[SensingTask]) -> RouteResult:
        key = (worker.worker_id, frozenset(s.task_id for s in sensing_tasks))
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = self.planner.plan(worker, sensing_tasks)
        self._cache[key] = result
        return result

    def base_route(self, worker: Worker) -> RouteResult:
        return self.plan(worker, [])

    def clear(self) -> None:
        self._cache.clear()
        self._insert_cache.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._cache)
