"""Memoising planner wrapper.

SMORE's candidate-update loop re-plans the same (worker, task-set) pairs —
notably the base routes used by the incentive model and the current
assigned-set route after each rejection.  :class:`CachedPlanner` memoises on
``(worker identity, frozenset of sensing task ids)``, which is sound because
entities are immutable within an instance.  Keys use ``id(worker)`` rather
than ``worker.worker_id`` — worker ids restart from zero in every instance,
and one cache may serve several instances at once (multi-instance decoding
interleaves planner calls across a batch of environments sharing one
planner).  Each entry stores the worker alongside its result so the id
stays pinned for exactly the entry's lifetime.

The wrapper is feature-transparent: ``plan_with_insertion`` and
``plan_many`` are bound onto the instance *only when the wrapped backend
provides them*, so ``hasattr``/``getattr`` feature detection (as done by
:class:`~repro.smore.candidates.CandidateTable`) behaves identically with
and without the cache — including the batched ``plan_many`` path used by
RL backends.  An optional ``max_size`` turns both memo tables into bounded
LRU caches, and :meth:`stats` exposes hit/miss/size accounting as a
:class:`~repro.core.perf.PerfCounters`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

from ..core.entities import SensingTask, Worker
from ..core.perf import PerfCounters
from .base import RoutePlanner, RouteResult

__all__ = ["CachedPlanner"]


class CachedPlanner:
    """Wrap any :class:`RoutePlanner` with a (optionally bounded) memo table.

    Parameters
    ----------
    planner:
        The backend to memoise.
    max_size:
        Maximum number of entries per memo table (full-plan and insertion
        tables are bounded independently).  ``None`` keeps the historical
        unbounded behaviour; a bound evicts least-recently-used entries,
        which caps memory on long experiment grids.
    """

    def __init__(self, planner: RoutePlanner, max_size: int | None = None):
        self.planner = planner
        self.speed = planner.speed
        if max_size is not None and max_size < 1:
            raise ValueError("max_size must be a positive integer or None")
        self.max_size = max_size
        # Values are (worker, result): keeping the worker referenced pins
        # its id, so identity keys can never collide with a later worker
        # that happens to reuse a freed id.
        self._cache: OrderedDict[tuple[int, frozenset[int]],
                                 tuple[Worker, RouteResult]] = OrderedDict()
        self._insert_cache: OrderedDict[tuple, tuple[Worker, RouteResult]] = \
            OrderedDict()
        self.hits = 0
        self.misses = 0
        self.backend_calls = 0
        self.evictions = 0
        # Bind optional-protocol methods only when the backend has them, so
        # feature detection sees exactly the backend's capabilities.
        if getattr(planner, "plan_with_insertion", None) is not None:
            self.plan_with_insertion = self._plan_with_insertion
        if getattr(planner, "plan_many", None) is not None:
            self.plan_many = self._plan_many
        if getattr(planner, "plan_insertions_many", None) is not None:
            self.plan_insertions_many = self._plan_insertions_many
        if getattr(planner, "bind_instance", None) is not None:
            self.bind_instance = planner.bind_instance

    # ------------------------------------------------------------------ #
    def _lookup(self, table: OrderedDict, key) -> RouteResult | None:
        cached = table.get(key)
        if cached is not None:
            self.hits += 1
            table.move_to_end(key)
        return cached

    def _store(self, table: OrderedDict, key, result: RouteResult) -> None:
        table[key] = result
        if self.max_size is not None and len(table) > self.max_size:
            table.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------------ #
    def _plan_with_insertion(self, worker: Worker, base_tasks,
                             new_task, min_position: int = 0) -> RouteResult:
        """Memoised single-task insertion (delegates to the backend).

        The key normalises the base tasks to a *sorted* id tuple so that
        permutations of the same base set share one entry, mirroring the
        order-insensitive ``frozenset`` key :meth:`plan` uses.  (Base
        orders for one task set come from the same deterministic planner,
        so within a solve the set determines the order anyway.)  The
        anchored ``min_position`` is part of the key: the same insertion
        scanned from a different committed position is a different plan.
        """
        key = (id(worker),
               tuple(sorted(t.task_id for t in base_tasks)),
               new_task.task_id, min_position)
        cached = self._lookup(self._insert_cache, key)
        if cached is not None:
            return cached[1]
        self.misses += 1
        self.backend_calls += 1
        result = self.planner.plan_with_insertion(
            worker, base_tasks, new_task, min_position=min_position)
        self._store(self._insert_cache, key, (worker, result))
        return result

    def _plan_insertions_many(self, worker: Worker, base_tasks,
                              new_tasks,
                              min_position: int = 0) -> list[RouteResult]:
        """Memoised batched insertion: shares keys with
        :meth:`_plan_with_insertion`, so batched sweeps and single queries
        populate one table; only the missing tasks reach the backend, in
        one batched call."""
        base_key = tuple(sorted(t.task_id for t in base_tasks))
        keys = [(id(worker), base_key, t.task_id, min_position)
                for t in new_tasks]
        hits = [self._lookup(self._insert_cache, key) for key in keys]
        results: list[RouteResult | None] = [
            hit[1] if hit is not None else None for hit in hits]
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:
            self.misses += len(missing)
            self.backend_calls += 1  # one batched call serves every miss
            fresh = self.planner.plan_insertions_many(
                worker, base_tasks, [new_tasks[i] for i in missing],
                min_position=min_position)
            for i, result in zip(missing, fresh):
                self._store(self._insert_cache, keys[i], (worker, result))
                results[i] = result
        return results  # type: ignore[return-value]

    def _plan_many(self, worker: Worker,
                   task_sets: Sequence[Sequence[SensingTask]]
                   ) -> list[RouteResult]:
        """Memoised batch planning: only cache misses reach the backend."""
        keys = [(id(worker), frozenset(s.task_id for s in tasks))
                for tasks in task_sets]
        hits = [self._lookup(self._cache, key) for key in keys]
        results: list[RouteResult | None] = [
            hit[1] if hit is not None else None for hit in hits]
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:
            self.misses += len(missing)
            self.backend_calls += 1  # one batched call serves every miss
            fresh = self.planner.plan_many(
                worker, [task_sets[i] for i in missing])
            for i, result in zip(missing, fresh):
                self._store(self._cache, keys[i], (worker, result))
                results[i] = result
        return results  # type: ignore[return-value]

    def plan(self, worker: Worker,
             sensing_tasks: Sequence[SensingTask]) -> RouteResult:
        key = (id(worker), frozenset(s.task_id for s in sensing_tasks))
        cached = self._lookup(self._cache, key)
        if cached is not None:
            return cached[1]
        self.misses += 1
        self.backend_calls += 1
        result = self.planner.plan(worker, sensing_tasks)
        self._store(self._cache, key, (worker, result))
        return result

    def base_route(self, worker: Worker) -> RouteResult:
        return self.plan(worker, [])

    # ------------------------------------------------------------------ #
    def stats(self) -> PerfCounters:
        """Current accounting as a :class:`PerfCounters` snapshot.

        ``planner_calls`` counts *logical* plans computed (one per cache
        miss); ``backend_calls`` counts true backend invocations, which
        on the batched ``plan_many`` path can be far fewer — one batched
        call serves every miss in the request.  Both are exposed so the
        batched path's saving is visible rather than overstated.
        """
        return PerfCounters(
            planner_calls=self.misses,
            backend_calls=self.backend_calls,
            cache_hits=self.hits,
            cache_misses=self.misses,
            cache_size=len(self._cache) + len(self._insert_cache),
            cache_evictions=self.evictions,
        )

    def clear(self) -> None:
        self._cache.clear()
        self._insert_cache.clear()
        self.hits = 0
        self.misses = 0
        self.backend_calls = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._cache)
