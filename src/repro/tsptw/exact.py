"""Exact TSPTW via Held-Karp bitmask dynamic programming.

Optimal makespan (= route travel time, since departure is fixed at the
worker's earliest feasible time) over all task orderings.  State is
``(visited_mask, last_task)`` with value = earliest completion time at
``last_task``; earlier completion is a valid dominance criterion because
waiting only ever delays and all windows look forward in time.

Exponential in the task count — used for small instances, as ground truth
for the heuristic/RL solvers' optimality-gap tests, and inside unit tests.
"""

from __future__ import annotations

from typing import Sequence

from ..core.entities import SensingTask, Worker
from ..core.geometry import DEFAULT_SPEED, travel_time
from ..core.route import WorkingRoute
from .base import PlannerBase, RouteResult, combined_tasks

__all__ = ["ExactDPSolver"]

_INF = float("inf")


class ExactDPSolver(PlannerBase):
    """Optimal TSPTW solver for small task sets.

    Parameters
    ----------
    speed:
        Worker movement speed in meters/minute.
    max_tasks:
        Safety limit; planning more tasks than this raises ``ValueError``
        (the DP table has ``2^n * n`` states).
    """

    def __init__(self, speed: float = DEFAULT_SPEED, max_tasks: int = 16):
        self.speed = speed
        self.max_tasks = max_tasks

    def plan(self, worker: Worker,
             sensing_tasks: Sequence[SensingTask]) -> RouteResult:
        tasks = combined_tasks(worker, sensing_tasks)
        n = len(tasks)
        if n > self.max_tasks:
            raise ValueError(
                f"ExactDPSolver limited to {self.max_tasks} tasks, got {n}")
        if n == 0:
            return RouteResult.from_route(WorkingRoute(worker, (), speed=self.speed))

        depart = worker.earliest_departure
        latest = worker.latest_arrival

        # Completion time of task j when arriving at time t, or None.
        def complete(j: int, arrival: float) -> float | None:
            task = tasks[j]
            if isinstance(task, SensingTask):
                return task.earliest_completion(arrival)
            return arrival + task.service_time

        # dp[mask][j] = earliest completion time at j having visited mask.
        size = 1 << n
        dp = [[_INF] * n for _ in range(size)]
        parent: list[list[int]] = [[-1] * n for _ in range(size)]

        for j in range(n):
            arrival = depart + travel_time(worker.origin, tasks[j].location,
                                           speed=self.speed)
            finish = complete(j, arrival)
            if finish is not None and finish <= latest:
                dp[1 << j][j] = finish

        for mask in range(size):
            for j in range(n):
                if not mask & (1 << j) or dp[mask][j] == _INF:
                    continue
                t_j = dp[mask][j]
                for k in range(n):
                    if mask & (1 << k):
                        continue
                    arrival = t_j + travel_time(tasks[j].location,
                                                tasks[k].location,
                                                speed=self.speed)
                    finish = complete(k, arrival)
                    if finish is None or finish > latest:
                        continue
                    new_mask = mask | (1 << k)
                    if finish < dp[new_mask][k]:
                        dp[new_mask][k] = finish
                        parent[new_mask][k] = j

        full = size - 1
        best_arrival = _INF
        best_last = -1
        for j in range(n):
            if dp[full][j] == _INF:
                continue
            arrival = dp[full][j] + travel_time(tasks[j].location,
                                                worker.destination,
                                                speed=self.speed)
            if arrival < best_arrival:
                best_arrival = arrival
                best_last = j

        if best_last < 0 or best_arrival > latest + 1e-9:
            return RouteResult.infeasible()

        # Reconstruct the optimal order.
        order: list[int] = []
        mask, j = full, best_last
        while j >= 0:
            order.append(j)
            prev = parent[mask][j]
            mask &= ~(1 << j)
            j = prev
        order.reverse()

        route = WorkingRoute(worker, tuple(tasks[i] for i in order),
                             speed=self.speed)
        return RouteResult.from_route(route)
