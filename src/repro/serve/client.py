"""In-process client helpers for driving a :class:`SolverService`.

Tests, benchmarks and the ``python -m repro.serve`` smoke runner all
need the same shape of workload: fire N concurrent requests at a
service, collect every response (or error) in request order, and read
the serving stats afterwards.  :func:`drive_requests` packages that as
one synchronous call — it owns the event loop, the service lifecycle,
and the fan-out — so a benchmark body stays a single line.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from .engine import WarmEngine
from .service import ServeConfig, SolverService

__all__ = ["SolveRequest", "drive_requests", "run_workload"]


@dataclass(frozen=True)
class SolveRequest:
    """One client-side solve request (the arguments of ``service.solve``)."""

    instance: object
    greedy: bool = True
    seed: int | None = None
    num_samples: int = 1
    timeout: float | None = None

    def submit(self, service: SolverService):
        """The coroutine awaiting this request's solution."""
        return service.solve(self.instance, greedy=self.greedy,
                             seed=self.seed, num_samples=self.num_samples,
                             timeout=self.timeout)


@dataclass
class WorkloadResult:
    """Everything a benchmark wants back from one service run."""

    outcomes: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    #: The service's own registry (outlives the stopped service) — the
    #: OpenMetrics exporter and tests read it directly.
    metrics: object = None
    #: Completed per-request traces, in completion order.
    traces: list = field(default_factory=list)

    @property
    def solutions(self) -> list:
        """Successful solutions only (errors filtered out)."""
        return [o for o in self.outcomes if not isinstance(o, Exception)]

    @property
    def errors(self) -> list:
        return [o for o in self.outcomes if isinstance(o, Exception)]


async def run_workload(service: SolverService,
                       requests: list[SolveRequest]) -> list:
    """Fire ``requests`` concurrently against a *running* service.

    Returns one outcome per request, in request order: a
    :class:`~repro.core.solution.Solution` or the exception that request
    failed with (deadline, overload, engine error).  All requests are
    submitted in one scheduling burst, so the micro-batcher sees them as
    concurrent arrivals.
    """
    return await asyncio.gather(
        *(request.submit(service) for request in requests),
        return_exceptions=True)


def drive_requests(engine: WarmEngine, requests: list[SolveRequest],
                   config: ServeConfig | None = None,
                   metrics_path=None, slo=None,
                   recorder=None) -> WorkloadResult:
    """Run a whole service lifecycle around one concurrent workload.

    Starts a :class:`SolverService` on a fresh event loop, fires every
    request concurrently, drains and stops the service, and returns the
    outcomes plus the final :meth:`SolverService.stats` summary.  When
    ``metrics_path`` is given, the serving metrics JSONL is written
    there before the service stops reporting.  ``slo`` / ``recorder``
    pass straight through to the service (SLO tracking, flight-recorder
    journaling); the recorder is closed by the service's ``stop``.
    """

    async def _run():
        async with SolverService(engine, config, slo=slo,
                                 recorder=recorder) as service:
            outcomes = await run_workload(service, requests)
            stats = service.stats()
            if metrics_path is not None:
                service.write_metrics_jsonl(metrics_path)
            traces = list(service.recent_traces)
        return WorkloadResult(outcomes=outcomes, stats=stats,
                              metrics=service.metrics, traces=traces)

    return asyncio.run(_run())
