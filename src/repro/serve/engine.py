"""The warm engine: solver state kept resident across requests.

A cold ``SMORESolver.solve`` call pays three start-up costs on every
request: the nn backend is re-resolved, the planner starts with an empty
memo, and the instance's candidate table is rebuilt from scratch (the
O(W x S) init sweep).  :class:`WarmEngine` keeps all three hot:

* the **policy weights** and the **planner** live on the wrapped solver
  for the engine's whole lifetime — a memoising planner's cache keeps
  paying off across requests;
* the **backend** is resolved once at construction and re-activated
  around every batch, so the service keeps decoding through the backend
  it warmed up with even if the process-global default is flipped;
* a bounded LRU of :class:`~repro.smore.env.SelectionEnv` objects keyed
  by instance identity keeps **candidate-table snapshots** resident —
  a repeat request for a known instance restores its table by copy
  instead of re-running the init sweep.

The engine is *not* thread-safe; the service drives it from a single
dispatcher thread (see :mod:`repro.serve.service`).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

from ..nn import backend as nn_backend
from ..smore.env import SelectionEnv
from ..smore.policy import EpisodeStaticsCache
from ..smore.solver import SMORESolver, SolveBatch

__all__ = ["WarmEngine", "BatchReport"]

DEFAULT_MAX_WARM_INSTANCES = 64


@dataclass
class BatchReport:
    """Engine-side attribution for one executed batch.

    ``env_events`` maps ``id(instance)`` to ``"hit"``/``"miss"`` for
    every env the batch touched — the per-request half of the engine's
    aggregate residency counters, which the service copies into each
    request's :class:`~repro.serve.service.RequestTrace`.
    """

    execute_s: float = 0.0
    env_events: dict[int, str] = field(default_factory=dict)
    statics_hits: int = 0
    statics_misses: int = 0


class WarmEngine:
    """Resident solver state shared by every request the service handles.

    Parameters
    ----------
    solver:
        The :class:`~repro.smore.solver.SMORESolver` whose policy weights
        and planner stay resident.
    max_warm_instances:
        Capacity of the per-instance env LRU.  Each entry holds one
        :class:`SelectionEnv` (and thereby one candidate-table snapshot);
        the least recently used entry is evicted past capacity.
    reuse_candidates:
        Passed through to fresh envs; ``True`` (default) enables the
        snapshot-restore fast path on repeat resets.
    """

    def __init__(self, solver: SMORESolver,
                 max_warm_instances: int = DEFAULT_MAX_WARM_INSTANCES,
                 reuse_candidates: bool = True):
        if max_warm_instances < 1:
            raise ValueError(
                f"max_warm_instances must be >= 1, got {max_warm_instances}")
        self.solver = solver
        self.max_warm_instances = max_warm_instances
        self.reuse_candidates = reuse_candidates
        # Resolve eagerly: the first request should not pay (or race on)
        # lazy backend resolution, and the engine keeps serving through
        # this backend even if the global default is flipped later.
        self.backend = nn_backend.get_backend()
        # Keep the static encoder pass resident too: serving weights are
        # frozen, so per-instance TASNet statics (travel-grid conv, task
        # encoder, pointer keys) stay valid across requests.  Policies
        # without the seam (selection rules, ablations) just skip it.
        self.statics_cache = None
        if hasattr(solver.policy, "statics_cache"):
            self.statics_cache = EpisodeStaticsCache(max_warm_instances)
            solver.policy.statics_cache = self.statics_cache
        # id(instance) -> (instance, env).  The stored instance reference
        # keeps the id stable for the lifetime of the entry.
        self._envs: OrderedDict[int, tuple] = OrderedDict()
        self.env_hits = 0
        self.env_misses = 0
        self.env_evictions = 0
        # Per-batch env hit/miss attribution, active only inside
        # execute_traced (None otherwise, so the untraced path pays one
        # attribute test per env lookup).
        self._env_events: dict[int, str] | None = None

    # ------------------------------------------------------------------ #
    def env_for(self, instance) -> SelectionEnv:
        """The resident env for ``instance``, creating one on first use.

        Keyed by object identity: the serving fast path is repeat solves
        of the *same* instance object (re-pricing, incremental planning
        loops).  Equal-but-distinct instances get distinct envs.
        """
        key = id(instance)
        entry = self._envs.get(key)
        if entry is not None:
            self._envs.move_to_end(key)
            self.env_hits += 1
            if self._env_events is not None:
                self._env_events.setdefault(key, "hit")
            return entry[1]
        self.env_misses += 1
        if self._env_events is not None:
            self._env_events.setdefault(key, "miss")
        env = SelectionEnv(instance, self.solver.planner,
                           reuse_candidates=self.reuse_candidates)
        self._envs[key] = (instance, env)
        if len(self._envs) > self.max_warm_instances:
            evicted_key, _ = self._envs.popitem(last=False)
            self.env_evictions += 1
            if self.statics_cache is not None:
                # Coupled eviction: both LRUs key by id(instance), and the
                # entries pin the instance reference.  Dropping the env
                # entry alone would leave the statics entry as the only
                # pin — or, once the statics LRU churned it independently,
                # free the id for reuse while this side still tracked it.
                # Evicting the statics entry in the same breath keeps one
                # invariant: statics are cached only for instances whose
                # env is resident, so an id can never be recycled while
                # either cache still maps it.
                self.statics_cache.evict(evicted_key)
        return env

    @property
    def warm_instances(self) -> int:
        """Number of instances with a resident env."""
        return len(self._envs)

    # ------------------------------------------------------------------ #
    def open_batch(self, max_size: int | None = None,
                   clock=None) -> SolveBatch:
        """Open a :class:`SolveBatch` backed by the engine's warm envs."""
        kwargs = {} if clock is None else {"clock": clock}
        return self.solver.open_batch(max_size=max_size,
                                      env_factory=self.env_for, **kwargs)

    def execute(self, batch: SolveBatch):
        """Run ``batch`` under the engine's resident backend."""
        with nn_backend.use_backend(self.backend.name):
            return batch.execute()

    def execute_traced(self, batch: SolveBatch):
        """Run ``batch`` and also return a :class:`BatchReport`.

        Delegates to :meth:`execute` (so subclasses that override the
        execution path keep working) while collecting per-batch
        attribution: wall time, per-instance env hit/miss, and the
        statics-cache delta.  Returns ``(results, report)``.
        """
        statics_before = (0, 0)
        if self.statics_cache is not None:
            statics_before = (self.statics_cache.hits,
                              self.statics_cache.misses)
        self._env_events = {}
        start = time.perf_counter()
        try:
            results = self.execute(batch)
        finally:
            events, self._env_events = self._env_events, None
        report = BatchReport(execute_s=time.perf_counter() - start,
                             env_events=events)
        if self.statics_cache is not None:
            report.statics_hits = self.statics_cache.hits - statics_before[0]
            report.statics_misses = (self.statics_cache.misses
                                     - statics_before[1])
        return results, report

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Engine-side residency counters."""
        stats = {
            "backend": self.backend.name,
            "warm_instances": self.warm_instances,
            "env_hits": self.env_hits,
            "env_misses": self.env_misses,
            "env_evictions": self.env_evictions,
        }
        if self.statics_cache is not None:
            stats["statics_hits"] = self.statics_cache.hits
            stats["statics_misses"] = self.statics_cache.misses
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WarmEngine(solver={self.solver.name!r}, "
                f"backend={self.backend.name!r}, "
                f"warm={self.warm_instances}/{self.max_warm_instances})")
