"""The online solver service: asyncio front-end + cross-request batching.

Three moving parts on one event loop:

* **front-end** — :meth:`SolverService.solve` is the request surface:
  admission control (a bounded queue; :class:`ServiceOverloaded` past
  ``max_queue_depth``), an optional per-request ``timeout`` that becomes
  a monotonic-clock deadline, and a future the caller awaits.
* **micro-batcher** — the dispatch loop pops the first waiting request,
  then coalesces companions until the batch holds ``max_batch_size``
  requests or ``max_wait_us`` elapses — whichever first.  While a batch
  is decoding, new arrivals pile up in the queue, so under load the next
  batch forms instantly from the backlog (natural batching).
* **dispatcher** — each coalesced batch becomes one
  :class:`~repro.smore.solver.SolveBatch` executed on the
  :class:`~repro.serve.engine.WarmEngine` in a single worker thread
  (``run_in_executor``), so the event loop keeps admitting while the
  engine decodes and all engine state stays single-threaded.  Requests
  whose deadline expired while queued are shed — their future fails with
  :class:`DeadlineExceeded` and they never enter the decode batch.

Batching never changes an answer: a greedy request's solution is
bit-identical to ``SMORESolver.solve`` on the same instance no matter
which companions shared its batch (pinned by ``tests/serve``).  Because
greedy decoding is deterministic, the dispatcher additionally collapses
*identical* concurrent greedy requests (same instance object) onto one
decode slot (``ServeConfig.dedupe_greedy``) — every duplicate receives
the lone decode's solution, so hot instances cost one decode per batch
however many clients ask.

Serving telemetry lands in the service's own
:class:`~repro.obs.metrics.MetricsRegistry` (queue depth, batch-size and
latency histograms, shed/rejected counters) and is mirrored through the
module-level :mod:`repro.obs` API so an active tracer captures it too;
:meth:`SolverService.stats` summarises p50/p95/p99 latency and sustained
throughput.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..core.errors import ReproError
from ..obs.metrics import METRICS_SCHEMA_VERSION, MetricsRegistry
from ..obs.recorder import solution_digest
from ..smore.batch import DeadlineExpired
from .engine import WarmEngine

__all__ = ["ServeConfig", "SolverService", "RequestTrace", "ServiceError",
           "ServiceClosed", "ServiceOverloaded", "DeadlineExceeded"]


class ServiceError(ReproError):
    """Base class for solver-service request failures."""


class ServiceClosed(ServiceError):
    """The service is not running (never started, or already stopped)."""


class ServiceOverloaded(ServiceError):
    """The request queue is full; the request was rejected unqueued."""


class DeadlineExceeded(ServiceError):
    """The request's deadline passed before the engine could decode it."""


@dataclass(frozen=True)
class ServeConfig:
    """Micro-batching policy knobs.

    ``max_batch_size`` caps how many requests one engine batch may hold;
    ``max_wait_us`` bounds how long the batcher holds the *first* request
    of a forming batch waiting for companions (0 disables coalescing
    waits: each batch is whatever the backlog already holds); and
    ``max_queue_depth`` bounds the admission queue — requests beyond it
    fail fast with :class:`ServiceOverloaded` instead of queuing into a
    deadline they cannot meet.
    """

    max_batch_size: int = 8
    max_wait_us: float = 2_000.0
    max_queue_depth: int = 256
    #: Record a :class:`RequestTrace` per request (stage attribution:
    #: admission wait, coalesce wait, dedup outcome, batch width,
    #: encode/decode/planner time, cache hits).  Cheap enough to leave on
    #: (pinned <2% in ``BENCH_PR9``); ``False`` restores the bare path.
    request_traces: bool = True
    #: How many completed traces :attr:`SolverService.recent_traces`
    #: retains for postmortems (a bounded deque; 0 disables retention
    #: without disabling tracing).
    trace_history: int = 256
    #: Coalesce *identical* concurrent greedy requests (same instance
    #: object, single-rollout greedy decode) onto one decode slot.
    #: Greedy decoding is deterministic, so every duplicate receives the
    #: bit-identical solution the lone decode produced — the serving
    #: analogue of in-flight request collapsing.  Sampled requests never
    #: dedupe (each owns its seed).
    dedupe_greedy: bool = True

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait_us < 0:
            raise ValueError(
                f"max_wait_us must be >= 0, got {self.max_wait_us}")
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}")


@dataclass
class RequestTrace:
    """Per-request stage attribution through the serving pipeline.

    One trace follows one request from admission to response and records
    where its latency went: ``admission_wait_ms`` is time spent in the
    admission queue (enqueue to dispatcher pop), ``coalesce_wait_ms`` the
    time the micro-batcher held it while the batch formed, ``execute_ms``
    the engine wall time of the batch it rode (shared, not per-request).
    ``dedup`` is ``"unique"`` (no dedup key), ``"primary"`` (owned the
    decode slot) or ``"duplicate"`` (piggybacked on a primary's ticket).
    ``encode_ms``/``decode_ms``/``planner_calls``/``cache_hits``/
    ``cache_misses`` come from the solution's own perf counters —
    duplicates report their primary's numbers, since they share its
    solution.  ``env_cache`` says whether this request's instance found a
    resident env (``"hit"``/``"miss"``; ``None`` when untraceable).
    """

    request_id: int
    greedy: bool = True
    num_samples: int = 1
    seed: int | None = None
    queue_depth_at_admit: int = 0
    admission_wait_ms: float = 0.0
    coalesce_wait_ms: float = 0.0
    dedup: str = "unique"
    batch_requests: int = 0
    batch_decoded: int = 0
    execute_ms: float = 0.0
    encode_ms: float = 0.0
    decode_ms: float = 0.0
    planner_calls: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    env_cache: str | None = None
    outcome: str = "pending"
    latency_ms: float = 0.0

    def to_dict(self) -> dict:
        """JSON-ready view (the ``serve.request`` trace-event payload)."""
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


@dataclass
class _PendingRequest:
    """One enqueued request awaiting dispatch."""

    instance: object
    greedy: bool
    seed: int | None
    num_samples: int
    deadline: float | None
    enqueued_at: float
    future: asyncio.Future
    request_id: int = 0
    popped_at: float = 0.0
    trace: RequestTrace | None = None


class SolverService:
    """Asyncio solve service over one :class:`WarmEngine`.

    Use as an async context manager, or call :meth:`start` / :meth:`stop`
    explicitly::

        engine = WarmEngine(solver)
        async with SolverService(engine) as service:
            solution = await service.solve(instance)

    :meth:`solve` may be awaited from any number of concurrent tasks on
    the service's event loop; the engine itself runs on one dedicated
    worker thread, one batch at a time.
    """

    def __init__(self, engine: WarmEngine, config: ServeConfig | None = None,
                 slo=None, recorder=None):
        self.engine = engine
        self.config = config or ServeConfig()
        self.metrics = MetricsRegistry()
        #: Optional :class:`~repro.obs.slo.SloTracker` fed every request
        #: outcome (ok / shed_deadline / overload / error) + latency.
        self.slo = slo
        #: Optional :class:`~repro.obs.recorder.FlightRecorder` journaling
        #: every admitted request; closed (footer written) by stop().
        self.recorder = recorder
        #: Bounded history of completed :class:`RequestTrace` objects.
        self.recent_traces: deque = deque(
            maxlen=max(self.config.trace_history, 0))
        self._queue: asyncio.Queue | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._dispatch_task: asyncio.Task | None = None
        self._running = False
        self._inflight = 0
        self._next_request_id = 0
        self._started_at: float | None = None
        self._first_request_at: float | None = None
        self._last_response_at: float | None = None

    # -- lifecycle ------------------------------------------------------ #
    async def start(self) -> "SolverService":
        """Bind to the running loop and start the dispatch task."""
        if self._running:
            raise RuntimeError("service already started")
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-engine")
        self._dispatch_task = self._loop.create_task(
            self._dispatch_loop(), name="repro-serve-dispatch")
        self._running = True
        self._started_at = time.monotonic()
        obs.event("serve.start", backend=self.engine.backend.name,
                  max_batch_size=self.config.max_batch_size,
                  max_wait_us=self.config.max_wait_us)
        return self

    async def stop(self) -> None:
        """Stop accepting requests, drain what is queued, then shut down.

        Every request admitted before ``stop`` was called still gets its
        answer (or its deadline error); only new :meth:`solve` calls fail
        with :class:`ServiceClosed`.
        """
        if not self._running:
            return
        self._running = False
        while self._inflight > 0:
            await asyncio.sleep(0.001)
        self._dispatch_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._dispatch_task
        self._executor.shutdown(wait=True)
        if self.recorder is not None:
            self.recorder.close()
        obs.event("serve.stop",
                  responses=int(self.metrics.counters.get(
                      "serve.responses", 0)))

    async def __aenter__(self) -> "SolverService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    @property
    def running(self) -> bool:
        return self._running

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize() if self._queue is not None else 0

    # -- front-end ------------------------------------------------------ #
    async def solve(self, instance, greedy: bool = True,
                    seed: int | None = None, num_samples: int = 1,
                    timeout: float | None = None,
                    return_trace: bool = False):
        """Submit one solve request; await its solution.

        ``greedy=True`` requests the deterministic argmax decode (the
        answer is bit-identical to ``SMORESolver.solve(instance)``);
        ``greedy=False`` samples, with ``seed`` making the draw
        reproducible (the decode matches
        ``solve(instance, greedy=False, rng=default_rng(seed),
        num_samples=...)``).  ``timeout`` (seconds) sets a deadline:
        requests still undecoded when it passes fail with
        :class:`DeadlineExceeded`; requests that cannot even be queued
        fail immediately with :class:`ServiceOverloaded`.

        ``return_trace=True`` returns ``(solution, RequestTrace)``
        instead of the bare solution — the per-request stage attribution
        (requires ``ServeConfig.request_traces``; the trace is ``None``
        when tracing is off).
        """
        if not self._running:
            raise ServiceClosed("service is not running; use 'async with' "
                                "or call start() first")
        if self._queue.qsize() >= self.config.max_queue_depth:
            self._count("serve.rejected_overload")
            if self.slo is not None:
                self.slo.record("overload")
            raise ServiceOverloaded(
                f"queue depth {self._queue.qsize()} at configured maximum "
                f"{self.config.max_queue_depth}")
        now = time.monotonic()
        if self._first_request_at is None:
            self._first_request_at = now
        request_id = self._next_request_id
        self._next_request_id += 1
        trace = None
        if self.config.request_traces:
            trace = RequestTrace(
                request_id=request_id, greedy=bool(greedy),
                num_samples=num_samples, seed=seed,
                queue_depth_at_admit=self._queue.qsize())
        pending = _PendingRequest(
            instance=instance, greedy=bool(greedy), seed=seed,
            num_samples=num_samples,
            deadline=None if timeout is None else now + timeout,
            enqueued_at=now, future=self._loop.create_future(),
            request_id=request_id, trace=trace)
        if self.recorder is not None:
            self.recorder.record_request(
                request_id, instance, greedy=bool(greedy), seed=seed,
                num_samples=num_samples, timeout=timeout)
        self._inflight += 1
        self._queue.put_nowait(pending)
        self._count("serve.requests")
        self._gauge("serve.queue_depth", float(self._queue.qsize()))
        solution = await pending.future
        if return_trace:
            return solution, trace
        return solution

    # -- micro-batcher + dispatcher ------------------------------------- #
    async def _dispatch_loop(self) -> None:
        while True:
            first = await self._queue.get()
            first.popped_at = time.monotonic()
            batch = await self._coalesce([first])
            await self._dispatch(batch)

    async def _coalesce(self, batch: list) -> list:
        """Grow ``batch`` until full or ``max_wait_us`` elapses."""
        wait_deadline = time.monotonic() + self.config.max_wait_us / 1e6
        while len(batch) < self.config.max_batch_size:
            try:
                pending = self._queue.get_nowait()
                pending.popped_at = time.monotonic()
                batch.append(pending)
                continue
            except asyncio.QueueEmpty:
                pass
            remaining = wait_deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                pending = await asyncio.wait_for(
                    self._queue.get(), remaining)
                pending.popped_at = time.monotonic()
                batch.append(pending)
            except asyncio.TimeoutError:
                break
        return batch

    def _fail(self, pending: _PendingRequest, exc: Exception) -> None:
        if not pending.future.done():
            pending.future.set_exception(exc)
        self._inflight -= 1

    def _settle(self, pending: _PendingRequest, outcome: str,
                now: float, latency_ms: float | None = None,
                digest: str | None = None) -> None:
        """Telemetry fan-out for one request reaching a terminal state.

        Completes the trace (history + ``serve.request`` trace event),
        feeds the SLO tracker, and journals the outcome.  ``cancelled``
        (the caller abandoned its future) is journaled but never charged
        against the error budget — the service did nothing wrong.
        """
        trace = pending.trace
        if trace is not None:
            trace.outcome = outcome
            if latency_ms is not None:
                trace.latency_ms = latency_ms
            self.recent_traces.append(trace)
            if obs.get_tracer().enabled:
                obs.event("serve.request", **trace.to_dict())
        if self.slo is not None and outcome != "cancelled":
            self.slo.record(outcome, latency_ms=latency_ms, now=now)
        if self.recorder is not None:
            self.recorder.record_outcome(pending.request_id, outcome,
                                         digest=digest,
                                         latency_ms=latency_ms)

    async def _dispatch(self, batch: list) -> None:
        dispatch_start = time.monotonic()
        tracing = self.config.request_traces
        if tracing:
            for pending in batch:
                trace = pending.trace
                if trace is None:
                    continue
                trace.admission_wait_ms = max(
                    pending.popped_at - pending.enqueued_at, 0.0) * 1e3
                trace.coalesce_wait_ms = max(
                    dispatch_start - pending.popped_at, 0.0) * 1e3
                self._observe("serve.admission_wait_ms",
                              trace.admission_wait_ms)
                self._observe("serve.coalesce_wait_ms",
                              trace.coalesce_wait_ms)
        solve_batch = self.engine.open_batch(max_size=len(batch))
        live = []
        decoded = 0
        primaries: dict[int, int] = {}   # id(instance) -> shared ticket
        for pending in batch:
            if pending.future.done():        # caller gave up while queued
                self._settle(pending, "cancelled", dispatch_start)
                self._inflight -= 1
                continue
            dedupe_key = (id(pending.instance)
                          if (self.config.dedupe_greedy and pending.greedy
                              and pending.num_samples == 1) else None)
            if dedupe_key is not None and dedupe_key in primaries:
                # Identical deterministic decode already admitted this
                # batch: piggyback on its ticket instead of burning a
                # decode slot.  The duplicate still honours its own
                # deadline, mirroring admit()'s shed-at-admission check.
                if pending.deadline is not None \
                        and time.monotonic() >= pending.deadline:
                    self._count("serve.shed_deadline")
                    self._settle(pending, "shed_deadline", dispatch_start)
                    self._fail(pending, DeadlineExceeded(
                        "deadline passed while queued"))
                    continue
                self._count("serve.dedup_hits")
                if pending.trace is not None:
                    pending.trace.dedup = "duplicate"
                live.append((pending, primaries[dedupe_key]))
                continue
            rng = (np.random.default_rng(pending.seed)
                   if pending.seed is not None else None)
            try:
                ticket = solve_batch.admit(
                    pending.instance, greedy=pending.greedy, rng=rng,
                    num_samples=pending.num_samples,
                    deadline=pending.deadline)
            except DeadlineExpired:
                self._count("serve.shed_deadline")
                self._settle(pending, "shed_deadline", dispatch_start)
                self._fail(pending, DeadlineExceeded(
                    "deadline passed while queued"))
                continue
            if dedupe_key is not None:
                primaries[dedupe_key] = ticket
                if pending.trace is not None:
                    pending.trace.dedup = "primary"
            decoded += 1
            live.append((pending, ticket))
        if not live:
            return

        # Histogram of *decoded* batch width — dedup duplicates share a
        # slot, so this is the size the engine actually saw.
        self._observe("serve.batch_size", float(decoded))
        try:
            if tracing:
                results, report = await self._loop.run_in_executor(
                    self._executor, self.engine.execute_traced, solve_batch)
            else:
                results = await self._loop.run_in_executor(
                    self._executor, self.engine.execute, solve_batch)
                report = None
        except Exception as exc:  # engine failure fails the whole batch
            self._count("serve.errors")
            now = time.monotonic()
            for pending, _ in live:
                self._settle(pending, "error", now,
                             latency_ms=(now - pending.enqueued_at) * 1e3)
                self._fail(pending, exc)
            return
        if report is not None:
            self._observe("serve.execute_ms", report.execute_s * 1e3)

        now = time.monotonic()
        for pending, ticket in live:
            solution = results[ticket]
            trace = pending.trace
            if trace is not None:
                trace.batch_requests = len(live)
                trace.batch_decoded = decoded
                if report is not None:
                    trace.execute_ms = report.execute_s * 1e3
                    trace.env_cache = report.env_events.get(
                        id(pending.instance))
                if solution is not None:
                    perf = solution.perf
                    trace.encode_ms = perf.init_time * 1e3
                    trace.decode_ms = perf.selection_time * 1e3
                    trace.planner_calls = perf.planner_calls
                    trace.cache_hits = perf.cache_hits
                    trace.cache_misses = perf.cache_misses
            if pending.future.done():
                self._settle(pending, "cancelled", now)
                self._inflight -= 1
                continue
            if solution is None:             # shed at execute time
                self._count("serve.shed_deadline")
                self._settle(pending, "shed_deadline", now)
                self._fail(pending, DeadlineExceeded(
                    "deadline passed before the batch executed"))
                continue
            latency_ms = (now - pending.enqueued_at) * 1e3
            self._observe("serve.latency_ms", latency_ms)
            self._count("serve.responses")
            self._last_response_at = now
            digest = (solution_digest(solution)
                      if self.recorder is not None else None)
            self._settle(pending, "ok", now, latency_ms=latency_ms,
                         digest=digest)
            pending.future.set_result(solution)
            self._inflight -= 1

    # -- telemetry ------------------------------------------------------ #
    def _count(self, name: str, value: float = 1) -> None:
        self.metrics.inc(name, value)
        obs.count(name, value)

    def _gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name, value)
        obs.gauge(name, value)

    def _observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)
        obs.observe(name, value)

    def stats(self) -> dict:
        """Serving summary: counters, percentiles, sustained throughput.

        ``sustained_req_per_s`` is responses over the first-request to
        last-response window — the rate the service actually held, not a
        burst figure.
        """
        counters = self.metrics.counters
        responses = int(counters.get("serve.responses", 0))
        window = None
        if self._first_request_at is not None \
                and self._last_response_at is not None:
            window = self._last_response_at - self._first_request_at
        sustained = (responses / window if window and window > 0 else 0.0)
        stats = {
            "requests": int(counters.get("serve.requests", 0)),
            "responses": responses,
            "shed_deadline": int(counters.get("serve.shed_deadline", 0)),
            "dedup_hits": int(counters.get("serve.dedup_hits", 0)),
            "rejected_overload": int(
                counters.get("serve.rejected_overload", 0)),
            "errors": int(counters.get("serve.errors", 0)),
            "queue_depth": self.queue_depth,
            "queue_depth_peak": int(
                self.metrics.gauges.get("serve.queue_depth", 0)),
            "latency_ms": self.metrics.histogram_summary("serve.latency_ms"),
            "batch_size": self.metrics.histogram_summary("serve.batch_size"),
            "sustained_req_per_s": sustained,
            "engine": self.engine.stats(),
        }
        if self.config.request_traces:
            stats["stages"] = {
                "admission_wait_ms": self.metrics.histogram_summary(
                    "serve.admission_wait_ms"),
                "coalesce_wait_ms": self.metrics.histogram_summary(
                    "serve.coalesce_wait_ms"),
                "execute_ms": self.metrics.histogram_summary(
                    "serve.execute_ms"),
                "traces_retained": len(self.recent_traces),
            }
        if self.slo is not None:
            stats["slo"] = self.slo.report()
        return stats

    def write_metrics_jsonl(self, path, append: bool = False) -> None:
        """Write the serving summary + full registry snapshot as JSONL.

        Every record is stamped with the metrics ``schema_version`` and a
        monotonic-clock timestamp, so consumers (the live dashboard, diff
        tooling) can order records and reject incompatible writers.
        ``append=True`` adds records to an existing file — the mode the
        dashboard tails.
        """
        stamp = {"schema_version": METRICS_SCHEMA_VERSION,
                 "ts_monotonic": time.monotonic()}
        with open(path, "a" if append else "w", encoding="utf-8") as fh:
            fh.write(json.dumps(
                {"type": "serving_stats", **stamp, **self.stats()},
                sort_keys=True) + "\n")
            fh.write(json.dumps(
                {"type": "metrics", **stamp, **self.metrics.snapshot()},
                sort_keys=True) + "\n")
