"""The online solver service: asyncio front-end + cross-request batching.

Three moving parts on one event loop:

* **front-end** — :meth:`SolverService.solve` is the request surface:
  admission control (a bounded queue; :class:`ServiceOverloaded` past
  ``max_queue_depth``), an optional per-request ``timeout`` that becomes
  a monotonic-clock deadline, and a future the caller awaits.
* **micro-batcher** — the dispatch loop pops the first waiting request,
  then coalesces companions until the batch holds ``max_batch_size``
  requests or ``max_wait_us`` elapses — whichever first.  While a batch
  is decoding, new arrivals pile up in the queue, so under load the next
  batch forms instantly from the backlog (natural batching).
* **dispatcher** — each coalesced batch becomes one
  :class:`~repro.smore.solver.SolveBatch` executed on the
  :class:`~repro.serve.engine.WarmEngine` in a single worker thread
  (``run_in_executor``), so the event loop keeps admitting while the
  engine decodes and all engine state stays single-threaded.  Requests
  whose deadline expired while queued are shed — their future fails with
  :class:`DeadlineExceeded` and they never enter the decode batch.

Batching never changes an answer: a greedy request's solution is
bit-identical to ``SMORESolver.solve`` on the same instance no matter
which companions shared its batch (pinned by ``tests/serve``).  Because
greedy decoding is deterministic, the dispatcher additionally collapses
*identical* concurrent greedy requests (same instance object) onto one
decode slot (``ServeConfig.dedupe_greedy``) — every duplicate receives
the lone decode's solution, so hot instances cost one decode per batch
however many clients ask.

Serving telemetry lands in the service's own
:class:`~repro.obs.metrics.MetricsRegistry` (queue depth, batch-size and
latency histograms, shed/rejected counters) and is mirrored through the
module-level :mod:`repro.obs` API so an active tracer captures it too;
:meth:`SolverService.stats` summarises p50/p95/p99 latency and sustained
throughput.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..core.errors import ReproError
from ..obs.metrics import MetricsRegistry
from ..smore.batch import DeadlineExpired
from .engine import WarmEngine

__all__ = ["ServeConfig", "SolverService", "ServiceError", "ServiceClosed",
           "ServiceOverloaded", "DeadlineExceeded"]


class ServiceError(ReproError):
    """Base class for solver-service request failures."""


class ServiceClosed(ServiceError):
    """The service is not running (never started, or already stopped)."""


class ServiceOverloaded(ServiceError):
    """The request queue is full; the request was rejected unqueued."""


class DeadlineExceeded(ServiceError):
    """The request's deadline passed before the engine could decode it."""


@dataclass(frozen=True)
class ServeConfig:
    """Micro-batching policy knobs.

    ``max_batch_size`` caps how many requests one engine batch may hold;
    ``max_wait_us`` bounds how long the batcher holds the *first* request
    of a forming batch waiting for companions (0 disables coalescing
    waits: each batch is whatever the backlog already holds); and
    ``max_queue_depth`` bounds the admission queue — requests beyond it
    fail fast with :class:`ServiceOverloaded` instead of queuing into a
    deadline they cannot meet.
    """

    max_batch_size: int = 8
    max_wait_us: float = 2_000.0
    max_queue_depth: int = 256
    #: Coalesce *identical* concurrent greedy requests (same instance
    #: object, single-rollout greedy decode) onto one decode slot.
    #: Greedy decoding is deterministic, so every duplicate receives the
    #: bit-identical solution the lone decode produced — the serving
    #: analogue of in-flight request collapsing.  Sampled requests never
    #: dedupe (each owns its seed).
    dedupe_greedy: bool = True

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait_us < 0:
            raise ValueError(
                f"max_wait_us must be >= 0, got {self.max_wait_us}")
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}")


@dataclass
class _PendingRequest:
    """One enqueued request awaiting dispatch."""

    instance: object
    greedy: bool
    seed: int | None
    num_samples: int
    deadline: float | None
    enqueued_at: float
    future: asyncio.Future


class SolverService:
    """Asyncio solve service over one :class:`WarmEngine`.

    Use as an async context manager, or call :meth:`start` / :meth:`stop`
    explicitly::

        engine = WarmEngine(solver)
        async with SolverService(engine) as service:
            solution = await service.solve(instance)

    :meth:`solve` may be awaited from any number of concurrent tasks on
    the service's event loop; the engine itself runs on one dedicated
    worker thread, one batch at a time.
    """

    def __init__(self, engine: WarmEngine, config: ServeConfig | None = None):
        self.engine = engine
        self.config = config or ServeConfig()
        self.metrics = MetricsRegistry()
        self._queue: asyncio.Queue | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._dispatch_task: asyncio.Task | None = None
        self._running = False
        self._inflight = 0
        self._started_at: float | None = None
        self._first_request_at: float | None = None
        self._last_response_at: float | None = None

    # -- lifecycle ------------------------------------------------------ #
    async def start(self) -> "SolverService":
        """Bind to the running loop and start the dispatch task."""
        if self._running:
            raise RuntimeError("service already started")
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-engine")
        self._dispatch_task = self._loop.create_task(
            self._dispatch_loop(), name="repro-serve-dispatch")
        self._running = True
        self._started_at = time.monotonic()
        obs.event("serve.start", backend=self.engine.backend.name,
                  max_batch_size=self.config.max_batch_size,
                  max_wait_us=self.config.max_wait_us)
        return self

    async def stop(self) -> None:
        """Stop accepting requests, drain what is queued, then shut down.

        Every request admitted before ``stop`` was called still gets its
        answer (or its deadline error); only new :meth:`solve` calls fail
        with :class:`ServiceClosed`.
        """
        if not self._running:
            return
        self._running = False
        while self._inflight > 0:
            await asyncio.sleep(0.001)
        self._dispatch_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._dispatch_task
        self._executor.shutdown(wait=True)
        obs.event("serve.stop",
                  responses=int(self.metrics.counters.get(
                      "serve.responses", 0)))

    async def __aenter__(self) -> "SolverService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    @property
    def running(self) -> bool:
        return self._running

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize() if self._queue is not None else 0

    # -- front-end ------------------------------------------------------ #
    async def solve(self, instance, greedy: bool = True,
                    seed: int | None = None, num_samples: int = 1,
                    timeout: float | None = None):
        """Submit one solve request; await its solution.

        ``greedy=True`` requests the deterministic argmax decode (the
        answer is bit-identical to ``SMORESolver.solve(instance)``);
        ``greedy=False`` samples, with ``seed`` making the draw
        reproducible (the decode matches
        ``solve(instance, greedy=False, rng=default_rng(seed),
        num_samples=...)``).  ``timeout`` (seconds) sets a deadline:
        requests still undecoded when it passes fail with
        :class:`DeadlineExceeded`; requests that cannot even be queued
        fail immediately with :class:`ServiceOverloaded`.
        """
        if not self._running:
            raise ServiceClosed("service is not running; use 'async with' "
                                "or call start() first")
        if self._queue.qsize() >= self.config.max_queue_depth:
            self._count("serve.rejected_overload")
            raise ServiceOverloaded(
                f"queue depth {self._queue.qsize()} at configured maximum "
                f"{self.config.max_queue_depth}")
        now = time.monotonic()
        if self._first_request_at is None:
            self._first_request_at = now
        pending = _PendingRequest(
            instance=instance, greedy=bool(greedy), seed=seed,
            num_samples=num_samples,
            deadline=None if timeout is None else now + timeout,
            enqueued_at=now, future=self._loop.create_future())
        self._inflight += 1
        self._queue.put_nowait(pending)
        self._count("serve.requests")
        self._gauge("serve.queue_depth", float(self._queue.qsize()))
        return await pending.future

    # -- micro-batcher + dispatcher ------------------------------------- #
    async def _dispatch_loop(self) -> None:
        while True:
            batch = [await self._queue.get()]
            batch = await self._coalesce(batch)
            await self._dispatch(batch)

    async def _coalesce(self, batch: list) -> list:
        """Grow ``batch`` until full or ``max_wait_us`` elapses."""
        wait_deadline = time.monotonic() + self.config.max_wait_us / 1e6
        while len(batch) < self.config.max_batch_size:
            try:
                batch.append(self._queue.get_nowait())
                continue
            except asyncio.QueueEmpty:
                pass
            remaining = wait_deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                batch.append(await asyncio.wait_for(
                    self._queue.get(), remaining))
            except asyncio.TimeoutError:
                break
        return batch

    def _fail(self, pending: _PendingRequest, exc: Exception) -> None:
        if not pending.future.done():
            pending.future.set_exception(exc)
        self._inflight -= 1

    async def _dispatch(self, batch: list) -> None:
        solve_batch = self.engine.open_batch(max_size=len(batch))
        live = []
        decoded = 0
        primaries: dict[int, int] = {}   # id(instance) -> shared ticket
        for pending in batch:
            if pending.future.done():        # caller gave up while queued
                self._inflight -= 1
                continue
            dedupe_key = (id(pending.instance)
                          if (self.config.dedupe_greedy and pending.greedy
                              and pending.num_samples == 1) else None)
            if dedupe_key is not None and dedupe_key in primaries:
                # Identical deterministic decode already admitted this
                # batch: piggyback on its ticket instead of burning a
                # decode slot.  The duplicate still honours its own
                # deadline, mirroring admit()'s shed-at-admission check.
                if pending.deadline is not None \
                        and time.monotonic() >= pending.deadline:
                    self._count("serve.shed_deadline")
                    self._fail(pending, DeadlineExceeded(
                        "deadline passed while queued"))
                    continue
                self._count("serve.dedup_hits")
                live.append((pending, primaries[dedupe_key]))
                continue
            rng = (np.random.default_rng(pending.seed)
                   if pending.seed is not None else None)
            try:
                ticket = solve_batch.admit(
                    pending.instance, greedy=pending.greedy, rng=rng,
                    num_samples=pending.num_samples,
                    deadline=pending.deadline)
            except DeadlineExpired:
                self._count("serve.shed_deadline")
                self._fail(pending, DeadlineExceeded(
                    "deadline passed while queued"))
                continue
            if dedupe_key is not None:
                primaries[dedupe_key] = ticket
            decoded += 1
            live.append((pending, ticket))
        if not live:
            return

        # Histogram of *decoded* batch width — dedup duplicates share a
        # slot, so this is the size the engine actually saw.
        self._observe("serve.batch_size", float(decoded))
        try:
            results = await self._loop.run_in_executor(
                self._executor, self.engine.execute, solve_batch)
        except Exception as exc:  # engine failure fails the whole batch
            self._count("serve.errors")
            for pending, _ in live:
                self._fail(pending, exc)
            return

        now = time.monotonic()
        for pending, ticket in live:
            solution = results[ticket]
            if pending.future.done():
                self._inflight -= 1
                continue
            if solution is None:             # shed at execute time
                self._count("serve.shed_deadline")
                self._fail(pending, DeadlineExceeded(
                    "deadline passed before the batch executed"))
                continue
            self._observe("serve.latency_ms",
                          (now - pending.enqueued_at) * 1e3)
            self._count("serve.responses")
            self._last_response_at = now
            pending.future.set_result(solution)
            self._inflight -= 1

    # -- telemetry ------------------------------------------------------ #
    def _count(self, name: str, value: float = 1) -> None:
        self.metrics.inc(name, value)
        obs.count(name, value)

    def _gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name, value)
        obs.gauge(name, value)

    def _observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)
        obs.observe(name, value)

    def stats(self) -> dict:
        """Serving summary: counters, percentiles, sustained throughput.

        ``sustained_req_per_s`` is responses over the first-request to
        last-response window — the rate the service actually held, not a
        burst figure.
        """
        counters = self.metrics.counters
        responses = int(counters.get("serve.responses", 0))
        window = None
        if self._first_request_at is not None \
                and self._last_response_at is not None:
            window = self._last_response_at - self._first_request_at
        sustained = (responses / window if window and window > 0 else 0.0)
        return {
            "requests": int(counters.get("serve.requests", 0)),
            "responses": responses,
            "shed_deadline": int(counters.get("serve.shed_deadline", 0)),
            "dedup_hits": int(counters.get("serve.dedup_hits", 0)),
            "rejected_overload": int(
                counters.get("serve.rejected_overload", 0)),
            "errors": int(counters.get("serve.errors", 0)),
            "queue_depth_peak": int(
                self.metrics.gauges.get("serve.queue_depth", 0)),
            "latency_ms": self.metrics.histogram_summary("serve.latency_ms"),
            "batch_size": self.metrics.histogram_summary("serve.batch_size"),
            "sustained_req_per_s": sustained,
            "engine": self.engine.stats(),
        }

    def write_metrics_jsonl(self, path) -> None:
        """Write the serving summary + full registry snapshot as JSONL."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"type": "serving_stats", **self.stats()},
                                sort_keys=True) + "\n")
            fh.write(json.dumps(
                {"type": "metrics", **self.metrics.snapshot()},
                sort_keys=True) + "\n")
