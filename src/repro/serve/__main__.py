"""Command-line smoke runner for the online solver service.

Usage::

    python -m repro.serve [--requests 32] [--instances 8]
                          [--mode delivery] [--density 0.05]
                          [--batch-size 8] [--max-wait-us 2000]
                          [--timeout SECONDS] [--samples 1]
                          [--metrics serve_metrics.jsonl]
                          [--journal journal.jsonl]
                          [--openmetrics metrics.prom]
                          [--slo-report slo.json] [--slo-p95-ms 500]
                          [--check-parity]
    python -m repro.serve replay journal.jsonl

Generates a pool of instances, fires ``--requests`` concurrent solve
requests round-robin over them through a :class:`SolverService`, and
prints the serving summary (batch-size distribution, latency
percentiles, sustained throughput).  ``--check-parity`` additionally
re-solves every greedy request directly through ``SMORESolver.solve``
and exits non-zero unless each service answer is bit-identical —
the CI ``serve-smoke`` gate.

``--journal`` attaches a :class:`~repro.obs.recorder.FlightRecorder`:
every admitted request and its solution digest is journaled, and the
``replay`` subcommand rebuilds the workload from the journal header,
re-executes every request, and exits non-zero unless each digest is
bit-identical — the CI ``serve-replay-smoke`` gate.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from ..datasets import generate_instances
from ..datasets.instances import InstanceOptions
from ..obs.openmetrics import write_openmetrics
from ..obs.recorder import FlightRecorder, read_journal, replay_journal
from ..obs.slo import SloConfig, SloTracker
from ..smore import SMORESolver, TASNet, TASNetConfig, TASNetPolicy
from ..tsptw import CachedPlanner, InsertionSolver
from .client import SolveRequest, drive_requests
from .engine import WarmEngine
from .service import ServeConfig


def _workload_spec(args) -> dict:
    """The journal-header workload spec: everything replay needs to
    rebuild the instance pool and the (seeded, untrained) solver."""
    return {"mode": args.mode, "instances": args.instances,
            "density": args.density, "budget": args.budget,
            "seed": args.seed, "d_model": args.d_model,
            "heads": args.heads, "layers": args.layers}


def _build_engine(spec: dict) -> tuple[WarmEngine, list]:
    options = InstanceOptions(task_density=spec["density"],
                              budget=spec["budget"])
    instances = generate_instances(spec["mode"], spec["instances"],
                                   seed=spec["seed"], options=options)
    grid = instances[0].coverage.grid
    config = TASNetConfig(d_model=spec["d_model"], num_heads=spec["heads"],
                          num_layers=spec["layers"], conv_channels=4)
    net = TASNet(config, grid_nx=grid.nx, grid_ny=grid.ny,
                 rng=np.random.default_rng(spec["seed"]))
    solver = SMORESolver(CachedPlanner(InsertionSolver()), TASNetPolicy(net))
    return WarmEngine(solver), instances


def _routes(solution):
    return sorted((wid, tuple(t.task_id for t in route.tasks))
                  for wid, route in solution.routes.items())


def _render_stats(stats: dict) -> str:
    lat, batch = stats["latency_ms"], stats["batch_size"]
    lines = [
        "serving summary",
        "=" * 45,
        f"requests            {stats['requests']}",
        f"responses           {stats['responses']}",
        f"shed (deadline)     {stats['shed_deadline']}",
        f"rejected (overload) {stats['rejected_overload']}",
        f"queue depth peak    {stats['queue_depth_peak']}",
        f"sustained req/s     {stats['sustained_req_per_s']:.2f}",
    ]
    if batch.get("count"):
        lines.append(f"batch size          n={batch['count']} "
                     f"mean={batch['mean']:.2f} max={batch['max']:g}")
    if lat.get("count"):
        lines.append(f"latency ms          p50={lat['p50']:.1f} "
                     f"p95={lat['p95']:.1f} p99={lat['p99']:.1f}")
    engine = stats["engine"]
    lines.append(f"engine              backend={engine['backend']} "
                 f"warm={engine['warm_instances']} "
                 f"hits={engine['env_hits']} misses={engine['env_misses']}")
    stages = stats.get("stages")
    if stages:
        for label, key in (("admission wait ms", "admission_wait_ms"),
                           ("coalesce wait ms", "coalesce_wait_ms"),
                           ("engine execute ms", "execute_ms")):
            summary = stages.get(key, {})
            if summary.get("count"):
                lines.append(f"{label:<19} p50={summary['p50']:.2f} "
                             f"p99={summary['p99']:.2f}")
    slo = stats.get("slo")
    if slo:
        lines.append(f"slo                 window={slo['window_s']:g}s "
                     f"error_rate={slo['error_rate']:.4f} "
                     f"alerts={slo['alerts_fired']}")
    return "\n".join(lines)


def _replay_main(argv: list[str]) -> int:
    """``python -m repro.serve replay journal.jsonl``."""
    parser = argparse.ArgumentParser(prog="repro.serve replay")
    parser.add_argument("journal", help="flight-recorder journal JSONL")
    args = parser.parse_args(argv)

    journal = read_journal(args.journal)
    if not journal.complete:
        print(f"warning: {args.journal} has no end record "
              "(recording run did not shut down cleanly)")
    spec = journal.workload
    if not spec:
        print(f"{args.journal}: header carries no workload spec; "
              "cannot rebuild the instance pool")
        return 2
    engine, instances = _build_engine(spec)
    print(f"replaying {len(journal.requests)} journaled request(s) over "
          f"{len(instances)} rebuilt {spec['mode']} instances")
    report = replay_journal(journal, engine, instances)
    print(report.render())
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "replay":
        return _replay_main(argv[1:])
    parser = argparse.ArgumentParser(prog="repro.serve")
    parser.add_argument("--requests", type=int, default=32,
                        help="concurrent requests to fire (default 32)")
    parser.add_argument("--instances", type=int, default=8,
                        help="distinct instances to round-robin over")
    parser.add_argument("--mode", default="delivery",
                        help="dataset mode (default delivery)")
    parser.add_argument("--density", type=float, default=0.05,
                        help="task density for generated instances")
    parser.add_argument("--budget", type=float, default=120.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--d-model", type=int, default=32)
    parser.add_argument("--heads", type=int, default=2)
    parser.add_argument("--layers", type=int, default=1)
    parser.add_argument("--samples", type=int, default=1,
                        help="rollouts per request (sample-and-select-best)")
    parser.add_argument("--batch-size", type=int, default=8,
                        help="micro-batcher max batch size")
    parser.add_argument("--max-wait-us", type=float, default=2_000.0,
                        help="micro-batcher coalescing window")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-request deadline in seconds")
    parser.add_argument("--metrics", default=None, metavar="PATH",
                        help="write serving metrics JSONL to PATH")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="journal admitted requests (flight recorder) "
                             "to PATH for later replay")
    parser.add_argument("--openmetrics", default=None, metavar="PATH",
                        help="write the final registry as OpenMetrics text")
    parser.add_argument("--slo-report", default=None, metavar="PATH",
                        help="write the rolling-window SLO report as JSON")
    parser.add_argument("--slo-window", type=float, default=60.0,
                        help="SLO rolling window in seconds (default 60)")
    parser.add_argument("--slo-p95-ms", type=float, default=None,
                        help="windowed p95 latency objective in ms")
    parser.add_argument("--slo-budget", type=float, default=0.01,
                        help="error budget (failure fraction, default 0.01)")
    parser.add_argument("--check-parity", action="store_true",
                        help="assert every greedy response is bit-identical "
                             "to a direct SMORESolver.solve")
    args = parser.parse_args(argv)

    engine, instances = _build_engine(_workload_spec(args))
    greedy = args.samples <= 1
    requests = [
        SolveRequest(instance=instances[i % len(instances)], greedy=greedy,
                     seed=None if greedy else 10_000 + i,
                     num_samples=args.samples, timeout=args.timeout)
        for i in range(args.requests)]

    slo = None
    if args.slo_report is not None or args.slo_p95_ms is not None:
        slo = SloTracker(SloConfig(window_s=args.slo_window,
                                   latency_p95_ms=args.slo_p95_ms,
                                   error_budget=args.slo_budget))
    recorder = None
    if args.journal is not None:
        recorder = FlightRecorder(args.journal,
                                  workload=_workload_spec(args))
        recorder.register_instances(instances)

    print(f"repro.serve: {args.requests} concurrent requests over "
          f"{len(instances)} {args.mode} instances "
          f"(batch<={args.batch_size}, wait<={args.max_wait_us:g}us)")
    result = drive_requests(
        engine, requests,
        config=ServeConfig(max_batch_size=args.batch_size,
                           max_wait_us=args.max_wait_us,
                           max_queue_depth=max(args.requests, 1)),
        metrics_path=args.metrics, slo=slo, recorder=recorder)

    print(_render_stats(result.stats))
    if args.metrics:
        print(f"metrics written to {args.metrics}")
    if args.journal:
        print(f"journal written to {args.journal} "
              f"({recorder.requests} requests, {recorder.outcomes} outcomes)")
    if args.openmetrics:
        write_openmetrics(result.metrics, args.openmetrics)
        print(f"openmetrics written to {args.openmetrics}")
    if args.slo_report:
        with open(args.slo_report, "w", encoding="utf-8") as fh:
            json.dump(slo.report(), fh, sort_keys=True, indent=2)
        print(f"slo report written to {args.slo_report}")
    if result.errors:
        print(f"{len(result.errors)} request(s) failed "
              f"({type(result.errors[0]).__name__}: {result.errors[0]})")

    if args.check_parity:
        if not greedy:
            print("parity check requires greedy requests (--samples 1)")
            return 2
        if result.errors:
            print("parity check failed: not every request was answered")
            return 1
        direct = {id(inst): engine.solver.solve(inst) for inst in instances}
        mismatches = 0
        for request, outcome in zip(requests, result.outcomes):
            want = direct[id(request.instance)]
            if (_routes(want) != _routes(outcome)
                    or want.incentives != outcome.incentives
                    or want.objective != outcome.objective):
                mismatches += 1
        verdict = "OK" if mismatches == 0 else "MISMATCH"
        print(f"parity: {len(requests) - mismatches}/{len(requests)} greedy "
              f"responses bit-identical to direct solve [{verdict}]")
        if mismatches:
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
