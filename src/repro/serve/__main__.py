"""Command-line smoke runner for the online solver service.

Usage::

    python -m repro.serve [--requests 32] [--instances 8]
                          [--mode delivery] [--density 0.05]
                          [--batch-size 8] [--max-wait-us 2000]
                          [--timeout SECONDS] [--samples 1]
                          [--metrics serve_metrics.jsonl]
                          [--check-parity]

Generates a pool of instances, fires ``--requests`` concurrent solve
requests round-robin over them through a :class:`SolverService`, and
prints the serving summary (batch-size distribution, latency
percentiles, sustained throughput).  ``--check-parity`` additionally
re-solves every greedy request directly through ``SMORESolver.solve``
and exits non-zero unless each service answer is bit-identical —
the CI ``serve-smoke`` gate.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from ..datasets import generate_instances
from ..datasets.instances import InstanceOptions
from ..smore import SMORESolver, TASNet, TASNetConfig, TASNetPolicy
from ..tsptw import CachedPlanner, InsertionSolver
from .client import SolveRequest, drive_requests
from .engine import WarmEngine
from .service import ServeConfig


def _build_engine(args) -> tuple[WarmEngine, list]:
    options = InstanceOptions(task_density=args.density, budget=args.budget)
    instances = generate_instances(args.mode, args.instances,
                                   seed=args.seed, options=options)
    grid = instances[0].coverage.grid
    config = TASNetConfig(d_model=args.d_model, num_heads=args.heads,
                          num_layers=args.layers, conv_channels=4)
    net = TASNet(config, grid_nx=grid.nx, grid_ny=grid.ny,
                 rng=np.random.default_rng(args.seed))
    solver = SMORESolver(CachedPlanner(InsertionSolver()), TASNetPolicy(net))
    return WarmEngine(solver), instances


def _routes(solution):
    return sorted((wid, tuple(t.task_id for t in route.tasks))
                  for wid, route in solution.routes.items())


def _render_stats(stats: dict) -> str:
    lat, batch = stats["latency_ms"], stats["batch_size"]
    lines = [
        "serving summary",
        "=" * 45,
        f"requests            {stats['requests']}",
        f"responses           {stats['responses']}",
        f"shed (deadline)     {stats['shed_deadline']}",
        f"rejected (overload) {stats['rejected_overload']}",
        f"queue depth peak    {stats['queue_depth_peak']}",
        f"sustained req/s     {stats['sustained_req_per_s']:.2f}",
    ]
    if batch.get("count"):
        lines.append(f"batch size          n={batch['count']} "
                     f"mean={batch['mean']:.2f} max={batch['max']:g}")
    if lat.get("count"):
        lines.append(f"latency ms          p50={lat['p50']:.1f} "
                     f"p95={lat['p95']:.1f} p99={lat['p99']:.1f}")
    engine = stats["engine"]
    lines.append(f"engine              backend={engine['backend']} "
                 f"warm={engine['warm_instances']} "
                 f"hits={engine['env_hits']} misses={engine['env_misses']}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.serve")
    parser.add_argument("--requests", type=int, default=32,
                        help="concurrent requests to fire (default 32)")
    parser.add_argument("--instances", type=int, default=8,
                        help="distinct instances to round-robin over")
    parser.add_argument("--mode", default="delivery",
                        help="dataset mode (default delivery)")
    parser.add_argument("--density", type=float, default=0.05,
                        help="task density for generated instances")
    parser.add_argument("--budget", type=float, default=120.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--d-model", type=int, default=32)
    parser.add_argument("--heads", type=int, default=2)
    parser.add_argument("--layers", type=int, default=1)
    parser.add_argument("--samples", type=int, default=1,
                        help="rollouts per request (sample-and-select-best)")
    parser.add_argument("--batch-size", type=int, default=8,
                        help="micro-batcher max batch size")
    parser.add_argument("--max-wait-us", type=float, default=2_000.0,
                        help="micro-batcher coalescing window")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-request deadline in seconds")
    parser.add_argument("--metrics", default=None, metavar="PATH",
                        help="write serving metrics JSONL to PATH")
    parser.add_argument("--check-parity", action="store_true",
                        help="assert every greedy response is bit-identical "
                             "to a direct SMORESolver.solve")
    args = parser.parse_args(argv)

    engine, instances = _build_engine(args)
    greedy = args.samples <= 1
    requests = [
        SolveRequest(instance=instances[i % len(instances)], greedy=greedy,
                     seed=None if greedy else 10_000 + i,
                     num_samples=args.samples, timeout=args.timeout)
        for i in range(args.requests)]

    print(f"repro.serve: {args.requests} concurrent requests over "
          f"{len(instances)} {args.mode} instances "
          f"(batch<={args.batch_size}, wait<={args.max_wait_us:g}us)")
    result = drive_requests(
        engine, requests,
        config=ServeConfig(max_batch_size=args.batch_size,
                           max_wait_us=args.max_wait_us,
                           max_queue_depth=max(args.requests, 1)),
        metrics_path=args.metrics)

    print(_render_stats(result.stats))
    if args.metrics:
        print(f"metrics written to {args.metrics}")
    if result.errors:
        print(f"{len(result.errors)} request(s) failed "
              f"({type(result.errors[0]).__name__}: {result.errors[0]})")

    if args.check_parity:
        if not greedy:
            print("parity check requires greedy requests (--samples 1)")
            return 2
        if result.errors:
            print("parity check failed: not every request was answered")
            return 1
        direct = {id(inst): engine.solver.solve(inst) for inst in instances}
        mismatches = 0
        for request, outcome in zip(requests, result.outcomes):
            want = direct[id(request.instance)]
            if (_routes(want) != _routes(outcome)
                    or want.incentives != outcome.incentives
                    or want.objective != outcome.objective):
                mismatches += 1
        verdict = "OK" if mismatches == 0 else "MISMATCH"
        print(f"parity: {len(requests) - mismatches}/{len(requests)} greedy "
              f"responses bit-identical to direct solve [{verdict}]")
        if mismatches:
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
