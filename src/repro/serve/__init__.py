"""``repro.serve`` — the online solver service.

An asyncio front-end over a warm :class:`~repro.smore.solver.SMORESolver`:
requests (instance + decode mode + optional deadline) are coalesced by a
micro-batcher into heterogeneous cross-instance decode batches
(:meth:`SMORESolver.open_batch` / :class:`SolveBatch`) and executed on a
:class:`WarmEngine` that keeps TASNet weights, the resolved nn backend,
the (memoising) planner, and per-instance candidate-table snapshots
resident across requests.

Batching is an execution strategy only: a greedy request answered
through the service is bit-identical to ``SMORESolver.solve`` on the
same instance, regardless of which requests shared its batch.

Typical use::

    from repro.serve import ServeConfig, SolverService, WarmEngine

    engine = WarmEngine(solver)
    async with SolverService(engine, ServeConfig(max_batch_size=8)) as svc:
        solution = await svc.solve(instance, timeout=2.0)

``python -m repro.serve`` runs a self-contained smoke workload (see
``--help``); :func:`drive_requests` drives the same path synchronously
for tests and benchmarks.
"""

from .client import SolveRequest, drive_requests, run_workload
from .engine import BatchReport, WarmEngine
from .service import (
    DeadlineExceeded,
    RequestTrace,
    ServeConfig,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    SolverService,
)

__all__ = [
    "WarmEngine", "BatchReport",
    "ServeConfig", "SolverService", "RequestTrace",
    "ServiceError", "ServiceClosed", "ServiceOverloaded", "DeadlineExceeded",
    "SolveRequest", "drive_requests", "run_workload",
]
