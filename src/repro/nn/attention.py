"""Attention modules: multi-head attention and Transformer encoder blocks.

These follow the architecture used throughout the paper: the worker and
sensing-task encoders of TASNet are "Transformer-like encoders composed of a
multi-head attention layer and a node-wise feed-forward layer" (Section
IV-C), and the pointer decoders use single-head attention with tanh logit
clipping (Equations 5-7).
"""

from __future__ import annotations

import math

import numpy as np

from . import ops
from .backend import get_backend
from .layers import LayerNorm, Linear, Module
from .tensor import Tensor, as_tensor

__all__ = [
    "scaled_dot_product_attention", "MultiHeadAttention",
    "TransformerEncoderLayer", "TransformerEncoder", "PointerAttention",
]

_NEG_INF = -1e9


def scaled_dot_product_attention(q: Tensor, k: Tensor, v: Tensor,
                                 mask: np.ndarray | None = None) -> Tensor:
    """Attention(Q, K, V) = softmax(Q K^T / sqrt(d)) V.

    ``mask`` is a boolean array broadcastable to the score shape with True
    marking *disallowed* positions.
    """
    return get_backend().attention(q, k, v, mask=mask)


class MultiHeadAttention(Module):
    """Multi-head attention over sets.

    Accepts un-batched inputs of shape ``(n, d_model)`` (the iterative
    selection loop deals with one problem instance at a time) or batched
    inputs of shape ``(B, n, d_model)``; heads are carried as an internal
    axis in both cases.
    """

    def __init__(self, d_model: int, num_heads: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by num_heads={num_heads}")
        rng = rng or np.random.default_rng()
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self.w_q = Linear(d_model, d_model, bias=False, rng=rng)
        self.w_k = Linear(d_model, d_model, bias=False, rng=rng)
        self.w_v = Linear(d_model, d_model, bias=False, rng=rng)
        self.w_o = Linear(d_model, d_model, bias=False, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        if x.ndim == 2:
            n = x.shape[0]
            x = ops.reshape(x, (n, self.num_heads, self.d_head))
            return ops.transpose(x, (1, 0, 2))        # (H, n, dh)
        batch, n = x.shape[0], x.shape[1]
        x = ops.reshape(x, (batch, n, self.num_heads, self.d_head))
        return ops.transpose(x, (0, 2, 1, 3))          # (B, H, n, dh)

    def forward(self, query, key=None, value=None,
                mask: np.ndarray | None = None,
                key_padding_mask: np.ndarray | None = None) -> Tensor:
        """``key_padding_mask`` is a boolean ``(n,)`` — or ``(B, n)`` for
        batched inputs — with True marking padded key positions; it is
        expanded over heads and query positions and OR-combined with
        ``mask``.  This is how variable-length sets ride through one
        batched forward: pad to a common ``n``, mask the tail.
        """
        query = as_tensor(query)
        key = query if key is None else as_tensor(key)
        value = key if value is None else as_tensor(value)
        batched = query.ndim == 3

        if key_padding_mask is not None:
            padding = np.asarray(key_padding_mask, dtype=bool)
            # Broadcast over (B,) H and query positions: (B, 1, 1, n) /
            # (1, 1, n) aligns with score shape (B, H, n_q, n_k).
            expanded = padding[..., None, None, :] if batched \
                else padding[None, None, :]
            mask = expanded if mask is None else np.logical_or(mask, expanded)

        q = self._split_heads(self.w_q(query))
        k = self._split_heads(self.w_k(key))
        v = self._split_heads(self.w_v(value))

        attended = scaled_dot_product_attention(q, k, v, mask=mask)
        if batched:
            attended = ops.transpose(attended, (0, 2, 1, 3))
            attended = ops.reshape(
                attended, (query.shape[0], query.shape[1], self.d_model))
        else:
            attended = ops.transpose(attended, (1, 0, 2))
            attended = ops.reshape(attended, (query.shape[0], self.d_model))
        return self.w_o(attended)

    def forward_flops(self, n_q: int, n_k: int | None = None,
                      batch: int = 1, matmul_only: bool = False) -> int:
        """Closed-form forward FLOPs at the given query/key set sizes.

        With ``matmul_only=True`` only the four projections and the two
        attention products are counted — the subset the profiler tallies
        under ``matmul``, which the regression bench reconciles within 1%.
        """
        from . import flops

        n_k = n_q if n_k is None else n_k
        # w_q and w_o run over the n_q query rows; w_k and w_v over n_k.
        total = 2 * (flops.linear_flops(batch * n_q, self.d_model,
                                        self.d_model, bias=False)
                     + flops.linear_flops(batch * n_k, self.d_model,
                                          self.d_model, bias=False))
        total += flops.attention_flops(batch, self.num_heads, n_q, n_k,
                                       self.d_head, matmul_only=matmul_only)
        return total


class TransformerEncoderLayer(Module):
    """MHA + node-wise feed-forward, each with residual + LayerNorm."""

    def __init__(self, d_model: int, num_heads: int, d_ff: int | None = None,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        d_ff = d_ff or 4 * d_model
        self.attention = MultiHeadAttention(d_model, num_heads, rng=rng)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)
        self.ff1 = Linear(d_model, d_ff, rng=rng)
        self.ff2 = Linear(d_ff, d_model, rng=rng)

    def forward(self, x, mask: np.ndarray | None = None) -> Tensor:
        x = as_tensor(x)
        attended = self.attention(x, mask=mask)
        x = self.norm1(ops.add(x, attended))
        ff = get_backend().ffn(x, self.ff1.weight, self.ff1.bias,
                               self.ff2.weight, self.ff2.bias)
        x = self.norm2(ops.add(x, ff))
        return x


class TransformerEncoder(Module):
    """Stack of encoder layers (the paper uses 3 layers, 8 heads)."""

    def __init__(self, d_model: int, num_heads: int, num_layers: int,
                 d_ff: int | None = None, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.layers = [
            TransformerEncoderLayer(d_model, num_heads, d_ff=d_ff, rng=rng)
            for _ in range(num_layers)
        ]

    def forward(self, x, mask: np.ndarray | None = None) -> Tensor:
        x = as_tensor(x)
        for layer in self.layers:
            x = layer(x, mask=mask)
        return x


class PointerAttention(Module):
    """Single-head pointer scoring with tanh clipping (Equations 5-6).

    Computes ``u_j = C * tanh(q^T k_j / sqrt(d))`` per candidate ``j`` with
    ``-inf`` on masked candidates.  The caller applies softmax (possibly
    after the soft-mask modulation of Equation 11).
    """

    def __init__(self, d_query: int, d_key_in: int, d_key: int | None = None,
                 clip: float = 10.0, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        d_key = d_key or d_key_in
        self.clip = clip
        self.d_key = d_key
        self.w_q = Linear(d_query, d_key, bias=False, rng=rng)
        self.w_k = Linear(d_key_in, d_key, bias=False, rng=rng)

    def forward(self, query, keys, mask: np.ndarray | None = None) -> Tensor:
        """Return clipped logits, shape ``(n,)`` — or ``(B, n)`` batched.

        Serial form: ``query`` has shape ``(d_query,)``, ``keys`` has shape
        ``(n, d_key_in)``.  Batched form (the decode engine's hot path):
        ``query`` is ``(B, d_query)`` and ``keys`` is ``(B, n, d_key_in)``
        — one pointer evaluation per rollout in a single pass.  ``mask``
        is boolean ``(n,)`` / ``(B, n)`` with True marking disallowed
        candidates (including padding).
        """
        query = as_tensor(query)
        keys = as_tensor(keys)
        q = self.w_q(query)                    # (d_key,) or (B, d_key)
        k = self.w_k(keys)                     # (n, d_key) or (B, n, d_key)
        if keys.ndim == 3:
            batch = keys.shape[0]
            q_col = ops.reshape(q, (batch, self.d_key, 1))
            scores = ops.reshape(ops.matmul(k, q_col), (batch, -1))
        else:
            scores = ops.matmul(k, q)          # (n,)
        return get_backend().pointer_tail(
            scores, 1.0 / math.sqrt(self.d_key), self.clip, mask=mask)

    def precompute_keys(self, keys_static) -> Tensor:
        """Project static key features once, for reuse across decode steps.

        ``w_k`` splits by input row: rows ``[:d_static]`` act on features
        that stay fixed for a whole episode (e.g. candidate embeddings),
        rows ``[d_static:]`` on per-step features handled by the ``extra``
        argument of :meth:`forward_precomputed`.  Callers project the
        static block once per episode and gather rows of the result per
        step — turning the per-step key projection, the dominant decode
        GEMM, into an index lookup.  Gradients still flow into ``w_k``
        through every gathered use.
        """
        keys_static = as_tensor(keys_static)
        w_static = self.w_k.weight[:keys_static.shape[-1]]
        return ops.matmul(keys_static, w_static)

    def forward_precomputed(self, query, keys, extra=None,
                            mask: np.ndarray | None = None) -> Tensor:
        """Pointer logits from pre-projected keys (:meth:`precompute_keys`).

        ``keys``: gathered rows of the precomputed static projection,
        ``(n, d_key)`` serial or ``(B, n, d_key)`` batched.  ``extra``:
        per-step key features ``(n, e)`` / ``(B, n, e)`` projected through
        the trailing ``e`` input rows of ``w_k`` and added — the split
        ``W [s; x] = W_s s + W_x x`` evaluated as two products.
        """
        query = as_tensor(query)
        k = as_tensor(keys)
        if extra is not None:
            extra = as_tensor(extra)
            w_extra = self.w_k.weight[
                self.w_k.in_features - extra.shape[-1]:]
            k = ops.add(k, ops.matmul(extra, w_extra))
        q = self.w_q(query)
        if k.ndim == 3:
            batch = k.shape[0]
            q_col = ops.reshape(q, (batch, self.d_key, 1))
            scores = ops.reshape(ops.matmul(k, q_col), (batch, -1))
        else:
            scores = ops.matmul(k, q)          # (n,)
        return get_backend().pointer_tail(
            scores, 1.0 / math.sqrt(self.d_key), self.clip, mask=mask)

    def forward_flops(self, n: int, d_query: int, d_key_in: int,
                      batch: int = 1, matmul_only: bool = False) -> int:
        """Closed-form forward FLOPs for ``n`` candidate keys per item."""
        from . import flops

        total = (flops.linear_flops(batch, d_query, self.d_key, bias=False)
                 + flops.linear_flops(batch * n, d_key_in, self.d_key,
                                      bias=False)
                 + 2 * batch * n * self.d_key)       # k @ q scores
        if not matmul_only:
            total += batch * n * (1 + flops.ELEMENTWISE_COST["clip_tanh"])
        return total
