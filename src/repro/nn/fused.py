"""Fused graph executor: one autograd node per model-level kernel.

The reference backend builds an object graph with one Python closure per
primitive op — 20+ nodes for a Transformer encoder layer.  The profiler
(PR 4) showed that at paper scale the resulting closure dispatch and
intermediate-tensor churn, not the GEMMs themselves, bound training
throughput.  This module collapses each kernel of the
:class:`~repro.nn.backend.Backend` seam into a *single* graph node:

* the **forward** replays the exact numpy arithmetic of the reference
  composition, in the same order — so forward values (and therefore
  greedy decoding) are bit-identical to the reference backend;
* the **backward** is a handwritten flat function (no closure chain),
  sharing :func:`repro.nn.ops.matmul_backward` with the reference op so
  matrix-product gradients use identical formulas;
* elementwise chains (scale / tanh / sigmoid / relu / clip) fold into
  one pass over the data instead of one op per link
  (:func:`fused_chain`);
* backward temporaries come from a shape-keyed scratch pool
  (:class:`_ScratchPool`) so steady-state training iterations reuse the
  same buffers instead of reallocating per step.

Kernels are wrapped with :func:`repro.nn.tensor.instrument_op` under
``fused.*`` names, so the op profiler attributes their time and the
FLOP model (:mod:`repro.nn.flops`) prices them like their unfused
equivalents.

A :class:`TorchBackend` rides the same seam when ``torch`` is
importable: identical kernels with forward GEMMs routed through torch
(numerics then match to GEMM-reordering tolerance, not bitwise).  It is
registered only if ``import torch`` would succeed, so environments
without torch — like CI here — simply never see it.
"""

from __future__ import annotations

import importlib.util
import math

import numpy as np

from . import ops
from .backend import NEG_INF, Backend, register_backend
from .tensor import Tensor, as_tensor, instrument_op, is_grad_enabled, unbroadcast

__all__ = [
    "FusedBackend", "TorchBackend", "fused_linear", "fused_layernorm",
    "fused_ffn", "fused_attention", "fused_pointer_tail",
    "fused_masked_mean", "fused_chain", "scratch_pool",
]


# --------------------------------------------------------------------- #
# Scratch buffers
# --------------------------------------------------------------------- #
class _ScratchPool:
    """Shape-keyed pool of float64 scratch arrays for backward passes.

    Training iterates over fixed step shapes, so the same temporaries
    are needed every backward; the pool hands them back instead of
    allocating fresh.  Arrays are only ``give``-n back when nothing else
    can reference them (strictly intra-call temporaries) — returned
    gradients are never pooled.
    """

    __slots__ = ("_free", "_max")

    def __init__(self, max_per_shape: int = 4):
        self._free: dict[tuple[int, ...], list[np.ndarray]] = {}
        self._max = max_per_shape

    def take(self, shape: tuple[int, ...]) -> np.ndarray:
        bucket = self._free.get(shape)
        if bucket:
            return bucket.pop()
        return np.empty(shape)

    def give(self, arr: np.ndarray) -> None:
        bucket = self._free.setdefault(arr.shape, [])
        if len(bucket) < self._max:
            bucket.append(arr)

    def clear(self) -> None:
        self._free.clear()

    def cached_bytes(self) -> int:
        return sum(a.nbytes for bucket in self._free.values() for a in bucket)


_POOL = _ScratchPool()


def scratch_pool() -> _ScratchPool:
    """The process-wide scratch pool (exposed for tests/diagnostics)."""
    return _POOL


def _grad_off(*tensors) -> bool:
    """True when no node needs a backward closure for these parents."""
    if not is_grad_enabled():
        return True
    return not any(t is not None and t.requires_grad for t in tensors)


# --------------------------------------------------------------------- #
# Kernels
# --------------------------------------------------------------------- #
def fused_linear(x, weight, bias=None, mm=np.matmul) -> Tensor:
    """Affine map ``x @ W (+ b)`` as one graph node."""
    x, weight = as_tensor(x), as_tensor(weight)
    bias = None if bias is None else as_tensor(bias)
    out_data = ops.flat_matmul(x.data, weight.data, mm)
    if bias is not None:
        out_data += bias.data
    if _grad_off(x, weight, bias):
        return Tensor(out_data)

    if bias is None:
        def backward(grad):
            return ops.matmul_backward(grad, x.data, weight.data)

        return Tensor._make(out_data, (x, weight), backward)

    def backward(grad):
        grad_x, grad_w = ops.matmul_backward(grad, x.data, weight.data)
        return grad_x, grad_w, unbroadcast(grad, bias.data.shape)

    return Tensor._make(out_data, (x, weight, bias), backward)


def fused_layernorm(x, gamma, beta, eps: float) -> Tensor:
    """Layer normalisation over the last axis as one graph node."""
    x, gamma, beta = as_tensor(x), as_tensor(gamma), as_tensor(beta)
    # Forward replays the reference op sequence exactly (bit-identical).
    mu = x.data.mean(axis=-1, keepdims=True)
    centered = x.data - mu
    var = (centered * centered).mean(axis=-1, keepdims=True)
    std = np.sqrt(var + eps)
    normed = centered / std
    out_data = normed * gamma.data + beta.data
    if _grad_off(x, gamma, beta):
        return Tensor(out_data)

    d = x.data.shape[-1]

    def backward(grad):
        grad_beta = unbroadcast(grad, beta.data.shape)
        grad_gamma = unbroadcast(grad * normed, gamma.data.shape)
        dnormed = grad * gamma.data
        # normed = centered / std; var = mean(centered^2); centered = x - mu
        dstd = -(dnormed * centered / (std * std)).sum(axis=-1, keepdims=True)
        dvar = dstd * (0.5 / std)
        dcentered = dnormed / std + centered * (2.0 / d) * dvar
        dmu = -dcentered.sum(axis=-1, keepdims=True)
        dx = dcentered + dmu / d
        return dx, grad_gamma, grad_beta

    return Tensor._make(out_data, (x, gamma, beta), backward)


def fused_ffn(x, w1, b1, w2, b2, mm=np.matmul) -> Tensor:
    """Node-wise feed-forward ``relu(x W1 + b1) W2 + b2``, one node."""
    x = as_tensor(x)
    w1, b1, w2, b2 = map(as_tensor, (w1, b1, w2, b2))
    pre = ops.flat_matmul(x.data, w1.data, mm)
    pre += b1.data
    hidden = np.maximum(pre, 0.0)
    out_data = ops.flat_matmul(hidden, w2.data, mm)
    out_data += b2.data
    if _grad_off(x, w1, b1, w2, b2):
        return Tensor(out_data)

    def backward(grad):
        grad_b2 = unbroadcast(grad, b2.data.shape)
        grad_h, grad_w2 = ops.matmul_backward(grad, hidden, w2.data)
        # relu': fresh from matmul_backward, safe to mask in place.
        grad_h *= pre > 0.0
        grad_b1 = unbroadcast(grad_h, b1.data.shape)
        grad_x, grad_w1 = ops.matmul_backward(grad_h, x.data, w1.data)
        return grad_x, grad_w1, grad_b1, grad_w2, grad_b2

    return Tensor._make(out_data, (x, w1, b1, w2, b2), backward)


def fused_attention(q, k, v, mask=None, mm=np.matmul) -> Tensor:
    """``softmax(Q K^T / sqrt(d)) V`` as one graph node.

    ``mask`` is boolean, broadcastable to the score shape, True =
    disallowed; it is copied (callers mutate their masks between steps).
    """
    q, k, v = as_tensor(q), as_tensor(k), as_tensor(v)
    d_k = q.shape[-1]
    scale = 1.0 / math.sqrt(d_k)
    kT = np.swapaxes(k.data, -1, -2)
    scores = mm(q.data, kT)
    scores *= scale
    if mask is not None:
        mask_arr = np.array(mask, dtype=bool, copy=True)
        scores = np.where(mask_arr, NEG_INF, scores)
    else:
        mask_arr = None
    shifted = scores - scores.max(axis=-1, keepdims=True)
    weights = np.exp(shifted)
    weights /= weights.sum(axis=-1, keepdims=True)
    out_data = mm(weights, v.data)
    if _grad_off(q, k, v):
        return Tensor(out_data)

    def backward(grad):
        grad_weights, grad_v = ops.matmul_backward(grad, weights, v.data)
        # Softmax VJP in pooled scratch: s * (g - sum(g * s)).
        buf = _POOL.take(weights.shape)
        np.multiply(grad_weights, weights, out=buf)
        dot = buf.sum(axis=-1, keepdims=True)
        np.subtract(grad_weights, dot, out=buf)
        buf *= weights
        if mask_arr is not None:
            np.copyto(buf, 0.0, where=mask_arr)
        buf *= scale
        grad_q, grad_kT = ops.matmul_backward(buf, q.data, kT)
        _POOL.give(buf)
        grad_k = np.swapaxes(grad_kT, -1, -2)
        return grad_q, grad_k, grad_v

    return Tensor._make(out_data, (q, k, v), backward)


def fused_pointer_tail(scores, scale: float, clip: float, mask=None) -> Tensor:
    """Scale + tanh-clip + mask of raw pointer scores, one node."""
    scores = as_tensor(scores)
    t = np.tanh(scores.data * scale)
    logits = clip * t
    if mask is not None:
        mask_arr = np.array(mask, dtype=bool, copy=True)
        out_data = np.where(mask_arr, NEG_INF, logits)
    else:
        mask_arr = None
        out_data = logits
    if _grad_off(scores):
        return Tensor(out_data)

    def backward(grad):
        if mask_arr is not None:
            g = np.where(mask_arr, 0.0, grad)
        else:
            g = grad * 1.0
        g *= clip * (1.0 - t * t)
        g *= scale
        return (g,)

    return Tensor._make(out_data, (scores,), backward)


def fused_masked_mean(x, mask, axis: int) -> Tensor:
    """Mean over ``axis`` counting only unmasked entries, one node."""
    x = as_tensor(x)
    mask_arr = np.array(np.broadcast_to(np.asarray(mask, dtype=bool),
                                        x.shape), copy=True)
    counts = np.maximum((~mask_arr).sum(axis=axis), 1).astype(np.float64)
    zeroed = np.where(mask_arr, 0.0, x.data)
    out_data = zeroed.sum(axis=axis) / counts
    if _grad_off(x):
        return Tensor(out_data)

    def backward(grad):
        g = np.expand_dims(grad / counts, axis)
        g = np.broadcast_to(g, x.data.shape)
        return (np.where(mask_arr, 0.0, g),)

    return Tensor._make(out_data, (x,), backward)


_CHAIN_STAGES = ("add", "mul", "tanh", "sigmoid", "relu", "clip_tanh")


def fused_chain(x, stages) -> Tensor:
    """Fold an elementwise stage chain into one pass and one node.

    ``stages`` is a sequence of ``("add", c)`` / ``("mul", c)`` /
    ``("tanh",)`` / ``("sigmoid",)`` / ``("relu",)`` /
    ``("clip_tanh", c)`` entries.  Forward applies the whole chain with
    in-place numpy where safe; backward walks the saved activations in
    reverse without any closure dispatch.
    """
    x = as_tensor(x)
    data = x.data
    own = False          # may we overwrite `data` in place?
    trace = []           # (op, constant, saved) per stage, for backward
    for stage in stages:
        op = stage[0]
        const = float(stage[1]) if len(stage) > 1 else 0.0
        if op == "add":
            if own:
                np.add(data, const, out=data)
            else:
                data = data + const
                own = True
            saved = None
        elif op == "mul":
            if own:
                np.multiply(data, const, out=data)
            else:
                data = data * const
                own = True
            saved = None
        elif op == "tanh":
            data = np.tanh(data)
            saved = data      # saved output must stay intact
            own = False
        elif op == "sigmoid":
            data = 1.0 / (1.0 + np.exp(-data))
            saved = data
            own = False
        elif op == "relu":
            saved = data > 0.0
            data = np.maximum(data, 0.0)
            own = True
        elif op == "clip_tanh":
            t = np.tanh(data)
            data = const * t
            saved = t
            own = True
        else:
            raise ValueError(
                f"unknown chain stage {op!r} (expected one of {_CHAIN_STAGES})")
        trace.append((op, const, saved))
    if not trace:
        return x
    out_data = data
    if _grad_off(x):
        return Tensor(out_data)

    def backward(grad):
        g = grad
        fresh = False    # may we overwrite `g` in place?
        for op, const, saved in reversed(trace):
            if op == "add":
                continue
            if op == "mul":
                factor = const
            elif op == "tanh":
                factor = 1.0 - saved * saved
            elif op == "sigmoid":
                factor = saved * (1.0 - saved)
            elif op == "relu":
                factor = saved
            else:  # clip_tanh
                factor = const * (1.0 - saved * saved)
            if fresh:
                np.multiply(g, factor, out=g)
            else:
                g = g * factor
                fresh = True
        return (g if fresh else g * 1.0,)

    return Tensor._make(out_data, (x,), backward)


# --------------------------------------------------------------------- #
# Backends
# --------------------------------------------------------------------- #
class FusedBackend(Backend):
    """One-node-per-kernel executor; bit-identical forwards."""

    name = "fused"

    def linear(self, x, weight, bias=None) -> Tensor:
        return fused_linear(x, weight, bias)

    def layernorm(self, x, gamma, beta, eps) -> Tensor:
        return fused_layernorm(x, gamma, beta, eps)

    def ffn(self, x, w1, b1, w2, b2) -> Tensor:
        return fused_ffn(x, w1, b1, w2, b2)

    def attention(self, q, k, v, mask=None) -> Tensor:
        return fused_attention(q, k, v, mask)

    def pointer_tail(self, scores, scale, clip, mask=None) -> Tensor:
        return fused_pointer_tail(scores, scale, clip, mask)

    def masked_mean(self, x, mask, axis) -> Tensor:
        return fused_masked_mean(x, mask, axis)

    def chain(self, x, stages) -> Tensor:
        return fused_chain(x, stages)


def _torch_mm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    import torch

    out = torch.from_numpy(np.ascontiguousarray(a)) @ \
        torch.from_numpy(np.ascontiguousarray(b))
    return out.numpy()


class TorchBackend(FusedBackend):
    """Fused kernels with forward GEMMs executed by torch.

    Only registered when ``torch`` is importable.  Backward formulas
    stay in numpy (identical to :class:`FusedBackend`); forward matmul
    results match numpy to GEMM-reordering tolerance, so this backend is
    covered by the tolerance-level parity tests, not the bit-identity
    ones.
    """

    name = "torch"

    def linear(self, x, weight, bias=None) -> Tensor:
        return fused_linear(x, weight, bias, mm=_torch_mm)

    def ffn(self, x, w1, b1, w2, b2) -> Tensor:
        return fused_ffn(x, w1, b1, w2, b2, mm=_torch_mm)

    def attention(self, q, k, v, mask=None) -> Tensor:
        return fused_attention(q, k, v, mask, mm=_torch_mm)


# Profiler instrumentation: kernels appear as ``fused.*`` frames with
# FLOP/byte estimates from repro.nn.flops.
for _name in ("fused_linear", "fused_layernorm", "fused_ffn",
              "fused_attention", "fused_pointer_tail", "fused_masked_mean",
              "fused_chain"):
    globals()[_name] = instrument_op(globals()[_name],
                                     "fused." + _name[len("fused_"):])
del _name

register_backend("fused", FusedBackend())
if importlib.util.find_spec("torch") is not None:  # pragma: no cover
    register_backend("torch", TorchBackend())
