"""``repro.nn`` — a from-scratch numpy neural-network library.

Substitutes for PyTorch in this reproduction: reverse-mode autograd tensors,
Transformer-style attention, convolutions, Adam, and npz serialisation —
everything the paper's policy networks (the hierarchical-RL TSPTW solver and
TASNet) require.

Quick example::

    import numpy as np
    from repro import nn

    rng = np.random.default_rng(0)
    model = nn.MLP([4, 16, 1], rng=rng)
    optimizer = nn.Adam(model.parameters(), lr=1e-3)

    x = nn.Tensor(rng.normal(size=(32, 4)))
    loss = ((model(x) - 1.0) ** 2).mean()
    optimizer.zero_grad()
    loss.backward()
    optimizer.step()
"""

from . import flops, init, ops
from .ops import pad_stack
from . import backend, fused  # noqa: F401 — fused registers itself
from .backend import (
    Backend,
    available_backends,
    backend_name,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from .attention import (
    MultiHeadAttention,
    PointerAttention,
    TransformerEncoder,
    TransformerEncoderLayer,
    scaled_dot_product_attention,
)
from .layers import (
    MLP,
    Conv2D,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Tanh,
)
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .serialize import load_module, save_module
from .tensor import (
    NULL_HOOK,
    Tensor,
    TensorHook,
    as_tensor,
    get_tensor_hook,
    is_grad_enabled,
    no_grad,
    set_tensor_hook,
)

__all__ = [
    "Tensor", "as_tensor", "no_grad", "is_grad_enabled", "ops", "init",
    "flops", "pad_stack",
    "Backend", "backend", "fused", "get_backend", "set_backend",
    "use_backend", "register_backend", "available_backends", "backend_name",
    "TensorHook", "NULL_HOOK", "get_tensor_hook", "set_tensor_hook",
    "Module", "Parameter", "Linear", "Embedding", "MLP", "LayerNorm",
    "Conv2D", "Sequential", "ReLU", "Tanh",
    "MultiHeadAttention", "PointerAttention", "TransformerEncoder",
    "TransformerEncoderLayer", "scaled_dot_product_attention",
    "Optimizer", "SGD", "Adam", "clip_grad_norm",
    "save_module", "load_module",
]
