"""Parameter initialisation schemes.

The attention models in the paper follow Kool et al. (2019), who initialise
every weight uniformly in ``[-1/sqrt(d), 1/sqrt(d)]``; we expose that and the
standard Xavier/He variants.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["uniform_attention", "xavier_uniform", "he_normal", "zeros"]


def uniform_attention(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """Uniform(-1/sqrt(fan_in), 1/sqrt(fan_in)) — Kool et al. initialisation."""
    fan_in = shape[0] if len(shape) >= 1 else 1
    bound = 1.0 / math.sqrt(max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """Glorot uniform initialisation."""
    fan_in = shape[0] if len(shape) >= 1 else 1
    fan_out = shape[1] if len(shape) >= 2 else shape[0]
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def he_normal(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """He normal initialisation for ReLU stacks."""
    fan_in = shape[0] if len(shape) >= 1 else 1
    return rng.normal(0.0, math.sqrt(2.0 / max(fan_in, 1)), size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros initialisation (biases)."""
    return np.zeros(shape)
