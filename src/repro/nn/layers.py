"""Neural-network modules built on the autograd engine.

Provides the layer types the paper's models need: ``Linear`` and ``MLP`` for
projections and critics, ``LayerNorm`` for Transformer blocks, ``Conv2D`` for
the worker travel-information grid encoder (TASNet, Section IV-C), and the
``Module`` base class with recursive parameter collection and state dicts.
"""

from __future__ import annotations

import numpy as np

from . import init, ops
from .backend import get_backend
from .tensor import Tensor, as_tensor

__all__ = [
    "Module", "Parameter", "Linear", "Embedding", "MLP", "LayerNorm",
    "Conv2D", "Sequential", "ReLU", "Tanh",
]


class Parameter(Tensor):
    """A tensor registered as a learnable parameter of a Module."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` and :meth:`state_dict` discover them
    recursively, in deterministic (sorted attribute name) order so that
    serialisation round-trips are stable.
    """

    def __init__(self):
        self.training = True

    # -- discovery ------------------------------------------------------ #
    def named_parameters(self, prefix: str = ""):
        """Yield ``(name, Parameter)`` pairs, depth-first.

        Each parameter's ``name`` slot is stamped with its qualified path
        (e.g. ``worker_selection.group_mha.w_q.weight``) the first time it
        is discovered, so profiler and trace output can name parameters.
        A parameter reachable through several attributes keeps the first
        (sorted-order) path — the same one ``state_dict`` serialises
        under.
        """
        for attr in sorted(vars(self)):
            value = getattr(self, attr)
            full = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                if value.name is None:
                    value.name = full
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        if item.name is None:
                            item.name = f"{full}.{i}"
                        yield f"{full}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self):
        """Yield this module and all descendants."""
        yield self
        for attr in sorted(vars(self)):
            value = getattr(self, attr)
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # -- train / eval mode --------------------------------------------- #
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- gradient helpers ------------------------------------------------ #
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- (de)serialisation ------------------------------------------------ #
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()

    # -- call protocol ---------------------------------------------------- #
    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Affine map ``y = x W + b`` over the last axis."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.uniform_attention(rng, (in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x) -> Tensor:
        return get_backend().linear(as_tensor(x), self.weight, self.bias)

    def forward_flops(self, rows: int) -> int:
        """Closed-form forward FLOPs over ``rows`` input rows.

        Matches the profiler's matmul/elementwise cost model
        (:mod:`repro.nn.flops`), letting tests reconcile recorded totals
        against layer shapes.
        """
        from . import flops

        return flops.linear_flops(rows, self.in_features, self.out_features,
                                  bias=self.bias is not None)


class Embedding(Module):
    """Lookup table of learnable vectors, ``indices -> (..., dim)``.

    Useful for categorical node attributes (e.g. grid-cell ids); backward
    scatters gradients into the selected rows only.
    """

    def __init__(self, num_embeddings: int, dim: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(rng.normal(0.0, 1.0, size=(num_embeddings, dim)))

    def forward(self, indices) -> Tensor:
        idx = np.asarray(indices, dtype=np.intp)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings})")
        return ops.gather_rows(self.weight, idx)


class ReLU(Module):
    """Elementwise rectified linear activation module."""

    def forward(self, x) -> Tensor:
        return ops.relu(x)


class Tanh(Module):
    """Elementwise hyperbolic-tangent activation module."""

    def forward(self, x) -> Tensor:
        return ops.tanh(x)


class Sequential(Module):
    """Compose modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.steps = list(modules)

    def forward(self, x) -> Tensor:
        for step in self.steps:
            x = step(x)
        return x


class MLP(Module):
    """Multi-layer perceptron with ReLU hidden activations."""

    def __init__(self, sizes: list[int], rng: np.random.Generator | None = None,
                 output_activation: Module | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        layers: list[Module] = []
        for i in range(len(sizes) - 1):
            layers.append(Linear(sizes[i], sizes[i + 1], rng=rng))
            if i < len(sizes) - 2:
                layers.append(ReLU())
        if output_activation is not None:
            layers.append(output_activation)
        self.net = Sequential(*layers)

    def forward(self, x) -> Tensor:
        return self.net(x)


class LayerNorm(Module):
    """Layer normalisation over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x) -> Tensor:
        return get_backend().layernorm(as_tensor(x), self.gamma, self.beta,
                                       self.eps)


class Conv2D(Module):
    """2-D convolution (stride 1, zero padding) via im2col.

    Used by TASNet's worker encoder to summarise the worker's travel
    information matrix (origin / destination / travel-task occupancy grid).
    Input shape ``(batch, in_channels, H, W)``.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int = 3,
                 padding: int = 1, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(init.uniform_attention(rng, (fan_in, out_channels)))
        self.bias = Parameter(np.zeros(out_channels))

    def _im2col(self, x: np.ndarray) -> tuple[np.ndarray, int, int]:
        batch, channels, height, width = x.shape
        k, p = self.kernel_size, self.padding
        padded = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)))
        out_h = height + 2 * p - k + 1
        out_w = width + 2 * p - k + 1
        cols = np.empty((batch, out_h, out_w, channels * k * k))
        col_idx = 0
        for c in range(channels):
            for di in range(k):
                for dj in range(k):
                    cols[:, :, :, col_idx] = padded[:, c, di:di + out_h, dj:dj + out_w]
                    col_idx += 1
        return cols, out_h, out_w

    def forward(self, x) -> Tensor:
        x = as_tensor(x)
        batch, channels, height, width = x.shape
        if channels != self.in_channels:
            raise ValueError(f"expected {self.in_channels} input channels, got {channels}")
        cols_np, out_h, out_w = self._im2col(x.data)
        k, p = self.kernel_size, self.padding

        # Wrap im2col as a differentiable op: backward scatters gradient
        # columns back into the padded input positions.
        def backward(grad):
            grad_padded = np.zeros(
                (batch, channels, height + 2 * p, width + 2 * p))
            col_idx = 0
            for c in range(channels):
                for di in range(k):
                    for dj in range(k):
                        grad_padded[:, c, di:di + out_h, dj:dj + out_w] += grad[:, :, :, col_idx]
                        col_idx += 1
            if p:
                return (grad_padded[:, :, p:-p, p:-p],)
            return (grad_padded,)

        cols = Tensor._make(cols_np, (x,), backward)
        cols._op = "im2col"  # names this node in profiler backward output
        out = ops.matmul(cols, self.weight)  # (batch, out_h, out_w, out_channels)
        out = ops.add(out, self.bias)
        return ops.transpose(out, (0, 3, 1, 2))
