"""Backend seam for ``repro.nn``: pluggable kernel execution strategies.

PR 4's profiler showed the object-graph autograd spending most of its
time in Python dispatch — one closure per primitive op — around a small
set of model-level kernels (affine maps, layer norm, the feed-forward
block, the attention core, the pointer-logit tail).  This module puts a
seam behind those kernels so the execution strategy is swappable without
touching model code:

* :class:`Backend` (the **reference** backend) composes every kernel
  from the primitive ops in :mod:`repro.nn.ops` — byte-for-byte the
  graphs the library built before the seam existed.  It is the parity
  oracle: every other backend is tested against it.
* :class:`repro.nn.fused.FusedBackend` (**fused**) lowers each kernel to
  a single autograd node: one numpy forward pass that replays the exact
  arithmetic of the reference composition (greedy decoding is therefore
  bit-identical) and one handwritten backward, with scratch buffers
  reused across iterations.  Registered by :mod:`repro.nn.fused` at
  import time.
* :class:`repro.nn.fused.TorchBackend` (**torch**) — same fused kernels
  with forward GEMMs routed through ``torch`` when it is importable;
  registered only in environments that ship torch.

Selection
---------
The active backend resolves lazily on first use from the
``REPRO_NN_BACKEND`` environment variable (default ``reference``), and
can be switched programmatically::

    from repro.nn import backend
    backend.set_backend("fused")
    with backend.use_backend("reference"):
        ...  # temporary override

Layers (:mod:`repro.nn.layers`, :mod:`repro.nn.attention`) fetch the
backend per forward call, so a switch takes effect immediately —
including mid-test via the ``use_backend`` context manager.
"""

from __future__ import annotations

import math
import os
import threading

import numpy as np

from . import ops
from .tensor import Tensor, as_tensor

__all__ = [
    "Backend", "ReferenceBackend", "register_backend", "available_backends",
    "get_backend", "set_backend", "use_backend", "backend_name", "ENV_VAR",
]

#: Environment variable consulted (once, lazily) for the default backend.
ENV_VAR = "REPRO_NN_BACKEND"

#: Logit value for masked positions — matches ``ops.NEG_INF``.
NEG_INF = ops.NEG_INF


class Backend:
    """Kernel-level execution strategy; the base class IS the reference.

    Every method composes primitive ops from :mod:`repro.nn.ops` in the
    exact sequence the layers used before the seam existed, so the
    reference backend's graphs, profiler op streams, and numerics are
    unchanged.  Subclasses override methods with accelerated
    implementations; anything not overridden falls back to the oracle.

    All kernels take/return :class:`Tensor` and are fully
    differentiable under both strategies.
    """

    name = "reference"

    # -- affine ---------------------------------------------------------- #
    def linear(self, x: Tensor, weight: Tensor,
               bias: Tensor | None = None) -> Tensor:
        """``x @ weight (+ bias)`` over the last axis."""
        out = ops.matmul(x, weight)
        if bias is not None:
            out = ops.add(out, bias)
        return out

    # -- normalisation --------------------------------------------------- #
    def layernorm(self, x: Tensor, gamma: Tensor, beta: Tensor,
                  eps: float) -> Tensor:
        """Layer normalisation over the last axis."""
        mu = ops.mean(x, axis=-1, keepdims=True)
        centered = ops.sub(x, mu)
        var = ops.mean(ops.mul(centered, centered), axis=-1, keepdims=True)
        std = ops.sqrt(ops.add(var, eps))
        normed = ops.div(centered, std)
        return ops.add(ops.mul(normed, gamma), beta)

    # -- feed-forward ----------------------------------------------------- #
    def ffn(self, x: Tensor, w1: Tensor, b1: Tensor,
            w2: Tensor, b2: Tensor) -> Tensor:
        """Node-wise feed-forward ``relu(x W1 + b1) W2 + b2``."""
        hidden = ops.relu(ops.add(ops.matmul(x, w1), b1))
        return ops.add(ops.matmul(hidden, w2), b2)

    # -- attention -------------------------------------------------------- #
    def attention(self, q: Tensor, k: Tensor, v: Tensor,
                  mask: np.ndarray | None = None) -> Tensor:
        """``softmax(Q K^T / sqrt(d)) V`` with optional boolean mask
        (True = disallowed) broadcastable to the score shape."""
        d_k = q.shape[-1]
        axes = list(range(k.ndim))
        axes[-1], axes[-2] = axes[-2], axes[-1]
        scores = ops.matmul(q, ops.transpose(k, tuple(axes)))
        scores = ops.mul(scores, 1.0 / math.sqrt(d_k))
        if mask is not None:
            scores = ops.masked_fill(scores, mask, NEG_INF)
        weights = ops.softmax(scores, axis=-1)
        return ops.matmul(weights, v)

    # -- pointer logits --------------------------------------------------- #
    def pointer_tail(self, scores: Tensor, scale: float, clip: float,
                     mask: np.ndarray | None = None) -> Tensor:
        """Scale, tanh-clip, and mask raw pointer scores (Eq. 5-6)."""
        logits = ops.clip_tanh(ops.mul(scores, scale), clip)
        if mask is not None:
            logits = ops.masked_fill(logits, mask, NEG_INF)
        return logits

    # -- masked reduction -------------------------------------------------- #
    def masked_mean(self, x: Tensor, mask: np.ndarray, axis: int) -> Tensor:
        """Mean over ``axis`` counting only entries where mask is False."""
        return ops.masked_mean(x, mask, axis)

    # -- elementwise chains ------------------------------------------------ #
    def chain(self, x: Tensor, stages) -> Tensor:
        """Apply a sequence of elementwise stages to ``x``.

        ``stages`` is a tuple of ``(op,)`` / ``(op, constant)`` entries
        drawn from ``add``, ``mul``, ``tanh``, ``sigmoid``, ``relu``,
        ``clip_tanh``.  The reference applies one primitive op per
        stage; the fused backend folds the whole chain into a single
        numpy pass and one graph node.
        """
        out = as_tensor(x)
        for stage in stages:
            op = stage[0]
            if op == "add":
                out = ops.add(out, float(stage[1]))
            elif op == "mul":
                out = ops.mul(out, float(stage[1]))
            elif op == "tanh":
                out = ops.tanh(out)
            elif op == "sigmoid":
                out = ops.sigmoid(out)
            elif op == "relu":
                out = ops.relu(out)
            elif op == "clip_tanh":
                out = ops.clip_tanh(out, float(stage[1]))
            else:
                raise ValueError(f"unknown chain stage {op!r}")
        return out


#: Alias making the oracle's role explicit at call sites.
ReferenceBackend = Backend


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
_BACKENDS: dict[str, Backend] = {}
_CURRENT: Backend | None = None
#: Guards the one-time lazy ``REPRO_NN_BACKEND`` resolution.  Two threads
#: issuing their first forward concurrently (e.g. the serving dispatcher
#: racing a benchmark's warm-up) must both observe the same single
#: resolution instead of racing the read-check-write in ``get_backend``.
_RESOLVE_LOCK = threading.Lock()


def register_backend(name: str, backend: Backend) -> None:
    """Register ``backend`` under ``name`` (later wins on collision)."""
    backend.name = name
    _BACKENDS[name] = backend


def available_backends() -> list[str]:
    """Names of all registered backends, sorted."""
    return sorted(_BACKENDS)


def get_backend() -> Backend:
    """The active backend; resolves ``REPRO_NN_BACKEND`` on first call.

    The first resolution is guarded by a lock (double-checked), so
    concurrent first calls from multiple threads all return the one
    backend the environment names — never two racing resolutions.
    """
    global _CURRENT
    backend = _CURRENT
    if backend is None:
        with _RESOLVE_LOCK:
            backend = _CURRENT
            if backend is None:
                name = os.environ.get(ENV_VAR, "reference")
                if name not in _BACKENDS:
                    raise ValueError(
                        f"{ENV_VAR}={name!r} is not a registered backend "
                        f"(available: {available_backends()})")
                backend = _CURRENT = _BACKENDS[name]
    return backend


def set_backend(name: str) -> Backend:
    """Make ``name`` the active backend; returns it."""
    global _CURRENT
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown backend {name!r} (available: {available_backends()})")
    _CURRENT = _BACKENDS[name]
    return _CURRENT


def backend_name() -> str:
    """Name of the active backend."""
    return get_backend().name


class use_backend:
    """Context manager that temporarily activates a backend by name."""

    def __init__(self, name: str):
        self._name = name
        self._previous: Backend | None = None

    def __enter__(self) -> Backend:
        global _CURRENT
        self._previous = get_backend()
        return set_backend(self._name)

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        global _CURRENT
        _CURRENT = self._previous
        return False


register_backend("reference", Backend())
