"""FLOP and byte cost models for the autograd engine's ops.

The op-level profiler (:mod:`repro.obs.profile`) attributes *estimated*
floating-point operations and bytes moved to every recorded op.  The
models here are deliberately simple and documented so their error bars
are known:

* **matmul** is exact up to the fused multiply-add convention: one
  multiply plus one add per inner-product term, i.e. ``2 * prod(out) *
  K`` FLOPs for a ``(..., M, K) @ (..., K, N)`` product (vector operands
  follow the same formula with the contracted axis as ``K``).
* **elementwise** ops count a small constant per output element (1 for
  ``add``/``mul``/``relu``; transcendental ops like ``exp``/``tanh``
  count 1 — hardware cost varies by an order of magnitude, so treat
  transcendental-heavy totals as lower bounds).
* **reductions** count ``cost * input elements``.
* **softmax-family** ops count max + subtract + exp + sum + divide
  passes (~5 per element; masked variants add the mask select passes).
* **shape ops** (reshape/transpose/concat/stack/getitem/gather) count 0
  FLOPs — they move bytes, which the byte model captures.
* **backward** closures are charged twice their op's forward FLOPs (the
  standard reverse-mode rule of thumb; exact for matmul, whose backward
  is two products of the same dimensions).

Bytes are counted as ``8 * (input elements + output elements)`` —
float64 traffic through the op, ignoring cache reuse.

Closed-form module-level counts (:func:`linear_flops`,
:func:`attention_flops`, :func:`mha_flops`) express the same matmul
convention at the layer level; the profile regression benchmark checks
that profiler-recorded matmul totals for known-shape attention forwards
match these within 1%.
"""

from __future__ import annotations

import numpy as np

__all__ = ["flop_count", "byte_count", "estimate", "estimate_backward",
           "linear_flops", "attention_flops", "mha_flops",
           "ELEMENTWISE_COST", "REDUCTION_COST", "SOFTMAX_COST",
           "BACKWARD_FACTOR"]

#: FLOPs per *output* element for elementwise ops.
ELEMENTWISE_COST = {
    "add": 1, "sub": 1, "mul": 1, "div": 1, "neg": 1, "abs": 1,
    "power": 2, "exp": 1, "log": 1, "sqrt": 1, "tanh": 1, "sigmoid": 3,
    "relu": 1, "clip_tanh": 2, "where": 1, "masked_fill": 1, "dropout": 2,
}

#: FLOPs per *input* element for reductions.
REDUCTION_COST = {"sum": 1, "mean": 1, "max": 1}

#: FLOPs per element for the softmax family (max/shift/exp/sum/div passes).
SOFTMAX_COST = {"softmax": 5, "log_softmax": 5,
                "masked_softmax": 7, "masked_log_softmax": 7}

#: Ops that move data without arithmetic.
_ZERO_COST = {"reshape", "transpose", "concat", "stack", "getitem",
              "gather_rows", "broadcast_to", "masked_mean"}
# masked_mean composes where/sum/div, which are themselves recorded; a
# zero own-cost avoids double counting its constituents.

#: Backward FLOPs as a multiple of the op's forward FLOPs.
BACKWARD_FACTOR = 2

_ITEM_BYTES = 8  # float64


def _shapes_of(args) -> list[tuple[int, ...]]:
    """Array shapes of an op's positional arguments (lists flattened)."""
    shapes = []
    for arg in args:
        data = getattr(arg, "data", arg)
        if isinstance(data, np.ndarray):
            shapes.append(data.shape)
        elif isinstance(data, (list, tuple)):
            for item in data:
                inner = getattr(item, "data", item)
                if isinstance(inner, np.ndarray):
                    shapes.append(inner.shape)
    return shapes


def _elements(shape) -> int:
    return int(np.prod(shape)) if shape else 1


def _fused_flop_count(kind: str, in_shapes, out_shape) -> int:
    """Forward FLOPs for a ``fused.*`` kernel (same conventions as the
    unfused compositions it replaces, so profiles stay comparable
    across backends)."""
    out_elems = _elements(out_shape) if out_shape is not None else 0
    if kind == "linear":
        if len(in_shapes) < 2:
            return 0
        k = in_shapes[0][-1] if in_shapes[0] else 1
        flops = 2 * out_elems * k
        if len(in_shapes) > 2:                   # bias operand present
            flops += out_elems
        return flops
    if kind == "layernorm":
        x_elems = _elements(in_shapes[0]) if in_shapes else out_elems
        return 8 * x_elems    # mean/center/square/var/sqrt/div/scale/shift
    if kind == "ffn":
        if len(in_shapes) < 5:
            return 0
        x_shape, w1_shape, w2_shape = in_shapes[0], in_shapes[1], in_shapes[3]
        rows = _elements(x_shape[:-1])
        k, f, n = x_shape[-1], w1_shape[-1], w2_shape[-1]
        return (2 * rows * k * f + 2 * rows * f       # gemm1 + bias + relu
                + 2 * rows * f * n + rows * n)        # gemm2 + bias
    if kind == "attention":
        if len(in_shapes) < 2:
            return 0
        q_shape, k_shape = in_shapes[0], in_shapes[1]
        d = q_shape[-1] if q_shape else 1
        scores = _elements(q_shape[:-1]) * (k_shape[-2] if len(k_shape) > 1
                                            else 1)
        return 4 * scores * d + scores + SOFTMAX_COST["softmax"] * scores
    if kind == "pointer_tail":
        return 4 * out_elems                     # scale + tanh + clip + mask
    if kind == "masked_mean":
        return _elements(in_shapes[0]) if in_shapes else out_elems
    if kind == "chain":
        return 2 * out_elems
    return out_elems


def flop_count(name: str, in_shapes, out_shape) -> int:
    """Estimated forward FLOPs for op ``name`` given its shapes."""
    out_elems = _elements(out_shape) if out_shape is not None else 0
    if name.startswith("fused."):
        return _fused_flop_count(name[len("fused."):], in_shapes, out_shape)
    if name == "matmul":
        if len(in_shapes) < 2:
            return 0
        a_shape, b_shape = in_shapes[0], in_shapes[1]
        k = a_shape[-1] if a_shape else 1
        if len(a_shape) == 1 and len(b_shape) == 1:
            return 2 * k
        return 2 * out_elems * k
    if name in _ZERO_COST:
        return 0
    if name in REDUCTION_COST:
        in_elems = _elements(in_shapes[0]) if in_shapes else out_elems
        return REDUCTION_COST[name] * in_elems
    if name in SOFTMAX_COST:
        return SOFTMAX_COST[name] * out_elems
    return ELEMENTWISE_COST.get(name, 1) * out_elems


def byte_count(in_shapes, out_shape) -> int:
    """float64 bytes read plus written by an op with the given shapes."""
    total = sum(_elements(s) for s in in_shapes)
    if out_shape is not None:
        total += _elements(out_shape)
    return _ITEM_BYTES * total


def estimate(name: str, args, out) -> tuple[int, int]:
    """(FLOPs, bytes) for a recorded forward op from its raw args/result.

    ``out`` is the op's return value — a Tensor for differentiable ops,
    None when the op raised; non-array results contribute no output
    elements.
    """
    in_shapes = _shapes_of(args)
    out_data = getattr(out, "data", out)
    out_shape = out_data.shape if isinstance(out_data, np.ndarray) else None
    return flop_count(name, in_shapes, out_shape), \
        byte_count(in_shapes, out_shape)


def estimate_backward(name: str, node) -> tuple[int, int]:
    """(FLOPs, bytes) for one backward closure of graph node ``node``.

    Charged as :data:`BACKWARD_FACTOR` times the forward cost rebuilt
    from the node's parents and output; bytes cover the incoming gradient
    plus one gradient per parent.
    """
    parent_shapes = [p.data.shape for p in node._parents]
    out_shape = node.data.shape
    flops = BACKWARD_FACTOR * flop_count(name, parent_shapes, out_shape)
    nbytes = _ITEM_BYTES * (_elements(out_shape)
                            + sum(_elements(s) for s in parent_shapes))
    return flops, nbytes


# --------------------------------------------------------------------- #
# Closed-form module-level counts
# --------------------------------------------------------------------- #
def linear_flops(rows: int, in_features: int, out_features: int,
                 bias: bool = True) -> int:
    """FLOPs of ``Linear`` over ``rows`` input rows (matmul + bias add)."""
    flops = 2 * rows * in_features * out_features
    if bias:
        flops += rows * out_features
    return flops


def attention_flops(batch: int, heads: int, n_q: int, n_k: int,
                    d_head: int, matmul_only: bool = False) -> int:
    """FLOPs of scaled dot-product attention at the given score shape.

    Counts the two products ``Q K^T`` and ``weights @ V`` (each
    ``2 * B * H * n_q * n_k * d_head``); with ``matmul_only=False`` the
    score scaling and softmax passes are added.
    """
    scores = batch * heads * n_q * n_k
    flops = 2 * 2 * scores * d_head
    if not matmul_only:
        flops += scores                          # 1/sqrt(d) scaling
        flops += SOFTMAX_COST["softmax"] * scores
    return flops


def mha_flops(batch: int, n: int, d_model: int, num_heads: int,
              matmul_only: bool = False) -> int:
    """FLOPs of one ``MultiHeadAttention`` self-attention forward.

    Four bias-free ``d_model x d_model`` projections (q, k, v, o) over
    ``batch * n`` rows plus the per-head attention core.
    """
    rows = batch * n
    flops = 4 * linear_flops(rows, d_model, d_model, bias=False)
    flops += attention_flops(batch, num_heads, n, n, d_model // num_heads,
                             matmul_only=matmul_only)
    return flops
