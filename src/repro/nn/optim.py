"""Gradient-descent optimizers.

The paper trains all models with Adam (initial learning rate 1e-4,
Section V-B); SGD is provided for tests and ablations.
"""

from __future__ import annotations

import time

import numpy as np

from .tensor import Tensor, get_tensor_hook

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]

# Per-element FLOP charges reported to the profiler hook: the update
# rules below, counted by arithmetic pass (Adam: 2 moment EMAs at 4, two
# bias corrections, sqrt + add + div + fused update ~= 12 / element).
_ADAM_FLOPS_PER_ELEM = 12
_SGD_FLOPS_PER_ELEM = 2
_SGD_MOMENTUM_FLOPS_PER_ELEM = 4
_CLIP_FLOPS_PER_ELEM = 3


def clip_grad_norm(parameters: list[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.  Standard stabiliser for REINFORCE.
    """
    hook = get_tensor_hook()
    start = time.perf_counter() if hook.enabled else 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g ** 2).sum()) for g in grads)))
    if total > max_norm > 0.0:
        scale = max_norm / (total + 1e-12)
        for g in grads:
            g *= scale
    if hook.enabled:
        n_elems = sum(g.size for g in grads)
        hook.custom("clip_grad_norm", time.perf_counter() - start,
                    flops=_CLIP_FLOPS_PER_ELEM * n_elems,
                    nbytes=8 * n_elems)
    return total


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: list[Tensor]):
        self.parameters = list(parameters)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: list[Tensor], lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]
        # Scratch buffer per parameter: the update runs entirely in place,
        # allocating nothing per step.  Same op order as the expression
        # form, so updates are bitwise identical.
        self._buf = [np.empty_like(p.data) for p in self.parameters]

    def step(self) -> None:
        hook = get_tensor_hook()
        start = time.perf_counter() if hook.enabled else 0.0
        n_elems = 0
        for param, velocity, buf in zip(self.parameters, self._velocity,
                                        self._buf):
            if param.grad is None:
                continue
            n_elems += param.data.size
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                np.multiply(velocity, self.lr, out=buf)
            else:
                np.multiply(param.grad, self.lr, out=buf)
            np.subtract(param.data, buf, out=param.data)
        if hook.enabled:
            per_elem = (_SGD_MOMENTUM_FLOPS_PER_ELEM if self.momentum
                        else _SGD_FLOPS_PER_ELEM)
            hook.custom("sgd.step", time.perf_counter() - start,
                        flops=per_elem * n_elems, nbytes=8 * n_elems)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) with bias correction."""

    def __init__(self, parameters: list[Tensor], lr: float = 1e-4,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        # Two scratch buffers per parameter make the whole update run in
        # place — zero allocations per step.  Each out= op replays the
        # expression form's operation in the same order on the same
        # operands, so the resulting parameters are bitwise identical
        # (scalar-array multiplication commutes exactly in IEEE-754).
        self._num = [np.empty_like(p.data) for p in self.parameters]
        self._den = [np.empty_like(p.data) for p in self.parameters]

    def step(self) -> None:
        hook = get_tensor_hook()
        start = time.perf_counter() if hook.enabled else 0.0
        n_elems = 0
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for param, m, v, num, den in zip(self.parameters, self._m, self._v,
                                         self._num, self._den):
            if param.grad is None:
                continue
            n_elems += param.data.size
            grad = param.grad
            # m = beta1*m + (1-beta1)*grad
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=num)
            np.add(m, num, out=m)
            # v = beta2*v + ((1-beta2)*grad)*grad  (left-associated)
            v *= self.beta2
            np.multiply(grad, 1.0 - self.beta2, out=den)
            np.multiply(den, grad, out=den)
            np.add(v, den, out=v)
            # data -= (lr*m_hat) / (sqrt(v_hat) + eps)
            np.divide(m, bias1, out=num)
            np.divide(v, bias2, out=den)
            np.multiply(num, self.lr, out=num)
            np.sqrt(den, out=den)
            np.add(den, self.eps, out=den)
            np.divide(num, den, out=num)
            np.subtract(param.data, num, out=param.data)
        if hook.enabled:
            hook.custom("adam.step", time.perf_counter() - start,
                        flops=_ADAM_FLOPS_PER_ELEM * n_elems,
                        nbytes=8 * n_elems)

    # -- checkpointing --------------------------------------------------- #
    def state_dict(self) -> dict:
        """Moment estimates and step count, for training checkpoints."""
        return {
            "step_count": self._step_count,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        if len(state["m"]) != len(self._m):
            raise ValueError("optimizer state does not match parameter list")
        self._step_count = int(state["step_count"])
        self._m = [np.array(m, dtype=np.float64) for m in state["m"]]
        self._v = [np.array(v, dtype=np.float64) for v in state["v"]]
