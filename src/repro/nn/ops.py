"""Differentiable operations on :class:`repro.nn.tensor.Tensor`.

Every function here computes a forward result with numpy and registers a
backward closure returning one gradient per parent.  Gradients through
broadcast operands are reduced with :func:`~repro.nn.tensor.unbroadcast`.
"""

from __future__ import annotations

import builtins

import numpy as np

from .tensor import Tensor, as_tensor, instrument_op, unbroadcast

__all__ = [
    "add", "sub", "mul", "div", "neg", "power", "matmul", "exp", "log",
    "sqrt", "tanh", "sigmoid", "relu", "sum", "mean", "max", "reshape",
    "transpose", "concat", "stack", "getitem", "softmax", "log_softmax",
    "clip_tanh", "where", "dropout", "gather_rows", "scatter_rows",
    "masked_fill", "abs",
    "broadcast_to", "masked_softmax", "masked_log_softmax", "masked_mean",
    "pad_stack",
]

#: Logit value used for masked-out entries (matches the pointer decoders).
NEG_INF = -1e9


# --------------------------------------------------------------------- #
# Arithmetic
# --------------------------------------------------------------------- #
def add(a, b) -> Tensor:
    """Elementwise ``a + b`` with broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data + b.data

    def backward(grad):
        return unbroadcast(grad, a.shape), unbroadcast(grad, b.shape)

    return Tensor._make(out_data, (a, b), backward)


def sub(a, b) -> Tensor:
    """Elementwise ``a - b`` with broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data - b.data

    def backward(grad):
        return unbroadcast(grad, a.shape), unbroadcast(-grad, b.shape)

    return Tensor._make(out_data, (a, b), backward)


def mul(a, b) -> Tensor:
    """Elementwise ``a * b`` with broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data * b.data

    def backward(grad):
        return (
            unbroadcast(grad * b.data, a.shape),
            unbroadcast(grad * a.data, b.shape),
        )

    return Tensor._make(out_data, (a, b), backward)


def div(a, b) -> Tensor:
    """Elementwise ``a / b`` with broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data / b.data

    def backward(grad):
        return (
            unbroadcast(grad / b.data, a.shape),
            unbroadcast(-grad * a.data / (b.data ** 2), b.shape),
        )

    return Tensor._make(out_data, (a, b), backward)


def neg(a) -> Tensor:
    """Elementwise negation ``-a``."""
    a = as_tensor(a)

    def backward(grad):
        return (-grad,)

    return Tensor._make(-a.data, (a,), backward)


def power(a, exponent: float) -> Tensor:
    """Elementwise ``a ** exponent`` for a constant exponent."""
    a = as_tensor(a)
    exponent = float(exponent)
    out_data = a.data ** exponent

    def backward(grad):
        return (grad * exponent * a.data ** (exponent - 1.0),)

    return Tensor._make(out_data, (a,), backward)


def abs(a) -> Tensor:  # noqa: A001 - mirrors numpy naming
    """Elementwise absolute value (sign subgradient)."""
    a = as_tensor(a)
    out_data = np.abs(a.data)

    def backward(grad):
        return (grad * np.sign(a.data),)

    return Tensor._make(out_data, (a,), backward)


def flat_matmul(a: np.ndarray, b: np.ndarray, mm=np.matmul) -> np.ndarray:
    """``a @ b`` with a stacked-``a`` x 2D-``b`` product folded flat.

    numpy dispatches ``(B, m, k) @ (k, n)`` as B separate GEMM calls; for
    the decode-loop shapes (many small leading batches against one shared
    weight) one ``(B*m, k) @ (k, n)`` call is several times faster.  Each
    output row is the same row-times-matrix product either way, so the
    fold does not change results on the BLAS this repo pins via its
    serial-vs-batched parity tests.
    """
    if a.ndim > 2 and b.ndim == 2:
        lead = a.shape[:-1]
        return mm(a.reshape(-1, a.shape[-1]), b).reshape(*lead, b.shape[-1])
    return mm(a, b)


def matmul_backward(grad: np.ndarray, a_data: np.ndarray,
                    b_data: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Gradients of ``a @ b`` w.r.t. both operands (numpy @ semantics).

    Shared by :func:`matmul` and the fused kernels in
    :mod:`repro.nn.fused`, so every backend differentiates matrix
    products with the identical formulas.
    """
    if a_data.ndim == 1 and b_data.ndim == 1:
        grad_a = grad * b_data
        grad_b = grad * a_data
    elif a_data.ndim == 1:
        # (k,) @ (..., k, n) -> (..., n)
        grad_a = (grad[..., None, :] * b_data).sum(axis=-1)
        grad_a = unbroadcast(grad_a, a_data.shape)
        grad_b = unbroadcast(a_data[..., :, None] * grad[..., None, :], b_data.shape)
    elif b_data.ndim == 1:
        # (..., m, k) @ (k,) -> (..., m)
        grad_a = unbroadcast(grad[..., :, None] * b_data, a_data.shape)
        grad_b = (a_data * grad[..., :, None]).reshape(-1, a_data.shape[-1]).sum(axis=0)
    else:
        grad_a = unbroadcast(flat_matmul(grad, np.swapaxes(b_data, -1, -2)),
                             a_data.shape)
        if b_data.ndim == 2 and a_data.ndim > 2:
            # Batched rows against one shared matrix: fold the batch axes
            # into the contraction and run a single flat GEMM instead of
            # materialising a (batch, k, n) stack that unbroadcast would
            # immediately reduce away — the hot layout for batched decode
            # (every Linear applies one weight to (B, rows, k) inputs).
            a_flat = a_data.reshape(-1, a_data.shape[-1])
            grad_b = a_flat.T @ grad.reshape(-1, grad.shape[-1])
        else:
            grad_b = unbroadcast(np.swapaxes(a_data, -1, -2) @ grad,
                                 b_data.shape)
    return grad_a, grad_b


def matmul(a, b) -> Tensor:
    """Matrix product supporting batched operands (numpy @ semantics)."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = flat_matmul(a.data, b.data)

    def backward(grad):
        return matmul_backward(grad, a.data, b.data)

    return Tensor._make(out_data, (a, b), backward)


# --------------------------------------------------------------------- #
# Elementwise nonlinearities
# --------------------------------------------------------------------- #
def exp(a) -> Tensor:
    """Elementwise exponential."""
    a = as_tensor(a)
    out_data = np.exp(a.data)

    def backward(grad):
        return (grad * out_data,)

    return Tensor._make(out_data, (a,), backward)


def log(a) -> Tensor:
    """Elementwise natural logarithm."""
    a = as_tensor(a)
    out_data = np.log(a.data)

    def backward(grad):
        return (grad / a.data,)

    return Tensor._make(out_data, (a,), backward)


def sqrt(a) -> Tensor:
    """Elementwise square root."""
    a = as_tensor(a)
    out_data = np.sqrt(a.data)

    def backward(grad):
        return (grad * 0.5 / out_data,)

    return Tensor._make(out_data, (a,), backward)


def tanh(a) -> Tensor:
    """Elementwise hyperbolic tangent."""
    a = as_tensor(a)
    out_data = np.tanh(a.data)

    def backward(grad):
        return (grad * (1.0 - out_data ** 2),)

    return Tensor._make(out_data, (a,), backward)


def sigmoid(a) -> Tensor:
    """Elementwise logistic sigmoid."""
    a = as_tensor(a)
    out_data = 1.0 / (1.0 + np.exp(-a.data))

    def backward(grad):
        return (grad * out_data * (1.0 - out_data),)

    return Tensor._make(out_data, (a,), backward)


def relu(a) -> Tensor:
    """Elementwise rectified linear unit ``max(a, 0)``."""
    a = as_tensor(a)
    out_data = np.maximum(a.data, 0.0)

    def backward(grad):
        return (grad * (a.data > 0.0),)

    return Tensor._make(out_data, (a,), backward)


# --------------------------------------------------------------------- #
# Reductions
# --------------------------------------------------------------------- #
def sum(a, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Sum over ``axis`` (all elements when None)."""
    a = as_tensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad):
        grad_arr = np.asarray(grad)
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            for ax in sorted(ax % a.data.ndim for ax in axes):
                grad_arr = np.expand_dims(grad_arr, ax)
        return (np.broadcast_to(grad_arr, a.shape).copy(),)

    return Tensor._make(out_data, (a,), backward)


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    """Mean over ``axis`` (all elements when None)."""
    a = as_tensor(a)
    out_data = a.data.mean(axis=axis, keepdims=keepdims)
    if axis is None:
        count = a.data.size
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = int(np.prod([a.data.shape[ax] for ax in axes]))

    def backward(grad):
        grad_arr = np.asarray(grad) / count
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            for ax in sorted(ax % a.data.ndim for ax in axes):
                grad_arr = np.expand_dims(grad_arr, ax)
        return (np.broadcast_to(grad_arr, a.shape).copy(),)

    return Tensor._make(out_data, (a,), backward)


def max(a, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Maximum over ``axis``; ties share the gradient equally."""
    a = as_tensor(a)
    out_data = a.data.max(axis=axis, keepdims=keepdims)

    def backward(grad):
        grad_arr = np.asarray(grad)
        out_expanded = out_data
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            for ax in sorted(ax % a.data.ndim for ax in axes):
                grad_arr = np.expand_dims(grad_arr, ax)
                out_expanded = np.expand_dims(out_expanded, ax)
        mask = (a.data == out_expanded).astype(np.float64)
        # Split gradient equally among ties, matching subgradient convention.
        mask /= mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
        return (mask * grad_arr,)

    return Tensor._make(out_data, (a,), backward)


# --------------------------------------------------------------------- #
# Shape manipulation
# --------------------------------------------------------------------- #
def reshape(a, shape) -> Tensor:
    """View ``a`` with a new shape."""
    a = as_tensor(a)
    original_shape = a.shape
    out_data = a.data.reshape(shape)

    def backward(grad):
        return (grad.reshape(original_shape),)

    return Tensor._make(out_data, (a,), backward)


def transpose(a, axes=None) -> Tensor:
    """Permute axes (reverse them when ``axes`` is None)."""
    a = as_tensor(a)
    out_data = a.data.transpose(axes)
    if axes is None:
        inverse = None
    else:
        inverse = np.argsort(axes)

    def backward(grad):
        return (grad.transpose(inverse),)

    return Tensor._make(out_data, (a,), backward)


def concat(tensors, axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    split_points = np.cumsum(sizes)[:-1]

    def backward(grad):
        return tuple(np.split(grad, split_points, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors, axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        moved = np.moveaxis(grad, axis, 0)
        return tuple(moved[i] for i in range(len(tensors)))

    return Tensor._make(out_data, tuple(tensors), backward)


def getitem(a, index) -> Tensor:
    """Differentiable indexing/slicing ``a[index]``."""
    a = as_tensor(a)
    out_data = a.data[index]

    def backward(grad):
        full = np.zeros_like(a.data)
        np.add.at(full, index, grad)
        return (full,)

    return Tensor._make(out_data, (a,), backward)


def gather_rows(a, indices) -> Tensor:
    """Select rows ``a[indices]`` along axis 0 (differentiable embedding lookup)."""
    a = as_tensor(a)
    idx = np.asarray(indices, dtype=np.intp)
    out_data = a.data[idx]

    def backward(grad):
        full = np.zeros_like(a.data)
        np.add.at(full, idx, grad)
        return (full,)

    return Tensor._make(out_data, (a,), backward)


def scatter_rows(base, indices, rows) -> Tensor:
    """Functional row update: ``out = base; out[indices] = rows``.

    ``indices`` must be unique (last-write-wins semantics are not
    differentiable); rows of ``base`` not listed pass through unchanged.
    Backward routes the incoming gradient to ``rows`` at the scattered
    positions and to ``base`` everywhere else — each output row has
    exactly one producer, so no gradient is double-counted.  Used to
    maintain per-rollout embedding banks across decoding steps without
    rebuilding the whole tensor each step.
    """
    base, rows = as_tensor(base), as_tensor(rows)
    idx = np.asarray(indices, dtype=np.intp)
    out_data = base.data.copy()
    out_data[idx] = rows.data

    def backward(grad):
        grad_base = grad.copy()
        grad_base[idx] = 0.0
        return grad_base, grad[idx]

    return Tensor._make(out_data, (base, rows), backward)


# --------------------------------------------------------------------- #
# Softmax family and masking
# --------------------------------------------------------------------- #
def softmax(a, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(grad):
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        return (out_data * (grad - dot),)

    return Tensor._make(out_data, (a,), backward)


def log_softmax(a, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    soft = np.exp(out_data)

    def backward(grad):
        return (grad - soft * grad.sum(axis=axis, keepdims=True),)

    return Tensor._make(out_data, (a,), backward)


def clip_tanh(a, clip: float) -> Tensor:
    """``clip * tanh(a)`` — the logit clipping of Bello et al. / Kool et al."""
    a = as_tensor(a)
    t = np.tanh(a.data)
    out_data = clip * t

    def backward(grad):
        return (grad * clip * (1.0 - t ** 2),)

    return Tensor._make(out_data, (a,), backward)


def masked_fill(a, mask, value: float) -> Tensor:
    """Replace entries where ``mask`` is True with ``value`` (no grad there).

    The mask is copied: callers may mutate their mask arrays between the
    forward pass and ``backward()`` (the pointer decoders update their
    ``visited`` mask in place every step).
    """
    a = as_tensor(a)
    mask_arr = np.array(mask, dtype=bool, copy=True)
    out_data = np.where(mask_arr, value, a.data)

    def backward(grad):
        return (np.where(mask_arr, 0.0, grad),)

    return Tensor._make(out_data, (a,), backward)


def where(condition, a, b) -> Tensor:
    """Elementwise select: ``a`` where condition else ``b``."""
    cond = np.array(condition, dtype=bool, copy=True)  # guard vs mutation
    a, b = as_tensor(a), as_tensor(b)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad):
        return (
            unbroadcast(np.where(cond, grad, 0.0), a.shape),
            unbroadcast(np.where(cond, 0.0, grad), b.shape),
        )

    return Tensor._make(out_data, (a, b), backward)


def broadcast_to(a, shape) -> Tensor:
    """Broadcast ``a`` to ``shape`` (numpy rules); backward sums the
    expanded axes back down via :func:`unbroadcast`.

    Used by the batched decoders to share per-instance static embeddings
    (computed once) across a leading rollout axis.
    """
    a = as_tensor(a)
    out_data = np.broadcast_to(a.data, shape).copy()

    def backward(grad):
        return (unbroadcast(grad, a.shape),)

    return Tensor._make(out_data, (a,), backward)


def masked_softmax(a, mask, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` restricted to entries where ``mask`` is False.

    ``mask`` is boolean, broadcastable to ``a.shape``, with True marking
    *disallowed* (e.g. padded) positions: they get probability exactly 0.0
    and receive no gradient, so padded rows cannot leak into real ones.
    Fully masked rows yield all-zero probabilities (never NaN) — the
    convention the batched decode engine relies on for variable-length
    candidate sets padded to a common width.
    """
    a = as_tensor(a)
    mask_arr = np.broadcast_to(np.asarray(mask, dtype=bool), a.shape).copy()
    neg = np.where(mask_arr, -np.inf, a.data)
    row_max = neg.max(axis=axis, keepdims=True)
    safe_max = np.where(np.isfinite(row_max), row_max, 0.0)
    exps = np.where(mask_arr, 0.0, np.exp(neg - safe_max))
    denom = exps.sum(axis=axis, keepdims=True)
    out_data = exps / np.where(denom == 0.0, 1.0, denom)

    def backward(grad):
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        return (np.where(mask_arr, 0.0, out_data * (grad - dot)),)

    return Tensor._make(out_data, (a,), backward)


def masked_log_softmax(a, mask, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis`` over the entries where ``mask`` is False.

    Masked positions output the constant ``NEG_INF`` with zero gradient;
    unmasked positions match :func:`log_softmax` over the unmasked subset
    bit-for-bit when the row carries no padding (the normalising sum then
    runs over the identical entries in the identical order).  Fully masked
    rows output ``NEG_INF`` everywhere.
    """
    a = as_tensor(a)
    mask_arr = np.broadcast_to(np.asarray(mask, dtype=bool), a.shape).copy()
    neg = np.where(mask_arr, -np.inf, a.data)
    row_max = neg.max(axis=axis, keepdims=True)
    safe_max = np.where(np.isfinite(row_max), row_max, 0.0)
    shifted = a.data - safe_max
    exps = np.where(mask_arr, 0.0, np.exp(shifted))
    denom = exps.sum(axis=axis, keepdims=True)
    log_norm = np.log(np.where(denom == 0.0, 1.0, denom))
    out_data = np.where(mask_arr, NEG_INF, shifted - log_norm)
    soft = np.where(mask_arr, 0.0, np.exp(out_data))

    def backward(grad):
        gsum = np.where(mask_arr, 0.0, grad).sum(axis=axis, keepdims=True)
        return (np.where(mask_arr, 0.0, grad - soft * gsum),)

    return Tensor._make(out_data, (a,), backward)


def masked_mean(a, mask, axis: int) -> Tensor:
    """Mean over ``axis`` counting only entries where ``mask`` is False.

    ``mask`` must broadcast to ``a.shape`` (True = excluded/padded).  Rows
    whose every entry is masked yield 0.0 — matching the all-zero
    embedding the serial policy uses for workers with no assigned tasks.
    Composed from primitive ops, so gradients need no custom backward.
    """
    a = as_tensor(a)
    mask_arr = np.broadcast_to(np.asarray(mask, dtype=bool), a.shape)
    counts = np.maximum((~mask_arr).sum(axis=axis), 1)
    zeroed = where(mask_arr, Tensor(0.0), a)
    return div(sum(zeroed, axis=axis), counts.astype(np.float64))


def pad_stack(arrays, pad_value: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
    """Stack variable-length arrays into one padded batch plus its mask.

    ``arrays`` is a sequence of numpy arrays shaped ``(n_i, ...)`` with
    identical trailing dimensions.  Returns ``(batch, mask)`` where
    ``batch`` has shape ``(B, n_max, ...)`` with short rows padded by
    ``pad_value`` and ``mask`` is boolean ``(B, n_max)`` with True marking
    the padded tail — the convention every ``masked_*`` op above expects.
    Plain-numpy utility (no autograd): use it for feature/signal arrays;
    pad differentiable embeddings via index matrices + :func:`gather_rows`.
    """
    # Skip the per-array ``asarray`` copy when callers already hold
    # contiguous float64 ndarrays (the decode hot loop always does).
    float64 = np.dtype(np.float64)
    arrays = [arr if type(arr) is np.ndarray and arr.dtype == float64
              else np.asarray(arr, dtype=np.float64) for arr in arrays]
    # ``max`` is shadowed by the reduction op above.
    n_max = builtins.max((arr.shape[0] for arr in arrays), default=0)
    trailing = arrays[0].shape[1:] if arrays else ()
    for i, arr in enumerate(arrays):
        if arr.shape[1:] != trailing:
            raise ValueError(
                "pad_stack arrays must share trailing dimensions: array 0 "
                f"has shape {arrays[0].shape}, array {i} has {arr.shape} "
                "(only the leading axis may vary)")
    out_shape = (len(arrays), n_max) + trailing
    if pad_value == 0.0:
        batch = np.zeros(out_shape)
    else:
        batch = np.full(out_shape, float(pad_value))
    mask = np.ones((len(arrays), n_max), dtype=bool)
    for i, arr in enumerate(arrays):
        n = arr.shape[0]
        batch[i, :n] = arr
        mask[i, :n] = False
    return batch, mask


def dropout(a, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or rate == 0."""
    a = as_tensor(a)
    if not training or rate <= 0.0:
        return a
    keep = 1.0 - rate
    mask = (rng.random(a.shape) < keep) / keep
    out_data = a.data * mask

    def backward(grad):
        return (grad * mask,)

    return Tensor._make(out_data, (a,), backward)


# --------------------------------------------------------------------- #
# Profiler instrumentation
# --------------------------------------------------------------------- #
# Every public op is rebound to its instrumented wrapper at import time.
# Rebinding the *module globals* (not just ``__all__`` exports) matters:
# composite ops such as ``masked_mean`` call ``where``/``sum``/``div``
# through this namespace, so their constituents nest naturally under the
# composite frame in stack-aware hooks.  ``pad_stack`` is a plain-numpy
# utility (no Tensor output) and stays unwrapped.
for _name in __all__:
    if _name == "pad_stack":
        continue
    globals()[_name] = instrument_op(globals()[_name], _name)
del _name
