"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the ``repro.nn`` neural-network substrate.
The paper trains its policy networks (the TSPTW solver of Ma et al. and
TASNet) with PyTorch; since PyTorch is unavailable in this environment, we
implement the minimal but complete autograd engine the models need.

A :class:`Tensor` wraps a ``numpy.ndarray`` and records the operations that
produced it.  Calling :meth:`Tensor.backward` on a scalar output walks the
recorded graph in reverse topological order and accumulates gradients into
every tensor created with ``requires_grad=True``.

Broadcasting is fully supported: gradients flowing into a broadcast operand
are summed over the broadcast axes (see :func:`unbroadcast`).
"""

from __future__ import annotations

import functools
import time
import weakref

import numpy as np

__all__ = ["Tensor", "as_tensor", "unbroadcast", "no_grad", "is_grad_enabled",
           "TensorHook", "NULL_HOOK", "get_tensor_hook", "set_tensor_hook",
           "instrument_op"]

_GRAD_ENABLED = True

_FLOAT64 = np.dtype(np.float64)


# --------------------------------------------------------------------- #
# Profiler hook
# --------------------------------------------------------------------- #
class TensorHook:
    """Pluggable observer of the autograd engine's op traffic.

    Every differentiable op in :mod:`repro.nn.ops` funnels through one
    creation choke point (:func:`instrument_op` around the op function,
    :meth:`Tensor._make` for the graph node); a hook installed with
    :func:`set_tensor_hook` sees each forward op, each backward closure
    invocation, and every tensor allocation/release.  The base class is
    the *shared null hook*: all callbacks are no-ops and ``enabled`` is
    False, so the disabled hot path pays one global read and one
    attribute check per op — no allocation, no call.

    The real implementation is
    :class:`repro.obs.profile.OpProfiler`; this base lives in ``nn`` so
    the engine has no dependency on the observability layer.
    """

    enabled = False
    __slots__ = ()

    def begin(self, name: str) -> None:
        """Push a frame named ``name`` (op or scope) onto the stack."""

    def forward(self, name: str, seconds: float, args, out) -> None:
        """Pop the frame: one forward op finished in ``seconds``.

        ``args``/``out`` are the op's raw arguments and result (``out``
        is None when the op raised), from which implementations estimate
        FLOPs and bytes; they must not be retained.
        """

    def end(self, name: str, seconds: float) -> None:
        """Pop the frame: a non-op scope closed after ``seconds``."""

    def backward(self, name: str, seconds: float, node: "Tensor") -> None:
        """One backward closure for op ``name`` finished in ``seconds``."""

    def custom(self, name: str, seconds: float, flops: int = 0,
               nbytes: int = 0) -> None:
        """A leaf sample outside the op system (optimizer step, im2col)."""

    def alloc(self, nbytes: int) -> None:
        """A tensor holding ``nbytes`` was created."""

    def release(self, nbytes: int) -> None:
        """A tensor holding ``nbytes`` was garbage-collected."""


#: The shared disabled hook — installed by default, restored on teardown.
NULL_HOOK = TensorHook()

_HOOK: TensorHook = NULL_HOOK


def get_tensor_hook() -> TensorHook:
    """The currently installed hook (:data:`NULL_HOOK` when disabled)."""
    return _HOOK


def set_tensor_hook(hook: TensorHook | None) -> TensorHook:
    """Install ``hook`` (None restores the null hook); returns previous."""
    global _HOOK
    previous = _HOOK
    _HOOK = hook if hook is not None else NULL_HOOK
    return previous


def instrument_op(fn, name: str | None = None):
    """Wrap an op function so the installed hook sees every call.

    Applied to every public differentiable op at the bottom of
    :mod:`repro.nn.ops`.  With the null hook installed the wrapper is a
    single ``enabled`` check plus the delegated call; with a live hook it
    times the forward pass (inclusive of nested ops — the hook's frame
    stack separates self-time) and tags the output tensor with the op
    name for backward attribution.
    """
    name = name or fn.__name__

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        hook = _HOOK
        if not hook.enabled:
            return fn(*args, **kwargs)
        hook.begin(name)
        start = time.perf_counter()
        try:
            out = fn(*args, **kwargs)
        except BaseException:
            hook.forward(name, time.perf_counter() - start, args, None)
            raise
        hook.forward(name, time.perf_counter() - start, args, out)
        if isinstance(out, Tensor):
            out._op = name
        return out

    return wrapper


def _node_op_name(node: "Tensor") -> str:
    """Best-effort op name for a graph node during the backward walk."""
    if node._op is not None:
        return node._op
    backward = node._backward
    if backward is None:
        return "leaf"
    qual = getattr(backward, "__qualname__", "op")
    return qual.split(".<locals>")[0]


class no_grad:
    """Context manager that disables graph recording.

    Used during greedy decoding / evaluation, where building the autograd
    graph would waste time and memory::

        with no_grad():
            action = policy.act(state)
    """

    def __enter__(self):
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous
        return False


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so its shape matches the pre-broadcast ``shape``.

    numpy broadcasting aligns trailing dimensions; every axis that was
    expanded during the forward pass must be summed over in the backward
    pass so the gradient has the operand's original shape.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64`` ndarray unless already
        a float ndarray.
    requires_grad:
        If True, gradients are accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "name", "_op", "__weakref__")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        if isinstance(data, Tensor):
            data = data.data
        # Fast path: the decode hot loop feeds float64 ndarrays back in;
        # ``asarray`` on those is already a no-copy identity, but skipping
        # it avoids the dtype-resolution machinery per tensor.
        if type(data) is np.ndarray and data.dtype == _FLOAT64:
            arr = data
        else:
            arr = np.asarray(data, dtype=np.float64)
        self.data = arr
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward = None  # type: ignore[assignment]
        self._parents: tuple[Tensor, ...] = ()
        self.name = name
        self._op: str | None = None
        hook = _HOOK
        if hook.enabled:
            # Live-tensor accounting: graph retention keeps parents alive
            # through ``_parents``, so the watermark tracks exactly the
            # memory the recorded graph pins until backward/release.
            nbytes = arr.nbytes
            hook.alloc(nbytes)
            weakref.finalize(self, hook.release, nbytes)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(data: np.ndarray, parents: tuple["Tensor", ...], backward) -> "Tensor":
        """Create a graph node whose ``backward`` closure propagates grads."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to None."""
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1 for scalar tensors; non-scalar roots must
        supply an explicit output gradient.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without gradient only supported for scalars")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Topological order via iterative DFS (recursion would overflow on
        # long decoding trajectories).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        hook = _HOOK
        profiled = hook.enabled
        if profiled:
            hook.begin("backward")
            walk_start = time.perf_counter()
        try:
            grads: dict[int, np.ndarray] = {id(self): grad}
            for node in reversed(order):
                node_grad = grads.pop(id(node), None)
                if node_grad is None:
                    continue
                if node._backward is None:
                    node._accumulate(node_grad)
                    continue
                if profiled:
                    start = time.perf_counter()
                    parent_grads = node._backward(node_grad)
                    hook.backward(_node_op_name(node),
                                  time.perf_counter() - start, node)
                else:
                    parent_grads = node._backward(node_grad)
                for parent, pgrad in zip(node._parents, parent_grads):
                    if pgrad is None or not parent.requires_grad:
                        continue
                    if parent._backward is None and not parent._parents:
                        parent._accumulate(pgrad)
                    else:
                        existing = grads.get(id(parent))
                        grads[id(parent)] = pgrad if existing is None else existing + pgrad
        finally:
            if profiled:
                hook.end("backward", time.perf_counter() - walk_start)

    # ------------------------------------------------------------------ #
    # Operators (implemented in ops.py, attached at import time)
    # ------------------------------------------------------------------ #
    def __add__(self, other):
        from . import ops

        return ops.add(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        from . import ops

        return ops.sub(self, other)

    def __rsub__(self, other):
        from . import ops

        return ops.sub(other, self)

    def __mul__(self, other):
        from . import ops

        return ops.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        from . import ops

        return ops.div(self, other)

    def __rtruediv__(self, other):
        from . import ops

        return ops.div(other, self)

    def __neg__(self):
        from . import ops

        return ops.neg(self)

    def __pow__(self, exponent):
        from . import ops

        return ops.power(self, exponent)

    def __matmul__(self, other):
        from . import ops

        return ops.matmul(self, other)

    def __getitem__(self, index):
        from . import ops

        return ops.getitem(self, index)

    # Convenience methods mirroring the functional API.
    def sum(self, axis=None, keepdims: bool = False):
        from . import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        from . import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from . import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, axes=None):
        from . import ops

        return ops.transpose(self, axes)

    @property
    def T(self):
        return self.transpose()


def as_tensor(value, requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy if already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)
