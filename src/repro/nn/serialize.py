"""Save and load model parameters as ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from .layers import Module

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path: str | os.PathLike) -> None:
    """Serialise a module's parameters to ``path`` (npz archive)."""
    state = module.state_dict()
    np.savez(path, **state)


def load_module(module: Module, path: str | os.PathLike) -> Module:
    """Load parameters saved with :func:`save_module` into ``module``."""
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
    return module
