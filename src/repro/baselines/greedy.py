"""TVPG and TCPG — the greedy baselines (paper Section V-B).

Both start from Nearest Neighbour initial routes and iteratively insert one
sensing task at a time at its best feasible position:

* **TVPG** (task *value* priority): pick the insertion with the maximum
  coverage gain; break ties toward the lower incentive cost.
* **TCPG** (task *cost* priority): pick the insertion with the minimum
  incentive cost; break ties toward the higher coverage gain.

Worker choice follows [8]: at each iteration the worker whose best
insertable task contributes the most (respectively costs the least) is the
one selected.
"""

from __future__ import annotations

import time

from ..core.instance import USMDWInstance
from ..core.solution import Solution
from .base import RouteBuilder

__all__ = ["TVPGSolver", "TCPGSolver"]

_EPS = 1e-12


class _GreedyBase:
    """Common loop; subclasses define the priority key (smaller = better)."""

    name = "greedy"

    def _key(self, gain: float, delta: float) -> tuple[float, float]:
        raise NotImplementedError

    def solve(self, instance: USMDWInstance) -> Solution:
        start = time.perf_counter()
        builder = RouteBuilder(instance)

        while True:
            best = None
            best_key = None
            for worker in instance.workers:
                worker_id = worker.worker_id
                for task in builder.unassigned_tasks():
                    found = builder.feasible_insertion(worker_id, task)
                    if found is None:
                        continue
                    position, rtt_after, delta = found
                    gain = builder.coverage.gain(task)
                    key = self._key(gain, delta)
                    if best_key is None or key < best_key:
                        best_key = key
                        best = (worker_id, task, position, rtt_after, delta)
            if best is None:
                break
            builder.apply(*best)

        return builder.to_solution(self.name, time.perf_counter() - start)


class TVPGSolver(_GreedyBase):
    """Task value priority greedy."""

    name = "TVPG"

    def _key(self, gain: float, delta: float) -> tuple[float, float]:
        return (-gain, delta)


class TCPGSolver(_GreedyBase):
    """Task cost priority greedy."""

    name = "TCPG"

    def _key(self, gain: float, delta: float) -> tuple[float, float]:
        return (delta, -gain)
