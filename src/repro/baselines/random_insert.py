"""RN — the random baseline (paper Section V-B).

Starting from each worker's Nearest Neighbour route, repeatedly pick a
random worker, a random sensing task, and a random insertion position; keep
the insertion when it is feasible and affordable.  The loop ends when the
budget is (effectively) used up — detected as a run of consecutive failed
random attempts, since pure rejection sampling has no other terminal test.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.instance import USMDWInstance
from ..core.solution import Solution
from .base import RouteBuilder

__all__ = ["RandomSolver"]


class RandomSolver:
    """The RN baseline."""

    name = "RN"

    def __init__(self, seed: int = 0, max_failures: int = 300):
        self.seed = seed
        self.max_failures = max_failures

    def solve(self, instance: USMDWInstance) -> Solution:
        start = time.perf_counter()
        rng = np.random.default_rng(self.seed)
        builder = RouteBuilder(instance)
        worker_ids = [w.worker_id for w in instance.workers]

        failures = 0
        while failures < self.max_failures:
            tasks = builder.unassigned_tasks()
            if not tasks or builder.budget_rest <= 0:
                break
            worker_id = worker_ids[int(rng.integers(0, len(worker_ids)))]
            task = tasks[int(rng.integers(0, len(tasks)))]
            position = int(rng.integers(0, len(builder.routes[worker_id]) + 1))
            attempt = builder.insertion_at(worker_id, task, position)
            if attempt is None:
                failures += 1
                continue
            rtt_after, delta = attempt
            builder.apply(worker_id, task, position, rtt_after, delta)
            failures = 0

        return builder.to_solution(self.name, time.perf_counter() - start)
