"""Shared machinery for the baseline solvers (paper Section V-B).

RN, TVPG and TCPG all follow the same skeleton: build each worker's initial
working route with the Nearest Neighbour algorithm, then iteratively insert
sensing tasks into routes until the budget is exhausted.
:class:`RouteBuilder` implements that skeleton — incremental insertion
search, dynamic incentives (Definition 6: proportional to the route's
excess over the worker's *optimal* own route, so an inefficient NN backbone
already costs budget, exactly as in the paper), coverage tracking, and
budget accounting — so each baseline only supplies its selection rule.
"""

from __future__ import annotations

import time

from ..core.entities import SensingTask, Worker
from ..core.incentive import IncentiveModel
from ..core.instance import USMDWInstance
from ..core.packed import packed_instance
from ..core.route import WorkingRoute, simulate_route
from ..core.solution import Solution
from ..tsptw.insertion import InsertionSolver, cheapest_insertion_position
from ..tsptw.nearest import nearest_neighbor_order

__all__ = ["RouteBuilder", "AssignmentSolverProtocol", "timed_solution"]


class RouteBuilder:
    """Mutable per-worker routes + budget/coverage accounting."""

    def __init__(self, instance: USMDWInstance):
        self.instance = instance
        self.speed = instance.speed
        base_planner = InsertionSolver(speed=instance.speed)
        base_planner.bind_instance(instance)
        # Every distance below comes from the instance's shared packed
        # travel-distance matrix (identical floats to per-pair hypot).
        self._dist = packed_instance(instance).distance_between
        self.incentives = IncentiveModel(
            mu=instance.mu,
            base_rtt_fn=lambda w: base_planner.base_route(w).route_travel_time)
        self.coverage = instance.coverage.new_state()
        self.budget_rest = instance.budget
        self.assigned_ids: set[int] = set()

        # Initial working route: Nearest Neighbour over the travel tasks.
        self.routes: dict[int, list] = {}
        self.route_rtt: dict[int, float] = {}
        self.route_ok: dict[int, bool] = {}
        for worker in instance.workers:
            order = nearest_neighbor_order(worker, list(worker.travel_tasks),
                                           dist=self._dist)
            timing = simulate_route(worker, order, speed=self.speed)
            self.routes[worker.worker_id] = order
            self.route_rtt[worker.worker_id] = timing.route_travel_time
            self.route_ok[worker.worker_id] = timing.feasible

    # ------------------------------------------------------------------ #
    def clone(self) -> "RouteBuilder":
        """Independent copy sharing immutable parts (instance, incentives)."""
        twin = object.__new__(RouteBuilder)
        twin.instance = self.instance
        twin.speed = self.speed
        twin._dist = self._dist
        twin.incentives = self.incentives  # caches are per-worker, immutable
        twin.coverage = self.coverage.copy()
        twin.budget_rest = self.budget_rest
        twin.assigned_ids = set(self.assigned_ids)
        twin.routes = {wid: list(route) for wid, route in self.routes.items()}
        twin.route_rtt = dict(self.route_rtt)
        twin.route_ok = dict(self.route_ok)
        return twin

    # ------------------------------------------------------------------ #
    def committed(self, worker_id: int) -> bool:
        """Whether the worker has at least one sensing task (is recruited)."""
        return any(isinstance(t, SensingTask) for t in self.routes[worker_id])

    def current_incentive(self, worker_id: int) -> float:
        if not self.committed(worker_id):
            return 0.0
        worker = self.instance.worker(worker_id)
        return self.incentives.incentive(worker, self.route_rtt[worker_id])

    def delta_incentive(self, worker_id: int, rtt_after: float) -> float:
        worker = self.instance.worker(worker_id)
        return (self.incentives.incentive(worker, rtt_after)
                - self.current_incentive(worker_id))

    # ------------------------------------------------------------------ #
    def feasible_insertion(self, worker_id: int,
                           task: SensingTask) -> tuple[int, float, float] | None:
        """(position, rtt_after, delta_incentive) of the cheapest feasible
        insertion of ``task``, or None (infeasible or over budget)."""
        if not self.route_ok[worker_id] or task.task_id in self.assigned_ids:
            return None
        worker = self.instance.worker(worker_id)
        best = cheapest_insertion_position(
            worker, self.routes[worker_id], task, self.speed,
            dist=self._dist)
        if best is None:
            return None
        position, rtt_after = best
        delta = self.delta_incentive(worker_id, rtt_after)
        if delta >= self.budget_rest:
            return None
        return position, rtt_after, delta

    def insertion_at(self, worker_id: int, task: SensingTask,
                     position: int) -> tuple[float, float] | None:
        """(rtt_after, delta_incentive) for a *specific* position, or None."""
        if not self.route_ok[worker_id] or task.task_id in self.assigned_ids:
            return None
        worker = self.instance.worker(worker_id)
        candidate = self.routes[worker_id][:position] + [task] + \
            self.routes[worker_id][position:]
        timing = simulate_route(worker, candidate, speed=self.speed)
        if not timing.feasible:
            return None
        delta = self.delta_incentive(worker_id, timing.route_travel_time)
        if delta >= self.budget_rest:
            return None
        return timing.route_travel_time, delta

    def apply(self, worker_id: int, task: SensingTask, position: int,
              rtt_after: float, delta: float) -> None:
        self.routes[worker_id].insert(position, task)
        self.route_rtt[worker_id] = rtt_after
        self.budget_rest -= delta
        self.assigned_ids.add(task.task_id)
        self.coverage.add(task)

    def unassigned_tasks(self) -> list[SensingTask]:
        return [s for s in self.instance.sensing_tasks
                if s.task_id not in self.assigned_ids]

    # ------------------------------------------------------------------ #
    def to_solution(self, solver_name: str, wall_time: float) -> Solution:
        routes = {}
        incentives = {}
        for worker in self.instance.workers:
            wid = worker.worker_id
            if not self.committed(wid):
                continue
            routes[wid] = WorkingRoute(worker, tuple(self.routes[wid]),
                                       speed=self.speed)
            incentives[wid] = self.current_incentive(wid)
        return Solution(self.instance, routes, incentives,
                        solver_name=solver_name, wall_time=wall_time)


class AssignmentSolverProtocol:
    """Duck-typed interface: every solver exposes ``solve(instance)``."""

    name: str

    def solve(self, instance: USMDWInstance) -> Solution:  # pragma: no cover
        raise NotImplementedError


def timed_solution(builder: RouteBuilder, name: str, start: float) -> Solution:
    """Finalize a builder into a Solution stamped with elapsed wall time."""
    return builder.to_solution(name, time.perf_counter() - start)
