"""JDRL — adapted multi-agent RL dispatcher (paper Section V-B).

JDRL [23] is a MARL framework for ride-hailing order dispatching; the paper
adapts it by "beginning to assign sensing tasks under the prerequisite that
all travel tasks can be completed".  Our reimplementation keeps that shape:

* each worker is an independent agent holding its NN travel-task route;
* agents act in turn; an agent scores its feasible sensing tasks with a
  shared learned value network over local features (coverage gain,
  incentive cost, detour, window slack) and inserts the best one;
* the value network is pre-trained with a regression-to-realised-return
  target on sampled instances (:meth:`JDRLSolver.pretrain`), mirroring the
  centralised-critic training of the original system.

JDRL has no budget awareness beyond per-step affordability and no
multi-destination-specific planning — the two deficiencies the paper blames
for it trailing SMORE.
"""

from __future__ import annotations

import time

import numpy as np

from .. import nn
from ..core.entities import SensingTask
from ..core.instance import USMDWInstance
from ..core.solution import Solution
from .base import RouteBuilder

__all__ = ["JDRLSolver"]

_NUM_FEATURES = 5


def _candidate_features(builder: RouteBuilder, worker_id: int,
                        task: SensingTask, gain: float, delta: float,
                        rtt_after: float) -> np.ndarray:
    instance = builder.instance
    span = instance.coverage.time_span
    slack = (task.tw_end - task.tw_start) / span
    detour = (rtt_after - builder.route_rtt[worker_id]) / span
    budget_frac = builder.budget_rest / max(instance.budget, 1e-9)
    return np.array([gain, delta / max(instance.budget, 1e-9),
                     detour, slack, budget_frac])


class JDRLSolver:
    """The adapted JDRL baseline."""

    name = "JDRL"

    def __init__(self, seed: int = 0, epsilon: float = 0.0,
                 value_net: nn.MLP | None = None):
        self.seed = seed
        self.epsilon = epsilon
        rng = np.random.default_rng(seed)
        self.value_net = value_net or nn.MLP([_NUM_FEATURES, 16, 1], rng=rng)

    # ------------------------------------------------------------------ #
    def _score(self, features: np.ndarray) -> float:
        with nn.no_grad():
            out = self.value_net(nn.Tensor(features.reshape(1, -1)))
        return float(out.data.reshape(-1)[0])

    def solve(self, instance: USMDWInstance) -> Solution:
        start = time.perf_counter()
        rng = np.random.default_rng(self.seed)
        builder = RouteBuilder(instance)
        worker_ids = [w.worker_id for w in instance.workers]

        active = True
        while active:
            active = False
            for worker_id in worker_ids:
                best = None
                best_score = -np.inf
                for task in builder.unassigned_tasks():
                    found = builder.feasible_insertion(worker_id, task)
                    if found is None:
                        continue
                    position, rtt_after, delta = found
                    gain = builder.coverage.gain(task)
                    features = _candidate_features(
                        builder, worker_id, task, gain, delta, rtt_after)
                    score = self._score(features)
                    if self.epsilon and rng.random() < self.epsilon:
                        score = rng.random()
                    if score > best_score:
                        best_score = score
                        best = (worker_id, task, position, rtt_after, delta)
                if best is not None:
                    builder.apply(*best)
                    active = True

        return builder.to_solution(self.name, time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    def pretrain(self, instances, iterations: int = 30, lr: float = 1e-2,
                 seed: int | None = None) -> list[float]:
        """Regress the value net onto realised per-step returns.

        Rolls out epsilon-greedy episodes, recording (features, realised
        coverage-gain) pairs, then fits the shared value network — the
        centralised-critic flavour of the original JDRL.  Returns the loss
        history.
        """
        rng = np.random.default_rng(self.seed if seed is None else seed)
        optimizer = nn.Adam(self.value_net.parameters(), lr=lr)
        losses: list[float] = []
        for iteration in range(iterations):
            instance = instances[int(rng.integers(0, len(instances)))]
            features_batch, targets = self._collect_episode(instance, rng)
            if not features_batch:
                continue
            x = nn.Tensor(np.stack(features_batch))
            y = nn.Tensor(np.asarray(targets).reshape(-1, 1))
            pred = self.value_net(x)
            loss = ((pred - y) ** 2.0).mean()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        return losses

    def _collect_episode(self, instance: USMDWInstance,
                         rng: np.random.Generator):
        builder = RouteBuilder(instance)
        worker_ids = [w.worker_id for w in instance.workers]
        features_batch: list[np.ndarray] = []
        targets: list[float] = []
        active = True
        while active:
            active = False
            for worker_id in worker_ids:
                options = []
                for task in builder.unassigned_tasks():
                    found = builder.feasible_insertion(worker_id, task)
                    if found is None:
                        continue
                    position, rtt_after, delta = found
                    gain = builder.coverage.gain(task)
                    features = _candidate_features(
                        builder, worker_id, task, gain, delta, rtt_after)
                    options.append(
                        (features, gain, (worker_id, task, position,
                                          rtt_after, delta)))
                if not options:
                    continue
                pick = options[int(rng.integers(0, len(options)))]
                features, gain, action = pick
                features_batch.append(features)
                targets.append(gain)
                builder.apply(*action)
                active = True
        return features_batch, targets
