"""Exact USMDW solver by branch-and-bound (small instances only).

USMDW is NP-hard (paper Lemma 1); no polynomial exact solver exists.  For
*small* instances, however, optimal solutions are computable and provide
the ground truth that lets the reproduction measure the optimality gap of
SMORE and the baselines — an evaluation the paper itself could not run at
its scale.

The search branches over sensing tasks in order; each task is either left
unassigned or assigned to one worker.  A partial assignment is pruned when
the worker's route (planned optimally by the exact TSPTW DP) becomes
infeasible, when the budget is exceeded, or when an optimistic bound on
the best reachable coverage cannot beat the incumbent:

    phi_bound = alpha * E_max + (1 - alpha) * log2(assigned + remaining)

with ``E_max`` the mean of per-histogram entropy capacities — admissible
because entropy can never exceed ``log2(min(bins, count))``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from ..core.coverage import CoverageState, spatial_pyramid
from ..core.entities import SensingTask
from ..core.incentive import IncentiveModel
from ..core.instance import USMDWInstance
from ..core.route import WorkingRoute
from ..core.solution import Solution
from ..tsptw.exact import ExactDPSolver

__all__ = ["ExactUSMDWSolver"]


def _coverage_upper_bound(state: CoverageState, remaining: int) -> float:
    """Admissible upper bound on phi after adding up to ``remaining`` tasks."""
    model = state.model
    total_max = state.total + remaining
    if total_max == 0:
        return 0.0
    levels = spatial_pyramid(model.grid)
    capacities = [math.log2(min(g.num_cells, total_max)) if total_max > 1 else 0.0
                  for g in levels]
    capacities.append(math.log2(min(model.num_slots, total_max))
                      if total_max > 1 else 0.0)
    e_max = sum(capacities) / len(capacities)
    return model.alpha * e_max + (1 - model.alpha) * math.log2(total_max)


@dataclass
class _SearchState:
    assigned: dict[int, list[SensingTask]]
    incentives: dict[int, float]
    budget_rest: float


class ExactUSMDWSolver:
    """Optimal USMDW solver for instances with a handful of tasks.

    Parameters
    ----------
    max_tasks / max_workers:
        Hard limits; larger instances raise ``ValueError`` (the search is
        ``O((|W|+1)^|S|)`` with a TSPTW DP at every node).
    time_limit:
        Wall-clock cap in seconds; on expiry the incumbent (best found so
        far) is returned with ``optimal=False`` recorded on the solution's
        solver name.
    """

    name = "EXACT"

    def __init__(self, max_tasks: int = 8, max_workers: int = 3,
                 time_limit: float = 60.0):
        self.max_tasks = max_tasks
        self.max_workers = max_workers
        self.time_limit = time_limit

    # ------------------------------------------------------------------ #
    def solve(self, instance: USMDWInstance) -> Solution:
        if instance.num_sensing_tasks > self.max_tasks:
            raise ValueError(
                f"ExactUSMDWSolver limited to {self.max_tasks} sensing tasks, "
                f"got {instance.num_sensing_tasks}")
        if instance.num_workers > self.max_workers:
            raise ValueError(
                f"ExactUSMDWSolver limited to {self.max_workers} workers, "
                f"got {instance.num_workers}")

        start = time.perf_counter()
        deadline = start + self.time_limit
        planner = ExactDPSolver(speed=instance.speed)
        incentive_model = IncentiveModel(
            mu=instance.mu,
            base_rtt_fn=lambda w: planner.base_route(w).route_travel_time)

        tasks = list(instance.sensing_tasks)
        workers = list(instance.workers)

        best_phi = -1.0
        best_assignment: dict[int, list[SensingTask]] = {}
        best_incentives: dict[int, float] = {}
        timed_out = False

        coverage = instance.coverage.new_state()
        state = _SearchState(
            assigned={w.worker_id: [] for w in workers},
            incentives={w.worker_id: 0.0 for w in workers},
            budget_rest=instance.budget,
        )

        def consider_incumbent():
            nonlocal best_phi, best_assignment, best_incentives
            phi = coverage.phi()
            if phi > best_phi:
                best_phi = phi
                best_assignment = {w: list(ts) for w, ts in state.assigned.items()}
                best_incentives = dict(state.incentives)

        def search(index: int):
            nonlocal timed_out
            if timed_out or time.perf_counter() > deadline:
                timed_out = True
                return
            remaining = len(tasks) - index
            if (_coverage_upper_bound(coverage, remaining)
                    <= best_phi + 1e-12):
                return
            if index == len(tasks):
                consider_incumbent()
                return

            task = tasks[index]
            # Branch 1..|W|: assign to each worker in turn.
            for worker in workers:
                worker_id = worker.worker_id
                new_set = state.assigned[worker_id] + [task]
                result = planner.plan(worker, new_set)
                if not result.feasible:
                    continue
                new_incentive = incentive_model.incentive(
                    worker, result.route_travel_time)
                delta = new_incentive - state.incentives[worker_id]
                # The true constraint is sum(in) <= B (Equation 3b); note
                # SMORE's pseudocode uses the strict "delta < B_rest",
                # which the exact solver must not inherit.
                if delta > state.budget_rest + 1e-12:
                    continue
                state.assigned[worker_id].append(task)
                old_incentive = state.incentives[worker_id]
                state.incentives[worker_id] = new_incentive
                state.budget_rest -= delta
                coverage.add(task)
                search(index + 1)
                coverage.remove(task)
                state.budget_rest += delta
                state.incentives[worker_id] = old_incentive
                state.assigned[worker_id].pop()

            # Branch 0: leave the task unassigned.
            search(index + 1)

        search(0)
        consider_incumbent()  # covers the all-unassigned base case

        # Materialise optimal routes for the best assignment.
        routes: dict[int, WorkingRoute] = {}
        incentives: dict[int, float] = {}
        for worker in workers:
            chosen = best_assignment.get(worker.worker_id, [])
            if not chosen:
                continue
            result = planner.plan(worker, chosen)
            routes[worker.worker_id] = result.route
            incentives[worker.worker_id] = best_incentives[worker.worker_id]

        name = self.name if not timed_out else f"{self.name} (time-capped)"
        return Solution(instance, routes, incentives, solver_name=name,
                        wall_time=time.perf_counter() - start)
