"""``repro.baselines`` — the comparison methods of Section V-B.

RN (random), TVPG / TCPG (greedy by task value / task cost), MSA / MSAGI
(multi-start simulated annealing, cold and greedy-initialised) and JDRL
(adapted multi-agent RL dispatcher).
"""

from .base import RouteBuilder
from .exact import ExactUSMDWSolver
from .greedy import TCPGSolver, TVPGSolver
from .jdrl import JDRLSolver
from .msa import MSAConfig, MSAGISolver, MSASolver
from .random_insert import RandomSolver

__all__ = [
    "RouteBuilder",
    "RandomSolver", "TVPGSolver", "TCPGSolver", "ExactUSMDWSolver",
    "MSAConfig", "MSASolver", "MSAGISolver",
    "JDRLSolver",
]
