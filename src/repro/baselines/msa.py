"""MSA / MSAGI — multi-start simulated annealing (paper Section V-B).

Adapted from Lin & Yu's simulated annealing for TOPTW-MV [9].  A solution
is the set of per-worker routes; neighbourhood moves are *insert*, *swap*,
*reverse* and *remove*.  Because USMDW's mandatory visits are
worker-specific, any move that would strand a travel task on another
worker's route (or violate time windows / the budget) is rejected and a new
move is drawn — the paper's "redo a new operation" rule.  Moves are
proposed on a snapshot; Metropolis acceptance replaces the incumbent, and
the best solution ever seen is kept separately.

MSAGI is the same search initialised from TVPG's solution instead of a
random one.

Paper parameters: 3 starting points, initial temperature 3.0, decay 0.9,
3000 iterations per round, stop after 10 rounds without improvement, 1 hour
cap.  :class:`MSAConfig` exposes them; defaults are scaled down so CPU
benchmark runs finish, and scale back up to the paper's values.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from ..core.entities import SensingTask
from ..core.instance import USMDWInstance
from ..core.route import simulate_route
from ..core.solution import Solution
from .base import RouteBuilder
from .greedy import TVPGSolver

__all__ = ["MSAConfig", "MSASolver", "MSAGISolver"]


@dataclass(frozen=True)
class MSAConfig:
    """Annealing schedule; the paper's values in comments."""

    num_starts: int = 2               # paper: 3
    initial_temperature: float = 3.0  # paper: 3.0
    decay: float = 0.9                # paper: 0.9
    iterations_per_round: int = 200   # paper: 3000
    patience_rounds: int = 3          # paper: 10
    time_limit: float = 60.0          # paper: 3600 s
    redo_attempts: int = 4            # re-draws after an illegal move


def _objective(builder: RouteBuilder) -> float:
    return builder.coverage.phi()


# --------------------------------------------------------------------- #
# Neighbourhood moves: each takes a cloned builder, mutates it, and
# returns True when it produced a *legal* neighbour.
# --------------------------------------------------------------------- #
def _move_insert(builder: RouteBuilder, rng: np.random.Generator) -> bool:
    tasks = builder.unassigned_tasks()
    if not tasks:
        return False
    task = tasks[int(rng.integers(0, len(tasks)))]
    worker_ids = list(builder.routes)
    rng.shuffle(worker_ids)
    for worker_id in worker_ids:
        found = builder.feasible_insertion(worker_id, task)
        if found is not None:
            builder.apply(worker_id, task, *found)
            return True
    return False


def _sensing_positions(builder: RouteBuilder) -> list[tuple[int, int]]:
    return [
        (wid, idx) for wid, route in builder.routes.items()
        for idx, task in enumerate(route) if isinstance(task, SensingTask)
    ]


def _refresh_after_edit(builder: RouteBuilder,
                        touched: set[int],
                        incentive_before: float) -> bool:
    """Re-simulate touched routes; False when infeasible or over budget."""
    for wid in touched:
        timing = simulate_route(builder.instance.worker(wid),
                                builder.routes[wid], speed=builder.speed)
        if not timing.feasible:
            return False
        builder.route_rtt[wid] = timing.route_travel_time
    incentive_after = sum(builder.current_incentive(wid)
                          for wid in builder.routes)
    extra = incentive_after - incentive_before
    if extra > builder.budget_rest + 1e-9:
        return False
    builder.budget_rest -= extra
    return True


def _total_incentive(builder: RouteBuilder) -> float:
    return sum(builder.current_incentive(wid) for wid in builder.routes)


def _move_swap(builder: RouteBuilder, rng: np.random.Generator) -> bool:
    placed = _sensing_positions(builder)
    if len(placed) < 2:
        return False
    k1, k2 = rng.choice(len(placed), size=2, replace=False)
    (w1, i1), (w2, i2) = placed[int(k1)], placed[int(k2)]
    before = _total_incentive(builder)
    builder.routes[w1][i1], builder.routes[w2][i2] = (
        builder.routes[w2][i2], builder.routes[w1][i1])
    return _refresh_after_edit(builder, {w1, w2}, before)


def _move_reverse(builder: RouteBuilder, rng: np.random.Generator) -> bool:
    worker_ids = [wid for wid, route in builder.routes.items() if len(route) >= 3]
    if not worker_ids:
        return False
    wid = worker_ids[int(rng.integers(0, len(worker_ids)))]
    route = builder.routes[wid]
    i, j = sorted(int(k) for k in rng.choice(len(route), size=2, replace=False))
    if i == j:
        return False
    before = _total_incentive(builder)
    route[i:j + 1] = reversed(route[i:j + 1])
    return _refresh_after_edit(builder, {wid}, before)


def _move_remove(builder: RouteBuilder, rng: np.random.Generator) -> bool:
    placed = _sensing_positions(builder)
    if not placed:
        return False
    wid, idx = placed[int(rng.integers(0, len(placed)))]
    before = _total_incentive(builder)
    task = builder.routes[wid].pop(idx)
    builder.assigned_ids.discard(task.task_id)
    builder.coverage.remove(task)
    return _refresh_after_edit(builder, {wid}, before)


_MOVES = (_move_insert, _move_insert, _move_swap, _move_reverse, _move_remove)


class MSASolver:
    """Multi-start simulated annealing."""

    name = "MSA"

    def __init__(self, config: MSAConfig | None = None, seed: int = 0,
                 greedy_init: bool = False):
        self.config = config or MSAConfig()
        self.seed = seed
        self.greedy_init = greedy_init

    # ------------------------------------------------------------------ #
    def _initial_builder(self, instance: USMDWInstance,
                         rng: np.random.Generator) -> RouteBuilder:
        builder = RouteBuilder(instance)
        if self.greedy_init:
            greedy = TVPGSolver().solve(instance)
            for worker_id, route in greedy.routes.items():
                for task in route.sensing_tasks:
                    found = builder.feasible_insertion(worker_id, task)
                    if found is not None:
                        builder.apply(worker_id, task, *found)
        else:
            for _ in range(max(4, len(instance.sensing_tasks) // 4)):
                _move_insert(builder, rng)
        return builder

    def _anneal(self, builder: RouteBuilder, rng: np.random.Generator,
                deadline: float) -> RouteBuilder:
        cfg = self.config
        current = builder
        current_value = _objective(current)
        best = current.clone()
        best_value = current_value
        temperature = cfg.initial_temperature
        stale_rounds = 0

        while stale_rounds < cfg.patience_rounds:
            if time.perf_counter() > deadline:
                break
            improved = False
            for _ in range(cfg.iterations_per_round):
                neighbour = None
                for _attempt in range(cfg.redo_attempts):
                    candidate = current.clone()
                    move = _MOVES[int(rng.integers(0, len(_MOVES)))]
                    if move(candidate, rng):
                        neighbour = candidate
                        break
                if neighbour is None:
                    continue
                value = _objective(neighbour)
                delta = value - current_value
                if delta >= 0 or rng.random() < math.exp(delta / max(temperature, 1e-9)):
                    current = neighbour
                    current_value = value
                if current_value > best_value + 1e-12:
                    best = current.clone()
                    best_value = current_value
                    improved = True
            temperature *= cfg.decay
            stale_rounds = 0 if improved else stale_rounds + 1
        return best

    # ------------------------------------------------------------------ #
    def solve(self, instance: USMDWInstance) -> Solution:
        start = time.perf_counter()
        deadline = start + self.config.time_limit
        rng = np.random.default_rng(self.seed)
        best: RouteBuilder | None = None
        best_value = -math.inf
        for _ in range(self.config.num_starts):
            builder = self._initial_builder(instance, rng)
            candidate = self._anneal(builder, rng, deadline)
            value = _objective(candidate)
            if value > best_value:
                best_value = value
                best = candidate
            if time.perf_counter() > deadline:
                break
        assert best is not None
        return best.to_solution(self.name, time.perf_counter() - start)


class MSAGISolver(MSASolver):
    """MSA with TVPG greedy initialisation."""

    name = "MSAGI"

    def __init__(self, config: MSAConfig | None = None, seed: int = 0):
        super().__init__(config=config, seed=seed, greedy_init=True)
