"""TASNet — the Two-stage Assignment Selection Network (paper Section IV).

The policy network behind SMORE's iterative selection.  Three modules,
mirroring Figure 3:

1. **Worker & sensing-task representation** (Section IV-C) — each worker's
   travel information is rasterised onto the region grid (1 = origin,
   2 = destination, 3 = travel task), passed through a convolution + FC,
   then a Transformer encoder fuses information across workers.  Sensing
   tasks (location + time window) go through their own Transformer encoder
   to capture spatio-temporal closeness.
2. **Worker selection** (Section IV-D) — a group state encoder pools
   worker state embeddings (worker embedding concatenated with the mean of
   the worker's assigned-task embeddings) through multi-head attention and
   appends the remaining budget; a pointer decoder with a dot-product
   glimpse then scores each worker, masking workers with no feasible
   candidates.
3. **Sensing task selection** (Section IV-E) — an individual state encoder
   combines the selected worker's enhanced embedding with global context
   (budget, group embedding, mean sensing-task embedding); the
   heuristic-enhanced task decoder appends ``delta_phi`` / ``delta_in`` to
   each candidate key and modulates the pointer logits with the
   coverage-incentive soft mask (Equations 9-11).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from .heuristics import soft_mask

__all__ = ["TASNetConfig", "WorkerEncoder", "SensingTaskEncoder",
           "WorkerSelection", "TaskSelection", "TASNet"]


@dataclass(frozen=True)
class TASNetConfig:
    """Architecture and soft-mask hyper-parameters.

    The paper uses 3 encoder layers with 8 heads and lambda = 0.5; the
    defaults here are CPU-sized but configurable up to the paper's scale.
    """

    d_model: int = 32
    num_heads: int = 4
    num_layers: int = 2
    conv_channels: int = 4
    clip: float = 10.0
    lam: float = 0.5
    #: Disable for the "w/o Soft Mask" ablation (Figure 5).
    use_soft_mask: bool = True
    #: Disable to drop delta_phi/delta_in from the pointer keys — an
    #: extension ablation isolating the decoder's *data fusion* from the
    #: soft mask (both are part of the heuristic enhancement of IV-E).
    use_heuristic_fusion: bool = True

    def __post_init__(self):
        if self.d_model % self.num_heads:
            raise ValueError("d_model must be divisible by num_heads")


class WorkerEncoder(nn.Module):
    """Travel-information grid -> conv + FC -> cross-worker Transformer."""

    def __init__(self, config: TASNetConfig, grid_nx: int, grid_ny: int,
                 rng: np.random.Generator):
        super().__init__()
        d = config.d_model
        self.grid_nx = grid_nx
        self.grid_ny = grid_ny
        self.conv = nn.Conv2D(1, config.conv_channels, kernel_size=3,
                              padding=1, rng=rng)
        self.fc = nn.Linear(config.conv_channels * grid_nx * grid_ny, d, rng=rng)
        self.encoder = nn.TransformerEncoder(d, config.num_heads,
                                             config.num_layers, rng=rng)

    def forward(self, worker_grids: np.ndarray) -> nn.Tensor:
        """``worker_grids``: (n_workers, nx, ny) travel-information matrices."""
        n = worker_grids.shape[0]
        x = nn.Tensor(worker_grids.reshape(n, 1, self.grid_nx, self.grid_ny))
        spatial = nn.ops.relu(self.conv(x))
        flat = nn.ops.reshape(spatial, (n, -1))
        per_worker = self.fc(flat)
        return self.encoder(per_worker)


class SensingTaskEncoder(nn.Module):
    """(x, y, tw_s, tw_e) -> linear embed -> Transformer over all tasks."""

    NUM_FEATURES = 4

    def __init__(self, config: TASNetConfig, rng: np.random.Generator):
        super().__init__()
        d = config.d_model
        self.embed = nn.Linear(self.NUM_FEATURES, d, rng=rng)
        self.encoder = nn.TransformerEncoder(d, config.num_heads,
                                             config.num_layers, rng=rng)

    def forward(self, task_features: np.ndarray) -> nn.Tensor:
        return self.encoder(self.embed(nn.Tensor(task_features)))


class WorkerSelection(nn.Module):
    """Group state encoder + worker decoder (Section IV-D)."""

    def __init__(self, config: TASNetConfig, rng: np.random.Generator):
        super().__init__()
        d = config.d_model
        self.group_mha = nn.MultiHeadAttention(2 * d, config.num_heads, rng=rng)
        self.budget_fc = nn.Linear(1, d, rng=rng)
        self.glimpse_q = nn.Linear(3 * d, 2 * d, bias=False, rng=rng)
        self.pointer = nn.PointerAttention(2 * d, 2 * d, clip=config.clip, rng=rng)

    def forward(self, worker_state_emb: nn.Tensor, budget_norm: float,
                mask: np.ndarray) -> tuple[nn.Tensor, nn.Tensor]:
        """Return (log-probs over workers, group worker embedding h_g).

        ``worker_state_emb``: (n_w, 2d) tensors  w~_j = [mean assigned; w_j].
        ``mask``: True for workers with no feasible candidate.
        """
        # Group state: h_g = MeanPool(MHA({w~})), h_c = [h_g; FC(B)].
        h_g = nn.ops.mean(self.group_mha(worker_state_emb), axis=0)
        budget_emb = self.budget_fc(nn.Tensor(np.array([budget_norm])))
        h_c = nn.ops.concat([h_g, budget_emb])

        # Glimpse: dot-product attention from h_c over worker states,
        # masked so unselectable workers contribute nothing.
        q = self.glimpse_q(h_c)                                     # (2d,)
        scores = nn.ops.matmul(worker_state_emb, q)                 # (n_w,)
        scores = nn.ops.mul(scores, 1.0 / np.sqrt(q.shape[0]))
        scores = nn.ops.masked_fill(scores, mask, -1e9)
        attn = nn.ops.softmax(scores)
        h_c_prime = nn.ops.matmul(attn, worker_state_emb)           # (2d,)

        logits = self.pointer(h_c_prime, worker_state_emb, mask=mask)
        return nn.ops.log_softmax(logits), h_g

    def forward_batch(self, worker_state_emb: nn.Tensor,
                      budget_norm: np.ndarray,
                      mask: np.ndarray,
                      pad_mask: np.ndarray | None = None
                      ) -> tuple[nn.Tensor, nn.Tensor]:
        """Stage-1 forward for K rollouts at once.

        ``worker_state_emb``: (K, n_w, 2d); ``budget_norm``: (K,);
        ``mask``: boolean (K, n_w), True for workers with no feasible
        candidate in that rollout.  Returns ((K, n_w) log-probs, (K, 2d)
        group embeddings).  Every reduction runs along axes whose length
        matches the serial :meth:`forward`, so per-rollout slices
        reproduce the one-episode path.

        ``pad_mask`` marks padded worker slots when rollouts of different
        instances (unequal worker counts) share one batch: the group
        pooling then attends and averages over real workers only, and the
        caller folds the same padding into ``mask`` so padded slots carry
        zero probability.  With ``pad_mask=None`` the path is unchanged.
        """
        batch = worker_state_emb.shape[0]
        if pad_mask is None:
            h_g = nn.ops.mean(self.group_mha(worker_state_emb), axis=1)
        else:
            attended = self.group_mha(worker_state_emb,
                                      key_padding_mask=pad_mask)
            h_g = nn.ops.masked_mean(attended, pad_mask[:, :, None], axis=1)
        budget_emb = self.budget_fc(nn.Tensor(
            np.asarray(budget_norm, dtype=np.float64).reshape(batch, 1)))
        h_c = nn.ops.concat([h_g, budget_emb], axis=1)

        q = self.glimpse_q(h_c)                                     # (K, 2d)
        d_q = q.shape[-1]
        q_col = nn.ops.reshape(q, (batch, d_q, 1))
        scores = nn.ops.reshape(nn.ops.matmul(worker_state_emb, q_col),
                                (batch, -1))                        # (K, n_w)
        scores = nn.ops.mul(scores, 1.0 / np.sqrt(d_q))
        scores = nn.ops.masked_fill(scores, mask, -1e9)
        attn = nn.ops.softmax(scores)
        attn_row = nn.ops.reshape(attn, (batch, 1, -1))
        h_c_prime = nn.ops.reshape(
            nn.ops.matmul(attn_row, worker_state_emb), (batch, -1))  # (K, 2d)

        logits = self.pointer(h_c_prime, worker_state_emb, mask=mask)
        return nn.ops.log_softmax(logits), h_g


class TaskSelection(nn.Module):
    """Individual state encoder + heuristic-enhanced task decoder (IV-E)."""

    def __init__(self, config: TASNetConfig, rng: np.random.Generator):
        super().__init__()
        d = config.d_model
        self.lam = config.lam
        self.use_soft_mask = config.use_soft_mask
        self.use_heuristic_fusion = config.use_heuristic_fusion
        self.assigned_attn = nn.MultiHeadAttention(d, config.num_heads, rng=rng)
        self.budget_fc = nn.Linear(1, d, rng=rng)
        # h_w = [a_j; w_j; FC(B); h_g; s_mean] -> 2d + d + 2d + d = 6d.
        key_in = d + 2 if config.use_heuristic_fusion else d
        self.pointer = nn.PointerAttention(6 * d, key_in, d_key=d,
                                           clip=config.clip, rng=rng)

    def precompute_keys(self, task_emb: nn.Tensor) -> nn.Tensor:
        """Static pointer-key projections of task embeddings, once per
        episode — per-step decoding gathers rows instead of re-projecting
        (see :meth:`~repro.nn.PointerAttention.precompute_keys`)."""
        return self.pointer.precompute_keys(task_emb)

    def forward(self, worker_emb: nn.Tensor, assigned_emb: nn.Tensor | None,
                budget_norm: float, h_g: nn.Tensor, task_mean: nn.Tensor,
                candidate_keys: nn.Tensor, delta_phi: np.ndarray,
                delta_in: np.ndarray) -> nn.Tensor:
        """Return log-probs over the selected worker's candidate tasks.

        ``candidate_keys``: (m, d) pre-projected pointer keys of the
        worker's feasible tasks — rows of :meth:`precompute_keys` output;
        ``delta_phi`` / ``delta_in``: the heuristic signals (m,).
        """
        d = worker_emb.shape[0]
        if assigned_emb is not None and assigned_emb.shape[0] > 0:
            attended = self.assigned_attn(assigned_emb)
            a_j = nn.ops.mean(attended, axis=0)
        else:
            a_j = nn.Tensor(np.zeros(d))
        budget_emb = self.budget_fc(nn.Tensor(np.array([budget_norm])))
        h_w = nn.ops.concat([a_j, worker_emb, budget_emb, h_g, task_mean])

        # Heuristic signals join the pointer keys (data fusion): the
        # trailing rows of w_k project them onto the precomputed part.
        if self.use_heuristic_fusion:
            signals = nn.Tensor(np.stack([delta_phi, delta_in], axis=1))
            logits = self.pointer.forward_precomputed(h_w, candidate_keys,
                                                      extra=signals)
        else:
            logits = self.pointer.forward_precomputed(h_w, candidate_keys)

        # ...and modulate the logits through the soft mask (Equation 11).
        if self.use_soft_mask:
            mask_values = soft_mask(delta_phi, delta_in, lam=self.lam)
            logits = nn.ops.mul(logits, nn.Tensor(mask_values))
        return nn.ops.log_softmax(logits)

    def forward_batch(self, worker_emb: nn.Tensor,
                      assigned_emb: nn.Tensor | None,
                      assigned_mask: np.ndarray | None,
                      budget_norm: np.ndarray, h_g: nn.Tensor,
                      task_mean: nn.Tensor, candidate_keys: nn.Tensor,
                      candidate_mask: np.ndarray, delta_phi: np.ndarray,
                      delta_in: np.ndarray) -> nn.Tensor:
        """Stage-2 forward for K rollouts (each with its chosen worker).

        Shapes: ``worker_emb`` (K, d); ``assigned_emb`` (K, a_max, d) with
        boolean padding mask ``assigned_mask`` (K, a_max), or None when no
        rollout has assignments yet; ``budget_norm`` (K,); ``h_g`` (K, 2d);
        ``task_mean`` (K, d); ``candidate_keys`` (K, m_max, d) gathered
        rows of :meth:`precompute_keys` output, padded per
        ``candidate_mask`` (K, m_max); ``delta_phi`` / ``delta_in``
        (K, m_max) zero-padded.  Returns (K, m_max) log-probs with
        ``NEG_INF`` on padding.

        The soft mask min-max normalises the coverage-incentive ratio
        *within each rollout's real candidates* (Equation 9), so it is
        evaluated row-by-row on the unpadded slices — padding must never
        shift a rollout's normalisation.
        """
        batch, d = worker_emb.shape
        if assigned_emb is not None and assigned_emb.shape[1] > 0:
            attended = self.assigned_attn(assigned_emb,
                                          key_padding_mask=assigned_mask)
            a_j = nn.ops.masked_mean(attended, assigned_mask[:, :, None],
                                     axis=1)
        else:
            a_j = nn.Tensor(np.zeros((batch, d)))
        budget_emb = self.budget_fc(nn.Tensor(
            np.asarray(budget_norm, dtype=np.float64).reshape(batch, 1)))
        h_w = nn.ops.concat([a_j, worker_emb, budget_emb, h_g, task_mean],
                            axis=1)                                  # (K, 6d)

        if self.use_heuristic_fusion:
            signals = nn.Tensor(np.stack([delta_phi, delta_in], axis=2))
            logits = self.pointer.forward_precomputed(
                h_w, candidate_keys, extra=signals)                  # (K, m)
        else:
            logits = self.pointer.forward_precomputed(h_w, candidate_keys)

        if self.use_soft_mask:
            mask_values = np.ones_like(delta_phi)
            for k in range(batch):
                real = ~candidate_mask[k]
                mask_values[k, real] = soft_mask(
                    delta_phi[k, real], delta_in[k, real], lam=self.lam)
            logits = nn.ops.mul(logits, nn.Tensor(mask_values))
        return nn.ops.masked_log_softmax(logits, candidate_mask)


class TASNet(nn.Module):
    """The full two-stage policy network."""

    def __init__(self, config: TASNetConfig, grid_nx: int, grid_ny: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.config = config
        self.worker_encoder = WorkerEncoder(config, grid_nx, grid_ny, rng)
        self.task_encoder = SensingTaskEncoder(config, rng)
        self.worker_selection = WorkerSelection(config, rng)
        self.task_selection = TaskSelection(config, rng)

    # The policy wrapper (repro.smore.policy) drives these submodules —
    # encoding is done once per episode, selection once per step — so
    # TASNet itself exposes no monolithic forward().
    def forward(self, *args, **kwargs):  # pragma: no cover
        raise NotImplementedError(
            "drive TASNet through repro.smore.policy.TASNetPolicy")
