"""Streaming-arrival selection: the dynamic sensing scenario.

The paper's environment is static — every sensing task is on the table
before any worker departs.  :class:`DynamicSelectionEnv` extends it to
streaming arrivals: tasks enter and leave the availability pool at event
epochs of an :class:`~repro.datasets.dynamic.ArrivalSchedule`, workers may
join late, and re-planning at each epoch starts from every worker's
*committed* mid-route state (stops a worker has already departed toward
cannot be re-ordered).

Between epochs the selection dynamics are exactly the static MDP — the
same :meth:`~repro.smore.env.SelectionEnv.step_state`, the same policies,
the same tie-breaking — so a schedule whose tasks all arrive at time zero
reproduces the static solver decision-for-decision.  What changes is the
candidate table's life cycle: instead of being rebuilt from scratch at
every epoch (the ``repair=False`` reference mode), it is *repaired*
incrementally —

* expiries reuse the O(holders) ``remove_task`` path,
* arrivals are swept once per worker as one batched anchored insertion
  call (``add_tasks``),
* an advancing committed position re-sweeps only the entries whose
  recorded insertion position it invalidates (``reanchor_worker``).

Repair is provably row-identical to a fresh anchored rebuild over the
current pool (the property tests sweep both paths across planner
backends), while touching O(changed entries) instead of O(W x S) per
event.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .. import obs
from ..core.entities import Worker
from ..core.instance import USMDWInstance
from ..core.perf import PerfCounters
from ..core.route import WorkingRoute
from ..datasets.dynamic import ArrivalSchedule, TaskArrival
from ..obs.profile import scope as profile_scope
from ..obs.slo import current_slo_tracker
from ..tsptw.base import RoutePlanner
from .candidates import CandidateTable
from .env import SelectionEnv
from .state import AssignmentState, SelectionState

__all__ = ["DynamicSelectionEnv", "DynamicSelectionState", "DynamicResult",
           "run_dynamic_episode"]


@dataclass
class DynamicSelectionState(SelectionState):
    """Static MDP state plus the streaming bookkeeping.

    ``unselected`` (inherited) doubles as the availability pool: its
    insertion order — schedule-initial tasks first, arrivals appended in
    event order — is the pool order every candidate row is a subsequence
    of.  ``locks[w]`` is worker ``w``'s committed route position: the
    number of route stops already departed toward, below which no
    insertion may land.
    """

    now: float = 0.0
    pending_arrivals: list[TaskArrival] = field(default_factory=list)
    pending_workers: list[tuple[float, int]] = field(default_factory=list)
    active_workers: list[int] = field(default_factory=list)
    expiry: dict[int, float] = field(default_factory=dict)
    locks: dict[int, int] = field(default_factory=dict)
    rejected: list[int] = field(default_factory=list)
    arrived: int = 0
    events: int = 0

    @property
    def done(self) -> bool:  # type: ignore[override]
        """Episode over: nothing selectable now and nothing still to come."""
        return (self.candidates.empty and not self.unselected
                and not self.pending_arrivals and not self.pending_workers)


class DynamicSelectionEnv(SelectionEnv):
    """Selection environment over a streaming arrival schedule.

    Parameters
    ----------
    instance:
        The full problem — ``instance.sensing_tasks`` is the universe the
        schedule draws from, so static components (policy statics,
        coverage bins) keep working unchanged.
    schedule:
        When each task enters and leaves the pool.
    repair:
        True (default): maintain the candidate table incrementally at
        each event epoch.  False: rebuild it from scratch per epoch — the
        reference the repair path is verified against, and the slow side
        of the repair-speedup benchmark.
    worker_arrivals:
        Optional ``{worker_id: time}`` for workers who join late; they
        hold no candidates before their arrival epoch.
    """

    def __init__(self, instance: USMDWInstance, planner: RoutePlanner,
                 schedule: ArrivalSchedule, repair: bool = True,
                 worker_arrivals: dict[int, float] | None = None,
                 reuse_candidates: bool = True):
        schedule.validate(instance)
        self.schedule = schedule
        self.repair = repair
        self.worker_arrivals = dict(worker_arrivals or {})
        unknown = [w for w in self.worker_arrivals
                   if not any(x.worker_id == w for x in instance.workers)]
        if unknown:
            raise ValueError(f"worker_arrivals references unknown workers "
                             f"{unknown}")
        super().__init__(instance, planner, reuse_candidates=reuse_candidates)
        self._tasks_by_id = {s.task_id: s for s in instance.sensing_tasks}
        self._base_routes: dict[int, WorkingRoute | None] = {}
        self.events_processed = 0
        self.repair_time = 0.0

    # ------------------------------------------------------------------ #
    def _present_workers(self) -> list[Worker]:
        return [w for w in self.instance.workers
                if self.worker_arrivals.get(w.worker_id, 0.0) <= 0.0]

    def _initial_table(self) -> CandidateTable:
        """Epoch-zero table: present workers x schedule-initial tasks."""
        if self._snapshot is not None and self.reuse_candidates:
            return self._snapshot.copy()
        initial_tasks = [self._tasks_by_id[r.task_id]
                         for r in self.schedule.initial]
        present = self._present_workers()
        with obs.span("init", workers=len(present),
                      tasks=len(initial_tasks)), \
                profile_scope("env.init"):
            table = CandidateTable(self.planner, self.incentives)
            table.initialize(present, initial_tasks, self.instance.budget)
        self.perf.planner_calls += table.planner_calls
        self.perf.init_planner_calls += table.planner_calls
        if self.reuse_candidates:
            self._snapshot = table
            return table.copy()
        return table

    def reset(self) -> DynamicSelectionState:
        start = time.perf_counter()
        initial = self.schedule.initial
        pending_workers = sorted(
            (t, wid) for wid, t in self.worker_arrivals.items() if t > 0.0)
        self.state = DynamicSelectionState(
            candidates=self._initial_table(),
            assignments=AssignmentState(self.instance.workers),
            workers=self.instance.workers,
            budget_rest=self.instance.budget,
            coverage=self.instance.coverage.new_state(),
            unselected={r.task_id: self._tasks_by_id[r.task_id]
                        for r in initial},
            pending_arrivals=list(self.schedule.streamed),
            pending_workers=pending_workers,
            active_workers=[w.worker_id for w in self._present_workers()],
            expiry={r.task_id: r.expiry for r in initial},
            locks={w.worker_id: 0 for w in self.instance.workers},
            arrived=len(initial),
        )
        self.perf.init_time += time.perf_counter() - start
        self.perf.rollouts += 1
        return self.state

    # ------------------------------------------------------------------ #
    def _worker_min_position(self, state: SelectionState,
                             worker_id: int) -> int:
        locks = getattr(state, "locks", None)
        return locks[worker_id] if locks is not None else 0

    def _base_route(self, worker_id: int) -> WorkingRoute | None:
        """The worker's committed route before any assignment (cached);
        None when even the bare trip is infeasible (stranded)."""
        if worker_id not in self._base_routes:
            worker = self.instance.worker(worker_id)
            result = self.planner.base_route(worker)
            self._base_routes[worker_id] = (
                result.route if result.feasible else None)
        return self._base_routes[worker_id]

    def _committed_route(self, state: DynamicSelectionState,
                         worker_id: int) -> WorkingRoute | None:
        slot = state.assignments[worker_id]
        if slot.route is not None:
            return slot.route
        return self._base_route(worker_id)

    def _lock_at(self, state: DynamicSelectionState, worker_id: int,
                 t: float) -> int:
        """Committed position at time ``t``: stops already departed toward.

        The worker departs toward stop 0 at ``timing.departure`` and
        toward stop ``i`` when stop ``i - 1`` finishes; a stop en route
        cannot be preempted, so insertions land at positions >= the lock.
        A worker already bound for their destination gets
        ``len(stops) + 1`` — no open positions at all.
        """
        route = self._committed_route(state, worker_id)
        if route is None:
            return 0  # stranded: the row is empty, the lock is moot
        timing = route.simulate()
        if t < timing.departure:
            return 0
        lock = 1
        for stop in timing.stops:
            if stop.finish <= t:
                lock += 1
        return lock

    # ------------------------------------------------------------------ #
    def _next_event_time(self, state: DynamicSelectionState) -> float | None:
        times = []
        if state.pending_arrivals:
            times.append(state.pending_arrivals[0].arrival)
        if state.pending_workers:
            times.append(state.pending_workers[0][0])
        for task_id in state.unselected:
            expiry = state.expiry[task_id]
            if expiry > state.now:
                times.append(expiry)
        return min(times) if times else None

    def advance(self, state: DynamicSelectionState | None = None) -> bool:
        """Move to the next event epoch; False when no events remain.

        One epoch, in order: (1) expire overdue unselected tasks
        (rejection accounting), (2) admit late workers, (3) advance every
        active worker's committed lock, (4) admit arrivals.  In repair
        mode each sub-step patches the candidate table incrementally; in
        rebuild mode the pool and locks are updated identically and the
        table is then rebuilt from scratch — both orders leave every row
        equal to the anchored sweep over the final pool.
        """
        if state is None:
            state = self._require_state()
            if not isinstance(state, DynamicSelectionState):
                raise TypeError("advance() needs a dynamic state")
        t = self._next_event_time(state)
        if t is None:
            return False
        start = time.perf_counter()
        calls_before = state.candidates.planner_calls
        state.now = t
        state.events += 1
        self.events_processed += 1

        # (1) Expiries: overdue unselected tasks leave the pool for good.
        overdue = [task_id for task_id in state.unselected
                   if state.expiry[task_id] <= t]
        for task_id in overdue:
            del state.unselected[task_id]
            state.candidates.expire_task(task_id)
            state.rejected.append(task_id)

        # (2) Late workers join: base route planned, row built over the
        # current pool (arrivals of this very epoch reach them in (4)).
        joined: list[int] = []
        while state.pending_workers and state.pending_workers[0][0] <= t:
            _, worker_id = state.pending_workers.pop(0)
            state.active_workers.append(worker_id)
            joined.append(worker_id)
            state.locks[worker_id] = self._lock_at(state, worker_id, t)
        if self.repair:
            for worker_id in joined:
                worker = self.instance.worker(worker_id)
                state.candidates.add_worker(
                    worker, list(state.unselected.values()),
                    state.budget_rest,
                    min_position=state.locks[worker_id])
        else:
            for worker_id in joined:
                # Rebuild mode still needs the base travel time on record
                # for the incentive model.
                result = self.planner.base_route(
                    self.instance.worker(worker_id))
                self.incentives.set_base_rtt(
                    self.instance.worker(worker_id),
                    result.route_travel_time)

        # (3) Locks advance with the clock; repair re-sweeps only entries
        # the new anchor invalidates.
        for worker_id in state.active_workers:
            if worker_id in joined:
                continue
            lock = self._lock_at(state, worker_id, t)
            if lock <= state.locks[worker_id]:
                continue
            state.locks[worker_id] = lock
            if self.repair:
                route = self._committed_route(state, worker_id)
                if route is not None:
                    state.candidates.reanchor_worker(
                        self.instance.worker(worker_id), route.tasks,
                        self._tasks_by_id,
                        state.assignments[worker_id].incentive,
                        state.budget_rest, lock)

        # (4) Arrivals enter the pool in event order (appended — pool
        # order stays the row-order convention).
        arrivals = []
        while state.pending_arrivals \
                and state.pending_arrivals[0].arrival <= t:
            record = state.pending_arrivals.pop(0)
            state.arrived += 1
            if record.expiry <= t:
                # Dead on arrival (zero time-to-live): rejected outright.
                state.rejected.append(record.task_id)
                continue
            task = self._tasks_by_id[record.task_id]
            state.unselected[record.task_id] = task
            state.expiry[record.task_id] = record.expiry
            arrivals.append(task)

        if self.repair:
            if arrivals:
                state.candidates.add_tasks(
                    arrivals, self._worker_states(state, stranded=False),
                    state.budget_rest)
        else:
            state.candidates.rebuild(
                self._worker_states(state, stranded=True),
                list(state.unselected.values()), state.budget_rest)

        self.perf.planner_calls += \
            state.candidates.planner_calls - calls_before
        self.repair_time += time.perf_counter() - start
        return True

    def _worker_states(self, state: DynamicSelectionState,
                       stranded: bool) -> list[tuple]:
        """``(worker, route_tasks, incentive, lock)`` per active worker.

        ``stranded=True`` (rebuild) includes workers whose own trip is
        infeasible with ``route_tasks=None`` so their rows exist (empty);
        repair sweeps skip them — their rows hold nothing to patch.
        """
        states = []
        for worker_id in state.active_workers:
            route = self._committed_route(state, worker_id)
            if route is None and not stranded:
                continue
            states.append((
                self.instance.worker(worker_id),
                route.tasks if route is not None else None,
                state.assignments[worker_id].incentive,
                state.locks[worker_id],
            ))
        return states


# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class DynamicResult:
    """Outcome of one dynamic episode (or the best of several samples).

    Every scheduled task is accounted for exactly once: ``selected_ids``
    were committed to routes, ``rejected_ids`` expired unselected (or
    arrived dead).  ``rejection_rate`` is over all tasks that arrived.
    """

    instance: USMDWInstance
    phi: float
    routes: dict[int, WorkingRoute]
    incentives: dict[int, float]
    selected_ids: tuple[int, ...]
    rejected_ids: tuple[int, ...]
    arrived: int
    events: int
    solver_name: str
    wall_time: float
    perf: PerfCounters

    @property
    def rejection_rate(self) -> float:
        return len(self.rejected_ids) / self.arrived if self.arrived else 0.0

    @property
    def total_incentive(self) -> float:
        return sum(self.incentives.values())


def run_dynamic_episode(env: DynamicSelectionEnv, policy,
                        greedy: bool = True, rng=None):
    """Roll one dynamic episode: select until the table drains, advance
    to the next event epoch, repeat; returns (state, total_reward).

    When an SLO tracker is installed (:func:`repro.obs.slo.install`),
    the per-epoch loop feeds it on **simulation time**: every committed
    selection records ``ok`` and every expiry/dead-on-arrival records
    ``rejected`` at the epoch it happened, and each epoch's incremental
    repair cost lands in the latency window (ms) — so the windowed
    rejection rate and repair percentiles track the arrival process, not
    wall clock.  Objective checks run at most once per epoch.  With no
    tracker installed the loop pays one ``None`` test per epoch.
    """
    state = env.reset()
    policy.begin_episode(env.instance)
    total_reward = 0.0
    tracker = current_slo_tracker()
    selected_seen = rejected_seen = 0
    repair_seen = env.repair_time
    while True:
        while not state.candidates.empty:
            action = policy.act(state, greedy=greedy, rng=rng)
            state, reward, _ = env.step_state(
                state, action.worker_id, action.task_id)
            total_reward += reward
        if tracker is not None:
            for _ in range(len(state.selected) - selected_seen):
                tracker.record("ok", now=state.now, check=False)
            selected_seen = len(state.selected)
            for _ in range(len(state.rejected) - rejected_seen):
                tracker.record("rejected", now=state.now, check=False)
            rejected_seen = len(state.rejected)
            if env.repair_time > repair_seen:
                tracker.observe_latency(
                    (env.repair_time - repair_seen) * 1e3, now=state.now)
                repair_seen = env.repair_time
            tracker.maybe_check(state.now)
        if not env.advance(state):
            break
    return state, total_reward
