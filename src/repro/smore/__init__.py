"""``repro.smore`` — the paper's primary contribution.

SMORE (Urban Sensing for Multi-destination Workers via Deep REinforcement
learning) solves USMDW in two steps: candidate assignment initialisation
with a pre-trained TSPTW solver, then reinforcement-learning-based
iterative selection with TASNet, the Two-stage Assignment Selection
Network.

Typical use::

    from repro.smore import SMORESolver, TASNet, TASNetConfig, TASNetPolicy
    from repro.tsptw import InsertionSolver

    net = TASNet(TASNetConfig(), grid_nx=10, grid_ny=12)
    solver = SMORESolver(InsertionSolver(), TASNetPolicy(net))
    solution = solver.solve(instance)
"""

from .batch import (
    BatchAdmissionError,
    BatchedEpisodeRunner,
    BatchFull,
    DeadlineExpired,
    EpisodeResult,
    MultiInstanceRunner,
)
from .candidates import CandidateEntry, CandidateTable
from .critic import CriticNetwork, critic_features
from .dynamic import (
    DynamicResult,
    DynamicSelectionEnv,
    DynamicSelectionState,
    run_dynamic_episode,
)
from .env import SelectionEnv
from .heuristics import coverage_incentive_ratio, soft_mask
from .policy import (
    ActionRecord,
    EpisodeStaticsCache,
    FlatSelectionNet,
    FlatSelectionPolicy,
    TASNetPolicy,
    sensing_task_features,
    worker_travel_grid,
)
from .solver import (
    GreedySelectionRule,
    RatioSelectionRule,
    SMORESolver,
    SolveBatch,
    run_episode,
)
from .state import AssignmentState, SelectionState, WorkerAssignment
from .tasnet import (
    SensingTaskEncoder,
    TASNet,
    TASNetConfig,
    TaskSelection,
    WorkerEncoder,
    WorkerSelection,
)
from .train import TASNetTrainer, TrainingConfig, imitation_pretrain

__all__ = [
    "BatchedEpisodeRunner", "EpisodeResult", "MultiInstanceRunner",
    "BatchAdmissionError", "BatchFull", "DeadlineExpired",
    "CandidateEntry", "CandidateTable",
    "SelectionEnv",
    "DynamicSelectionEnv", "DynamicSelectionState", "DynamicResult",
    "run_dynamic_episode",
    "AssignmentState", "SelectionState", "WorkerAssignment",
    "coverage_incentive_ratio", "soft_mask",
    "TASNet", "TASNetConfig", "WorkerEncoder", "SensingTaskEncoder",
    "WorkerSelection", "TaskSelection",
    "TASNetPolicy", "FlatSelectionNet", "FlatSelectionPolicy", "ActionRecord",
    "EpisodeStaticsCache",
    "worker_travel_grid", "sensing_task_features",
    "CriticNetwork", "critic_features",
    "SMORESolver", "SolveBatch", "GreedySelectionRule", "RatioSelectionRule",
    "run_episode",
    "TASNetTrainer", "TrainingConfig", "imitation_pretrain",
]
