"""Critic baseline for REINFORCE (paper Section IV-F).

The paper reports that a critic baseline trains more efficiently than
self-critic rollout baselines.  Our critic is a small MLP over instance
summary statistics — a deliberately lightweight state-value estimate
``b(s)`` of the achievable data coverage given the initial state: problem
sizes, budget, worker slack, and candidate availability.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..core.instance import USMDWInstance
from .state import SelectionState

__all__ = ["CriticNetwork", "critic_features"]

NUM_CRITIC_FEATURES = 8


def critic_features(instance: USMDWInstance, state: SelectionState) -> np.ndarray:
    """Summary features of the initial selection state.

    Scale-free where possible so one critic generalises across instances
    of the same dataset family.
    """
    workers = instance.workers
    num_workers = len(workers)
    num_tasks = max(len(instance.sensing_tasks), 1)
    mean_travel = float(np.mean([w.num_travel_tasks for w in workers]))
    mean_budget_time = float(np.mean([w.time_budget for w in workers]))
    num_pairs = state.candidates.num_pairs()
    num_candidate_tasks = state.candidates.num_candidate_tasks()
    return np.array([
        num_workers / 32.0,
        num_tasks / 512.0,
        instance.budget / 1000.0,
        mean_travel / 32.0,
        mean_budget_time / max(instance.coverage.time_span, 1e-9),
        num_pairs / (num_workers * num_tasks),
        num_candidate_tasks / num_tasks,
        instance.coverage.alpha,
    ])


class CriticNetwork(nn.Module):
    """MLP state-value estimator ``b(s)``."""

    def __init__(self, hidden: int = 32, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.mlp = nn.MLP([NUM_CRITIC_FEATURES, hidden, hidden, 1], rng=rng)

    def forward(self, features: np.ndarray) -> nn.Tensor:
        """Scalar value estimate for a single feature vector."""
        out = self.mlp(nn.Tensor(features.reshape(1, -1)))
        return nn.ops.reshape(out, (1,))[0]

    def value_from_features(self, features: np.ndarray) -> nn.Tensor:
        return self(features)

    def values(self, features_batch: np.ndarray) -> nn.Tensor:
        """Value estimates for a batch of feature vectors, shape ``(B,)``.

        One MLP forward serves a whole REINFORCE batch — both the
        baselines (detached) and the critic regression loss read from
        this single graph.
        """
        batch = np.asarray(features_batch, dtype=float)
        out = self.mlp(nn.Tensor(batch))
        return nn.ops.reshape(out, (batch.shape[0],))

    def value(self, instance: USMDWInstance, state: SelectionState) -> nn.Tensor:
        return self(critic_features(instance, state))
