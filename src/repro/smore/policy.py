"""Policy wrappers that drive TASNet over the selection MDP.

:class:`TASNetPolicy` featurises a :class:`~repro.smore.state.SelectionState`
and runs the two-stage decision (worker then task); the static worker and
sensing-task embeddings are computed once per episode and reused across
steps — gradients still flow through every use during training.

:class:`FlatSelectionPolicy` implements the "w/o TASNet" ablation of
Figure 5: a single-stage pointer that scores all feasible (worker, task)
pairs at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..core.instance import USMDWInstance
from .state import SelectionState
from .tasnet import TASNet, TASNetConfig

__all__ = ["ActionRecord", "TASNetPolicy", "FlatSelectionNet",
           "FlatSelectionPolicy", "worker_travel_grid", "sensing_task_features"]


def worker_travel_grid(instance: USMDWInstance, worker) -> np.ndarray:
    """Travel-information matrix of Section IV-C (normalised to [0, 1]).

    Grid cells get 1 / 2 / 3 for origin / destination / travel tasks;
    travel tasks overwrite endpoints on collision, matching the paper's
    priority ordering of the assignment statement.
    """
    grid = instance.coverage.grid
    matrix = np.zeros((grid.nx, grid.ny))
    oi, oj = grid.cell_of(worker.origin)
    matrix[oi, oj] = 1.0
    di, dj = grid.cell_of(worker.destination)
    matrix[di, dj] = 2.0
    for task in worker.travel_tasks:
        ti, tj = grid.cell_of(task.location)
        matrix[ti, tj] = 3.0
    return matrix / 3.0


def sensing_task_features(instance: USMDWInstance) -> np.ndarray:
    """Per-task (x, y, tw_start, tw_end), normalised by region / time span."""
    region = instance.coverage.grid.region
    span = instance.coverage.time_span
    rows = [
        [task.location.x / region.width, task.location.y / region.height,
         task.tw_start / span, task.tw_end / span]
        for task in instance.sensing_tasks
    ]
    return np.asarray(rows).reshape(len(instance.sensing_tasks), 4)


@dataclass
class ActionRecord:
    """One decision: the pair picked and its log-probability tensor."""

    worker_id: int
    task_id: int
    log_prob: nn.Tensor


def _choose(log_probs: nn.Tensor, greedy: bool,
            rng: np.random.Generator | None) -> int:
    probs = np.exp(log_probs.data)
    if greedy:
        return int(np.argmax(probs))
    if rng is None:
        # A silently created fresh generator here would make sampled
        # rollouts irreproducible; the caller must own the randomness.
        raise ValueError(
            "sampled decoding (greedy=False) requires an explicit rng; "
            "pass rng=np.random.default_rng(seed)")
    probs = probs / probs.sum()
    return int(rng.choice(len(probs), p=probs))


class TASNetPolicy:
    """Featurisation + two-stage decoding for one episode at a time."""

    def __init__(self, net: TASNet):
        self.net = net
        self._instance: USMDWInstance | None = None
        self._worker_emb: nn.Tensor | None = None
        self._task_emb: nn.Tensor | None = None
        self._task_mean: nn.Tensor | None = None
        self._worker_ids: list[int] = []
        self._task_index: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    def begin_episode(self, instance: USMDWInstance) -> None:
        """Encode the static parts of the state (workers, sensing tasks)."""
        self._instance = instance
        grids = np.stack([worker_travel_grid(instance, w) for w in instance.workers])
        self._worker_emb = self.net.worker_encoder(grids)
        self._task_emb = self.net.task_encoder(sensing_task_features(instance))
        self._task_mean = nn.ops.mean(self._task_emb, axis=0)
        self._worker_ids = [w.worker_id for w in instance.workers]
        self._task_index = {s.task_id: i for i, s in enumerate(instance.sensing_tasks)}

    def _require_episode(self) -> USMDWInstance:
        if self._instance is None:
            raise RuntimeError("call begin_episode(instance) first")
        return self._instance

    # ------------------------------------------------------------------ #
    def _assigned_embedding_mean(self, assigned) -> nn.Tensor:
        d = self.net.config.d_model
        if not assigned:
            return nn.Tensor(np.zeros(d))
        indices = np.array([self._task_index[t.task_id] for t in assigned])
        return nn.ops.mean(nn.ops.gather_rows(self._task_emb, indices), axis=0)

    def _worker_state_embeddings(self, state: SelectionState) -> nn.Tensor:
        rows = []
        for idx, worker_id in enumerate(self._worker_ids):
            assigned = state.assignments[worker_id].assigned
            mean_assigned = self._assigned_embedding_mean(assigned)
            rows.append(nn.ops.concat([mean_assigned, self._worker_emb[idx]]))
        return nn.ops.stack(rows)

    # ------------------------------------------------------------------ #
    def _worker_stage(self, state: SelectionState,
                      budget_norm: float) -> tuple[nn.Tensor, nn.Tensor]:
        """Stage 1 forward pass: (log-probs over workers, h_g)."""
        worker_states = self._worker_state_embeddings(state)
        feasible = set(state.feasible_worker_ids())
        mask = np.array([w not in feasible for w in self._worker_ids])
        if mask.all():
            raise RuntimeError("no worker has feasible candidates")
        return self.net.worker_selection(worker_states, budget_norm, mask)

    def _task_stage(self, state: SelectionState, worker_id: int,
                    worker_idx: int, budget_norm: float,
                    h_g: nn.Tensor) -> tuple[nn.Tensor, list[int]]:
        """Stage 2 forward pass for one worker: (log-probs, task id order)."""
        instance = self._require_episode()
        candidates = state.candidates.worker_candidates(worker_id)
        task_ids = sorted(candidates)
        delta_in = np.array([candidates[t].delta_incentive for t in task_ids])
        delta_phi = np.array([
            state.coverage.gain(instance.sensing_task(t)) for t in task_ids])
        cand_indices = np.array([self._task_index[t] for t in task_ids])
        candidate_emb = nn.ops.gather_rows(self._task_emb, cand_indices)
        assigned = state.assignments[worker_id].assigned
        assigned_emb = None
        if assigned:
            idx = np.array([self._task_index[t.task_id] for t in assigned])
            assigned_emb = nn.ops.gather_rows(self._task_emb, idx)
        task_logp = self.net.task_selection(
            self._worker_emb[worker_idx], assigned_emb, budget_norm, h_g,
            self._task_mean, candidate_emb, delta_phi, delta_in)
        return task_logp, task_ids

    def act(self, state: SelectionState, greedy: bool = True,
            rng: np.random.Generator | None = None) -> ActionRecord:
        """Run both selection stages on the current state."""
        instance = self._require_episode()
        budget_norm = state.budget_rest / max(instance.budget, 1e-9)

        worker_logp, h_g = self._worker_stage(state, budget_norm)
        worker_idx = _choose(worker_logp, greedy, rng)
        worker_id = self._worker_ids[worker_idx]

        task_logp, task_ids = self._task_stage(
            state, worker_id, worker_idx, budget_norm, h_g)
        task_idx = _choose(task_logp, greedy, rng)

        log_prob = worker_logp[worker_idx] + task_logp[task_idx]
        return ActionRecord(worker_id, task_ids[task_idx], log_prob)

    def log_prob_of(self, state: SelectionState, worker_id: int,
                    task_id: int) -> nn.Tensor:
        """Log-probability the policy assigns to a given (worker, task) pair.

        Used by imitation pretraining to evaluate teacher actions.
        """
        instance = self._require_episode()
        budget_norm = state.budget_rest / max(instance.budget, 1e-9)
        worker_logp, h_g = self._worker_stage(state, budget_norm)
        worker_idx = self._worker_ids.index(worker_id)
        task_logp, task_ids = self._task_stage(
            state, worker_id, worker_idx, budget_norm, h_g)
        task_idx = task_ids.index(task_id)
        return worker_logp[worker_idx] + task_logp[task_idx]

    # ------------------------------------------------------------------ #
    def parameters(self):
        return self.net.parameters()


class FlatSelectionNet(nn.Module):
    """Single-stage scorer for the "w/o TASNet" ablation.

    Every feasible (worker, task) pair is embedded as ``[w_j; s_i]`` and
    scored by one pointer over the flat candidate list — the strategy
    Section IV-B argues is hard to learn because of the |W| x |S| action
    space and which, per the ablation's definition, has neither the
    two-stage decomposition nor TASNet's heuristic-signal fusion.
    """

    def __init__(self, config: TASNetConfig, grid_nx: int, grid_ny: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        from .tasnet import SensingTaskEncoder, WorkerEncoder

        rng = rng or np.random.default_rng()
        self.config = config
        d = config.d_model
        self.worker_encoder = WorkerEncoder(config, grid_nx, grid_ny, rng)
        self.task_encoder = SensingTaskEncoder(config, rng)
        self.budget_fc = nn.Linear(1, d, rng=rng)
        self.pointer = nn.PointerAttention(d, 2 * d, d_key=d,
                                           clip=config.clip, rng=rng)


class FlatSelectionPolicy:
    """Episode driver for :class:`FlatSelectionNet`."""

    def __init__(self, net: FlatSelectionNet):
        self.net = net
        self._instance: USMDWInstance | None = None
        self._worker_emb: nn.Tensor | None = None
        self._task_emb: nn.Tensor | None = None
        self._worker_pos: dict[int, int] = {}
        self._task_index: dict[int, int] = {}

    def begin_episode(self, instance: USMDWInstance) -> None:
        self._instance = instance
        grids = np.stack([worker_travel_grid(instance, w) for w in instance.workers])
        self._worker_emb = self.net.worker_encoder(grids)
        self._task_emb = self.net.task_encoder(sensing_task_features(instance))
        self._worker_pos = {w.worker_id: i for i, w in enumerate(instance.workers)}
        self._task_index = {s.task_id: i for i, s in enumerate(instance.sensing_tasks)}

    def _pair_log_probs(self, state: SelectionState
                        ) -> tuple[nn.Tensor, list[tuple[int, int]]]:
        instance = self._instance
        if instance is None:
            raise RuntimeError("call begin_episode(instance) first")
        budget_norm = state.budget_rest / max(instance.budget, 1e-9)

        pairs: list[tuple[int, int]] = []
        key_rows = []
        for worker_id in state.candidates.workers_with_candidates():
            w_idx = self._worker_pos[worker_id]
            for task_id in sorted(
                    state.candidates.worker_candidates(worker_id)):
                t_idx = self._task_index[task_id]
                key_rows.append(nn.ops.concat(
                    [self._worker_emb[w_idx], self._task_emb[t_idx]]))
                pairs.append((worker_id, task_id))
        keys = nn.ops.stack(key_rows)
        query = self.net.budget_fc(nn.Tensor(np.array([budget_norm])))
        return nn.ops.log_softmax(self.net.pointer(query, keys)), pairs

    def act(self, state: SelectionState, greedy: bool = True,
            rng: np.random.Generator | None = None) -> ActionRecord:
        log_probs, pairs = self._pair_log_probs(state)
        choice = _choose(log_probs, greedy, rng)
        worker_id, task_id = pairs[choice]
        return ActionRecord(worker_id, task_id, log_probs[choice])

    def log_prob_of(self, state: SelectionState, worker_id: int,
                    task_id: int) -> nn.Tensor:
        log_probs, pairs = self._pair_log_probs(state)
        return log_probs[pairs.index((worker_id, task_id))]

    def parameters(self):
        return self.net.parameters()
