"""Policy wrappers that drive TASNet over the selection MDP.

:class:`TASNetPolicy` featurises a :class:`~repro.smore.state.SelectionState`
and runs the two-stage decision (worker then task); the static worker and
sensing-task embeddings are computed once per episode and reused across
steps — gradients still flow through every use during training.

:class:`FlatSelectionPolicy` implements the "w/o TASNet" ablation of
Figure 5: a single-stage pointer that scores all feasible (worker, task)
pairs at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..core.instance import USMDWInstance
from .state import SelectionState
from .tasnet import TASNet, TASNetConfig

__all__ = ["ActionRecord", "TASNetPolicy", "FlatSelectionNet",
           "FlatSelectionPolicy", "worker_travel_grid", "sensing_task_features"]


def worker_travel_grid(instance: USMDWInstance, worker) -> np.ndarray:
    """Travel-information matrix of Section IV-C (normalised to [0, 1]).

    Grid cells get 1 / 2 / 3 for origin / destination / travel tasks;
    travel tasks overwrite endpoints on collision, matching the paper's
    priority ordering of the assignment statement.
    """
    grid = instance.coverage.grid
    matrix = np.zeros((grid.nx, grid.ny))
    oi, oj = grid.cell_of(worker.origin)
    matrix[oi, oj] = 1.0
    di, dj = grid.cell_of(worker.destination)
    matrix[di, dj] = 2.0
    for task in worker.travel_tasks:
        ti, tj = grid.cell_of(task.location)
        matrix[ti, tj] = 3.0
    return matrix / 3.0


def sensing_task_features(instance: USMDWInstance) -> np.ndarray:
    """Per-task (x, y, tw_start, tw_end), normalised by region / time span."""
    region = instance.coverage.grid.region
    span = instance.coverage.time_span
    rows = [
        [task.location.x / region.width, task.location.y / region.height,
         task.tw_start / span, task.tw_end / span]
        for task in instance.sensing_tasks
    ]
    return np.asarray(rows).reshape(len(instance.sensing_tasks), 4)


@dataclass
class ActionRecord:
    """One decision: the pair picked and its log-probability tensor."""

    worker_id: int
    task_id: int
    log_prob: nn.Tensor


def _choose(log_probs, greedy: bool,
            rng: np.random.Generator | None) -> int:
    """Argmax / sample an index from log-probs (Tensor or ndarray)."""
    data = log_probs.data if isinstance(log_probs, nn.Tensor) \
        else np.asarray(log_probs)
    probs = np.exp(data)
    if greedy:
        return int(np.argmax(probs))
    if rng is None:
        # A silently created fresh generator here would make sampled
        # rollouts irreproducible; the caller must own the randomness.
        raise ValueError(
            "sampled decoding (greedy=False) requires an explicit rng; "
            "pass rng=np.random.default_rng(seed)")
    probs = probs / probs.sum()
    return int(rng.choice(len(probs), p=probs))


class TASNetPolicy:
    """Featurisation + two-stage decoding over the selection MDP.

    Drives one episode at a time through :meth:`act`, or K rollouts of the
    same instance in lock-step through :meth:`act_batch` — one batched
    two-stage forward per decoding step, sharing the static encoder
    embeddings computed once in :meth:`begin_episode` across the whole
    batch (see :class:`repro.smore.batch.BatchedEpisodeRunner`).
    """

    def __init__(self, net: TASNet):
        self.net = net
        self._instance: USMDWInstance | None = None
        self._worker_emb: nn.Tensor | None = None
        self._task_emb: nn.Tensor | None = None
        self._task_mean: nn.Tensor | None = None
        self._worker_ids: list[int] = []
        self._task_index: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    def begin_episode(self, instance: USMDWInstance) -> None:
        """Encode the static parts of the state (workers, sensing tasks)."""
        self._instance = instance
        grids = np.stack([worker_travel_grid(instance, w) for w in instance.workers])
        self._worker_emb = self.net.worker_encoder(grids)
        self._task_emb = self.net.task_encoder(sensing_task_features(instance))
        self._task_mean = nn.ops.mean(self._task_emb, axis=0)
        self._worker_ids = [w.worker_id for w in instance.workers]
        self._task_index = {s.task_id: i for i, s in enumerate(instance.sensing_tasks)}

    def _require_episode(self) -> USMDWInstance:
        if self._instance is None:
            raise RuntimeError("call begin_episode(instance) first")
        return self._instance

    # ------------------------------------------------------------------ #
    def _assigned_embedding_mean(self, assigned) -> nn.Tensor:
        d = self.net.config.d_model
        if not assigned:
            return nn.Tensor(np.zeros(d))
        indices = np.array([self._task_index[t.task_id] for t in assigned])
        return nn.ops.mean(nn.ops.gather_rows(self._task_emb, indices), axis=0)

    def _worker_state_embeddings(self, state: SelectionState) -> nn.Tensor:
        rows = []
        for idx, worker_id in enumerate(self._worker_ids):
            assigned = state.assignments[worker_id].assigned
            mean_assigned = self._assigned_embedding_mean(assigned)
            rows.append(nn.ops.concat([mean_assigned, self._worker_emb[idx]]))
        return nn.ops.stack(rows)

    # ------------------------------------------------------------------ #
    def _worker_stage(self, state: SelectionState,
                      budget_norm: float) -> tuple[nn.Tensor, nn.Tensor]:
        """Stage 1 forward pass: (log-probs over workers, h_g)."""
        worker_states = self._worker_state_embeddings(state)
        feasible = set(state.feasible_worker_ids())
        mask = np.array([w not in feasible for w in self._worker_ids])
        if mask.all():
            raise RuntimeError("no worker has feasible candidates")
        return self.net.worker_selection(worker_states, budget_norm, mask)

    def _task_stage(self, state: SelectionState, worker_id: int,
                    worker_idx: int, budget_norm: float,
                    h_g: nn.Tensor) -> tuple[nn.Tensor, list[int]]:
        """Stage 2 forward pass for one worker: (log-probs, task id order)."""
        instance = self._require_episode()
        candidates = state.candidates.worker_candidates(worker_id)
        task_ids = sorted(candidates)
        delta_in = np.array([candidates[t].delta_incentive for t in task_ids])
        delta_phi = np.array([
            state.coverage.gain(instance.sensing_task(t)) for t in task_ids])
        cand_indices = np.array([self._task_index[t] for t in task_ids])
        candidate_emb = nn.ops.gather_rows(self._task_emb, cand_indices)
        assigned = state.assignments[worker_id].assigned
        assigned_emb = None
        if assigned:
            idx = np.array([self._task_index[t.task_id] for t in assigned])
            assigned_emb = nn.ops.gather_rows(self._task_emb, idx)
        task_logp = self.net.task_selection(
            self._worker_emb[worker_idx], assigned_emb, budget_norm, h_g,
            self._task_mean, candidate_emb, delta_phi, delta_in)
        return task_logp, task_ids

    def act(self, state: SelectionState, greedy: bool = True,
            rng: np.random.Generator | None = None) -> ActionRecord:
        """Run both selection stages on the current state."""
        instance = self._require_episode()
        budget_norm = state.budget_rest / max(instance.budget, 1e-9)

        worker_logp, h_g = self._worker_stage(state, budget_norm)
        worker_idx = _choose(worker_logp, greedy, rng)
        worker_id = self._worker_ids[worker_idx]

        task_logp, task_ids = self._task_stage(
            state, worker_id, worker_idx, budget_norm, h_g)
        task_idx = _choose(task_logp, greedy, rng)

        log_prob = worker_logp[worker_idx] + task_logp[task_idx]
        return ActionRecord(worker_id, task_ids[task_idx], log_prob)

    def log_prob_of(self, state: SelectionState, worker_id: int,
                    task_id: int) -> nn.Tensor:
        """Log-probability the policy assigns to a given (worker, task) pair.

        Used by imitation pretraining to evaluate teacher actions.
        """
        instance = self._require_episode()
        budget_norm = state.budget_rest / max(instance.budget, 1e-9)
        worker_logp, h_g = self._worker_stage(state, budget_norm)
        worker_idx = self._worker_ids.index(worker_id)
        task_logp, task_ids = self._task_stage(
            state, worker_id, worker_idx, budget_norm, h_g)
        task_idx = task_ids.index(task_id)
        return worker_logp[worker_idx] + task_logp[task_idx]

    # ------------------------------------------------------------------ #
    # Batched decoding: K rollouts of one instance per forward pass.
    # ------------------------------------------------------------------ #
    def _worker_state_embeddings_batch(self, states) -> nn.Tensor:
        """Worker-state embeddings for K rollouts: (K, n_w, 2d)."""
        num_states, n_w = len(states), len(self._worker_ids)
        d = self.net.config.d_model
        rows: list[list[int]] = []
        for state in states:
            for worker_id in self._worker_ids:
                rows.append([self._task_index[t.task_id]
                             for t in state.assignments[worker_id].assigned])
        a_max = max(len(row) for row in rows)
        if a_max == 0:
            mean_assigned = nn.Tensor(np.zeros((num_states, n_w, d)))
        else:
            idx = np.zeros((num_states * n_w, a_max), dtype=np.intp)
            mask = np.ones((num_states * n_w, a_max), dtype=bool)
            for i, row in enumerate(rows):
                idx[i, :len(row)] = row
                mask[i, :len(row)] = False
            gathered = nn.ops.gather_rows(
                self._task_emb, idx.reshape(num_states, n_w, a_max))
            mean_assigned = nn.ops.masked_mean(
                gathered, mask.reshape(num_states, n_w, a_max, 1), axis=2)
        worker_emb = nn.ops.broadcast_to(self._worker_emb,
                                         (num_states, n_w, d))
        return nn.ops.concat([mean_assigned, worker_emb], axis=2)

    def _worker_stage_batch(self, states, budget_norms: np.ndarray
                            ) -> tuple[nn.Tensor, nn.Tensor]:
        """Batched stage 1: ((K, n_w) log-probs, (K, 2d) group embeddings)."""
        worker_states = self._worker_state_embeddings_batch(states)
        mask = np.empty((len(states), len(self._worker_ids)), dtype=bool)
        for k, state in enumerate(states):
            feasible = set(state.feasible_worker_ids())
            mask[k] = [w not in feasible for w in self._worker_ids]
            if mask[k].all():
                raise RuntimeError("no worker has feasible candidates")
        return self.net.worker_selection.forward_batch(
            worker_states, budget_norms, mask)

    def _task_stage_batch(self, states, worker_ids, worker_idxs,
                          budget_norms: np.ndarray, h_g: nn.Tensor
                          ) -> tuple[nn.Tensor, list[list[int]]]:
        """Batched stage 2: ((K, m_max) padded log-probs, task-id orders)."""
        instance = self._require_episode()
        num_states = len(states)
        task_id_lists: list[list[int]] = []
        delta_in_rows, delta_phi_rows = [], []
        cand_rows: list[list[int]] = []
        assigned_rows: list[list[int]] = []
        for state, worker_id in zip(states, worker_ids):
            candidates = state.candidates.worker_candidates(worker_id)
            task_ids = sorted(candidates)
            task_id_lists.append(task_ids)
            delta_in_rows.append(np.array(
                [candidates[t].delta_incentive for t in task_ids]))
            delta_phi_rows.append(np.array(
                [state.coverage.gain(instance.sensing_task(t))
                 for t in task_ids]))
            cand_rows.append([self._task_index[t] for t in task_ids])
            assigned_rows.append(
                [self._task_index[t.task_id]
                 for t in state.assignments[worker_id].assigned])

        delta_phi, cand_mask = nn.ops.pad_stack(delta_phi_rows)
        delta_in, _ = nn.ops.pad_stack(delta_in_rows)
        m_max = delta_phi.shape[1]
        cand_idx = np.zeros((num_states, m_max), dtype=np.intp)
        for k, row in enumerate(cand_rows):
            cand_idx[k, :len(row)] = row
        candidate_emb = nn.ops.gather_rows(self._task_emb, cand_idx)

        a_max = max(len(row) for row in assigned_rows)
        assigned_emb, assigned_mask = None, None
        if a_max:
            a_idx = np.zeros((num_states, a_max), dtype=np.intp)
            assigned_mask = np.ones((num_states, a_max), dtype=bool)
            for k, row in enumerate(assigned_rows):
                a_idx[k, :len(row)] = row
                assigned_mask[k, :len(row)] = False
            assigned_emb = nn.ops.gather_rows(self._task_emb, a_idx)

        worker_emb = nn.ops.gather_rows(self._worker_emb,
                                        np.asarray(worker_idxs, dtype=np.intp))
        task_mean = nn.ops.broadcast_to(
            self._task_mean, (num_states, self._task_mean.shape[0]))
        task_logp = self.net.task_selection.forward_batch(
            worker_emb, assigned_emb, assigned_mask, budget_norms, h_g,
            task_mean, candidate_emb, cand_mask, delta_phi, delta_in)
        return task_logp, task_id_lists

    def act_batch(self, states, greedy=True, rngs=None) -> list[ActionRecord]:
        """Decode one action for each of K concurrent rollouts.

        ``states`` are live :class:`SelectionState` objects over the
        instance passed to :meth:`begin_episode`.  ``greedy`` is one bool
        for the whole batch or a per-rollout sequence; ``rngs`` supplies
        each sampled rollout's own generator, consumed in the same
        worker-then-task order as the serial :meth:`act`, so a rollout's
        random stream is independent of its batch companions.
        """
        states = list(states)
        if not states:
            return []
        instance = self._require_episode()
        num_states = len(states)
        greedy_flags = [greedy] * num_states if isinstance(greedy, bool) \
            else list(greedy)
        rng_list = [None] * num_states if rngs is None else list(rngs)
        budget_norms = np.array(
            [s.budget_rest / max(instance.budget, 1e-9) for s in states])

        worker_logp, h_g = self._worker_stage_batch(states, budget_norms)
        worker_idxs = [
            _choose(worker_logp.data[k], greedy_flags[k], rng_list[k])
            for k in range(num_states)]
        worker_ids = [self._worker_ids[i] for i in worker_idxs]

        task_logp, task_id_lists = self._task_stage_batch(
            states, worker_ids, worker_idxs, budget_norms, h_g)

        records = []
        for k in range(num_states):
            task_ids = task_id_lists[k]
            task_idx = _choose(task_logp.data[k, :len(task_ids)],
                               greedy_flags[k], rng_list[k])
            log_prob = worker_logp[k, worker_idxs[k]] + task_logp[k, task_idx]
            records.append(
                ActionRecord(worker_ids[k], task_ids[task_idx], log_prob))
        return records

    # ------------------------------------------------------------------ #
    def parameters(self):
        return self.net.parameters()


class FlatSelectionNet(nn.Module):
    """Single-stage scorer for the "w/o TASNet" ablation.

    Every feasible (worker, task) pair is embedded as ``[w_j; s_i]`` and
    scored by one pointer over the flat candidate list — the strategy
    Section IV-B argues is hard to learn because of the |W| x |S| action
    space and which, per the ablation's definition, has neither the
    two-stage decomposition nor TASNet's heuristic-signal fusion.
    """

    def __init__(self, config: TASNetConfig, grid_nx: int, grid_ny: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        from .tasnet import SensingTaskEncoder, WorkerEncoder

        rng = rng or np.random.default_rng()
        self.config = config
        d = config.d_model
        self.worker_encoder = WorkerEncoder(config, grid_nx, grid_ny, rng)
        self.task_encoder = SensingTaskEncoder(config, rng)
        self.budget_fc = nn.Linear(1, d, rng=rng)
        self.pointer = nn.PointerAttention(d, 2 * d, d_key=d,
                                           clip=config.clip, rng=rng)


class FlatSelectionPolicy:
    """Episode driver for :class:`FlatSelectionNet`."""

    def __init__(self, net: FlatSelectionNet):
        self.net = net
        self._instance: USMDWInstance | None = None
        self._worker_emb: nn.Tensor | None = None
        self._task_emb: nn.Tensor | None = None
        self._worker_pos: dict[int, int] = {}
        self._task_index: dict[int, int] = {}

    def begin_episode(self, instance: USMDWInstance) -> None:
        self._instance = instance
        grids = np.stack([worker_travel_grid(instance, w) for w in instance.workers])
        self._worker_emb = self.net.worker_encoder(grids)
        self._task_emb = self.net.task_encoder(sensing_task_features(instance))
        self._worker_pos = {w.worker_id: i for i, w in enumerate(instance.workers)}
        self._task_index = {s.task_id: i for i, s in enumerate(instance.sensing_tasks)}

    def _pair_log_probs(self, state: SelectionState
                        ) -> tuple[nn.Tensor, list[tuple[int, int]]]:
        instance = self._instance
        if instance is None:
            raise RuntimeError("call begin_episode(instance) first")
        budget_norm = state.budget_rest / max(instance.budget, 1e-9)

        pairs: list[tuple[int, int]] = []
        key_rows = []
        for worker_id in state.candidates.workers_with_candidates():
            w_idx = self._worker_pos[worker_id]
            for task_id in sorted(
                    state.candidates.worker_candidates(worker_id)):
                t_idx = self._task_index[task_id]
                key_rows.append(nn.ops.concat(
                    [self._worker_emb[w_idx], self._task_emb[t_idx]]))
                pairs.append((worker_id, task_id))
        keys = nn.ops.stack(key_rows)
        query = self.net.budget_fc(nn.Tensor(np.array([budget_norm])))
        return nn.ops.log_softmax(self.net.pointer(query, keys)), pairs

    def act(self, state: SelectionState, greedy: bool = True,
            rng: np.random.Generator | None = None) -> ActionRecord:
        log_probs, pairs = self._pair_log_probs(state)
        choice = _choose(log_probs, greedy, rng)
        worker_id, task_id = pairs[choice]
        return ActionRecord(worker_id, task_id, log_probs[choice])

    def log_prob_of(self, state: SelectionState, worker_id: int,
                    task_id: int) -> nn.Tensor:
        log_probs, pairs = self._pair_log_probs(state)
        return log_probs[pairs.index((worker_id, task_id))]

    def parameters(self):
        return self.net.parameters()
