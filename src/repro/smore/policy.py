"""Policy wrappers that drive TASNet over the selection MDP.

:class:`TASNetPolicy` featurises a :class:`~repro.smore.state.SelectionState`
and runs the two-stage decision (worker then task); the static worker and
sensing-task embeddings are computed once per episode and reused across
steps — gradients still flow through every use during training.

:class:`FlatSelectionPolicy` implements the "w/o TASNet" ablation of
Figure 5: a single-stage pointer that scores all feasible (worker, task)
pairs at once.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from .. import nn
from ..core.instance import USMDWInstance
from ..core.packed import RaggedRows
from .state import SelectionState
from .tasnet import TASNet, TASNetConfig

__all__ = ["ActionRecord", "EpisodeStaticsCache", "TASNetPolicy",
           "FlatSelectionNet", "FlatSelectionPolicy", "worker_travel_grid",
           "sensing_task_features"]


def worker_travel_grid(instance: USMDWInstance, worker) -> np.ndarray:
    """Travel-information matrix of Section IV-C (normalised to [0, 1]).

    Grid cells get 1 / 2 / 3 for origin / destination / travel tasks;
    travel tasks overwrite endpoints on collision, matching the paper's
    priority ordering of the assignment statement.
    """
    grid = instance.coverage.grid
    matrix = np.zeros((grid.nx, grid.ny))
    oi, oj = grid.cell_of(worker.origin)
    matrix[oi, oj] = 1.0
    di, dj = grid.cell_of(worker.destination)
    matrix[di, dj] = 2.0
    for task in worker.travel_tasks:
        ti, tj = grid.cell_of(task.location)
        matrix[ti, tj] = 3.0
    return matrix / 3.0


def sensing_task_features(instance: USMDWInstance) -> np.ndarray:
    """Per-task (x, y, tw_start, tw_end), normalised by region / time span."""
    region = instance.coverage.grid.region
    span = instance.coverage.time_span
    rows = [
        [task.location.x / region.width, task.location.y / region.height,
         task.tw_start / span, task.tw_end / span]
        for task in instance.sensing_tasks
    ]
    return np.asarray(rows).reshape(len(instance.sensing_tasks), 4)


@dataclass
class ActionRecord:
    """One decision: the pair picked and its log-probability tensor."""

    worker_id: int
    task_id: int
    log_prob: nn.Tensor


@dataclass
class _InstanceStatics:
    """One instance's static encodings (everything fixed for an episode).

    Depends only on the instance and the network parameters, so a warm
    serving engine can keep it resident across requests
    (:class:`EpisodeStaticsCache`).
    """

    worker_emb: nn.Tensor        # (n_w, d)
    task_emb: nn.Tensor          # (n_s, d)
    cand_keys: nn.Tensor         # (n_s, d) static pointer keys
    task_mean: nn.Tensor         # (d,)
    worker_ids: list[int]
    task_index: dict[int, int]


class EpisodeStaticsCache:
    """Bounded LRU of per-instance static encodings, keyed by identity.

    The static encoder pass (worker travel-grid conv + sensing-task
    encoder + pointer-key projection) depends only on the instance and
    the network weights, so a serving engine with *frozen* weights can
    reuse it across every request for the same instance object.  Entries
    pin the instance reference, keeping identity keys valid while
    cached.

    The cache is only sound while the network's parameters do not
    change: any weight update must :meth:`clear` it (training paths
    never install one).  Cached tensors are typically produced under
    ``nn.no_grad()`` — reusing them in a gradient context would detach
    the encoders from the graph, another reason this is a serving-only
    fast path.
    """

    def __init__(self, max_instances: int = 64):
        if max_instances < 1:
            raise ValueError(
                f"max_instances must be >= 1, got {max_instances}")
        self.max_instances = max_instances
        self._entries: "OrderedDict[int, tuple]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, instance) -> _InstanceStatics | None:
        entry = self._entries.get(id(instance))
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(id(instance))
        self.hits += 1
        return entry[1]

    def put(self, instance, statics: _InstanceStatics) -> None:
        self._entries[id(instance)] = (instance, statics)
        if len(self._entries) > self.max_instances:
            self._entries.popitem(last=False)
            self.evictions += 1

    def evict(self, instance_or_id) -> bool:
        """Drop one instance's entry; accepts the instance or its ``id()``.

        The id form lets a sibling cache evict in lock-step *after* its
        own entry (and possibly the last strong reference) is gone —
        exactly when re-deriving ``id(instance)`` is no longer possible.
        Returns whether an entry was present.
        """
        key = (instance_or_id if isinstance(instance_or_id, int)
               else id(instance_or_id))
        if self._entries.pop(key, None) is not None:
            self.evictions += 1
            return True
        return False

    def __contains__(self, instance_or_id) -> bool:
        key = (instance_or_id if isinstance(instance_or_id, int)
               else id(instance_or_id))
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class _MultiEpisodeStatics:
    """Static encodings for B heterogeneous instances, flat-concatenated.

    Each instance is encoded exactly as :meth:`TASNetPolicy.begin_episode`
    would (a per-instance loop, so encoder outputs are bit-identical to
    the single-instance path); the per-instance matrices are concatenated
    along axis 0 and addressed as ``offsets[i] + local index`` through the
    ``workers`` / ``tasks`` ragged views.  Gradients flow back through the
    concat into every instance's encoder graph.
    """

    instances: list
    worker_ids: list[list[int]]
    task_index: list[dict[int, int]]
    worker_emb: nn.Tensor        # (sum n_w, d)
    task_emb: nn.Tensor          # (sum n_s, d)
    cand_keys: nn.Tensor         # (sum n_s, d) static pointer keys
    task_mean: nn.Tensor         # (B, d)
    workers: RaggedRows
    tasks: RaggedRows
    worker_pad_idx: np.ndarray   # (B, W_max) flat rows into worker_emb
    worker_pad_mask: np.ndarray  # (B, W_max) True on padded slots


def _choose(log_probs, greedy: bool,
            rng: np.random.Generator | None) -> int:
    """Argmax / sample an index from log-probs (Tensor or ndarray)."""
    data = log_probs.data if isinstance(log_probs, nn.Tensor) \
        else np.asarray(log_probs)
    probs = np.exp(data)
    if greedy:
        return int(np.argmax(probs))
    if rng is None:
        # A silently created fresh generator here would make sampled
        # rollouts irreproducible; the caller must own the randomness.
        raise ValueError(
            "sampled decoding (greedy=False) requires an explicit rng; "
            "pass rng=np.random.default_rng(seed)")
    probs = probs / probs.sum()
    return int(rng.choice(len(probs), p=probs))


def _extract_log_probs(worker_logp: nn.Tensor, worker_idxs,
                       task_logp: nn.Tensor, task_idxs) -> list[nn.Tensor]:
    """Per-rollout action log-probs from the two stage matrices.

    One fancy-indexed gather per stage plus one vector add replaces the
    per-rollout ``worker_logp[k, w] + task_logp[k, t]`` chains — K scalar
    graph nodes instead of 3K per step.  Pure gathers and an elementwise
    add, so every scalar is bit-identical to the per-rollout expression.
    """
    rows = np.arange(len(worker_idxs))
    step_logp = worker_logp[rows, np.asarray(worker_idxs, dtype=np.intp)] \
        + task_logp[rows, np.asarray(task_idxs, dtype=np.intp)]
    return [step_logp[k] for k in range(len(worker_idxs))]


class TASNetPolicy:
    """Featurisation + two-stage decoding over the selection MDP.

    Drives one episode at a time through :meth:`act`, or K rollouts of the
    same instance in lock-step through :meth:`act_batch` — one batched
    two-stage forward per decoding step, sharing the static encoder
    embeddings computed once in :meth:`begin_episode` across the whole
    batch (see :class:`repro.smore.batch.BatchedEpisodeRunner`).
    """

    def __init__(self, net: TASNet):
        self.net = net
        #: Optional :class:`EpisodeStaticsCache` installed by a serving
        #: engine with frozen weights; None (default) re-encodes per
        #: episode, which training requires.
        self.statics_cache: EpisodeStaticsCache | None = None
        self._instance: USMDWInstance | None = None
        self._worker_emb: nn.Tensor | None = None
        self._task_emb: nn.Tensor | None = None
        self._cand_keys: nn.Tensor | None = None
        self._task_mean: nn.Tensor | None = None
        self._worker_ids: list[int] = []
        self._task_index: dict[int, int] = {}
        self._multi: _MultiEpisodeStatics | None = None
        # Incremental per-(rollout, worker) mean-assigned embedding bank
        # for the batched decode paths; see _assigned_bank_rows.
        self._bank: nn.Tensor | None = None
        self._bank_counts: np.ndarray | None = None
        self._bank_slots: dict[int, tuple[object, int]] = {}

    # ------------------------------------------------------------------ #
    def _instance_statics(self, instance: USMDWInstance) -> _InstanceStatics:
        """Encode (or recall) everything that stays fixed for an episode.

        With a :attr:`statics_cache` installed, repeat episodes on the
        same instance object skip the static encoder pass entirely — the
        cached tensors are the very objects the cold pass produced, so
        downstream decoding is bit-identical.
        """
        cache = self.statics_cache
        if cache is not None:
            cached = cache.get(instance)
            if cached is not None:
                return cached
        grids = np.stack(
            [worker_travel_grid(instance, w) for w in instance.workers])
        task_emb = self.net.task_encoder(sensing_task_features(instance))
        statics = _InstanceStatics(
            worker_emb=self.net.worker_encoder(grids),
            task_emb=task_emb,
            cand_keys=self.net.task_selection.precompute_keys(task_emb),
            task_mean=nn.ops.mean(task_emb, axis=0),
            worker_ids=[w.worker_id for w in instance.workers],
            task_index={s.task_id: i
                        for i, s in enumerate(instance.sensing_tasks)})
        if cache is not None:
            cache.put(instance, statics)
        return statics

    def begin_episode(self, instance: USMDWInstance) -> None:
        """Encode the static parts of the state (workers, sensing tasks)."""
        self._instance = instance
        self._multi = None
        self._reset_bank()
        statics = self._instance_statics(instance)
        self._worker_emb = statics.worker_emb
        self._task_emb = statics.task_emb
        self._cand_keys = statics.cand_keys
        self._task_mean = statics.task_mean
        self._worker_ids = statics.worker_ids
        self._task_index = statics.task_index

    def begin_episodes(self, instances) -> None:
        """Encode statics for B instances at once (cross-instance decode).

        Rollouts of *different* instances can then share one batched
        two-stage forward per step — :meth:`act_batch` with
        ``instance_idxs``.  Each instance is encoded through the same
        per-instance encoder calls as :meth:`begin_episode`, so its
        embeddings are bit-identical to the single-instance path; only
        the decoding batches change.
        """
        instances = list(instances)
        if not instances:
            raise ValueError("begin_episodes needs at least one instance")
        self._instance = None
        self._reset_bank()
        worker_embs, task_embs, cand_keys, task_means = [], [], [], []
        worker_ids, task_index = [], []
        for instance in instances:
            # Per-instance encoding (before the concat) keeps each
            # instance's statics bit-identical to begin_episode's — and
            # lets a serving engine's statics cache recall them whole.
            statics = self._instance_statics(instance)
            worker_embs.append(statics.worker_emb)
            task_embs.append(statics.task_emb)
            cand_keys.append(statics.cand_keys)
            task_means.append(statics.task_mean)
            worker_ids.append(statics.worker_ids)
            task_index.append(statics.task_index)
        workers = RaggedRows([len(ids) for ids in worker_ids])
        tasks = RaggedRows([len(index) for index in task_index])
        pad_idx, pad_mask = workers.padded()
        self._multi = _MultiEpisodeStatics(
            instances=instances, worker_ids=worker_ids, task_index=task_index,
            worker_emb=nn.ops.concat(worker_embs, axis=0),
            task_emb=nn.ops.concat(task_embs, axis=0),
            cand_keys=nn.ops.concat(cand_keys, axis=0),
            task_mean=nn.ops.stack(task_means),
            workers=workers, tasks=tasks,
            worker_pad_idx=pad_idx, worker_pad_mask=pad_mask)

    def _require_episode(self) -> USMDWInstance:
        if self._instance is None:
            raise RuntimeError("call begin_episode(instance) first")
        return self._instance

    def _require_episodes(self) -> _MultiEpisodeStatics:
        if self._multi is None:
            raise RuntimeError("call begin_episodes(instances) first")
        return self._multi

    # ------------------------------------------------------------------ #
    def _assigned_embedding_mean(self, assigned) -> nn.Tensor:
        d = self.net.config.d_model
        if not assigned:
            return nn.Tensor(np.zeros(d))
        indices = np.array([self._task_index[t.task_id] for t in assigned])
        return nn.ops.mean(nn.ops.gather_rows(self._task_emb, indices), axis=0)

    def _worker_state_embeddings(self, state: SelectionState) -> nn.Tensor:
        rows = []
        for idx, worker_id in enumerate(self._worker_ids):
            assigned = state.assignments[worker_id].assigned
            mean_assigned = self._assigned_embedding_mean(assigned)
            rows.append(nn.ops.concat([mean_assigned, self._worker_emb[idx]]))
        return nn.ops.stack(rows)

    # ------------------------------------------------------------------ #
    def _worker_stage(self, state: SelectionState,
                      budget_norm: float) -> tuple[nn.Tensor, nn.Tensor]:
        """Stage 1 forward pass: (log-probs over workers, h_g)."""
        worker_states = self._worker_state_embeddings(state)
        feasible = set(state.feasible_worker_ids())
        mask = np.array([w not in feasible for w in self._worker_ids])
        if mask.all():
            raise RuntimeError("no worker has feasible candidates")
        return self.net.worker_selection(worker_states, budget_norm, mask)

    def _task_stage(self, state: SelectionState, worker_id: int,
                    worker_idx: int, budget_norm: float,
                    h_g: nn.Tensor) -> tuple[nn.Tensor, list[int]]:
        """Stage 2 forward pass for one worker: (log-probs, task id order)."""
        instance = self._require_episode()
        candidates = state.candidates.worker_candidates(worker_id)
        task_ids = sorted(candidates)
        delta_in = np.array([candidates[t].delta_incentive for t in task_ids])
        delta_phi = np.array([
            state.coverage.gain(instance.sensing_task(t)) for t in task_ids])
        cand_indices = np.array([self._task_index[t] for t in task_ids])
        candidate_keys = nn.ops.gather_rows(self._cand_keys, cand_indices)
        assigned = state.assignments[worker_id].assigned
        assigned_emb = None
        if assigned:
            idx = np.array([self._task_index[t.task_id] for t in assigned])
            assigned_emb = nn.ops.gather_rows(self._task_emb, idx)
        task_logp = self.net.task_selection(
            self._worker_emb[worker_idx], assigned_emb, budget_norm, h_g,
            self._task_mean, candidate_keys, delta_phi, delta_in)
        return task_logp, task_ids

    def act(self, state: SelectionState, greedy: bool = True,
            rng: np.random.Generator | None = None) -> ActionRecord:
        """Run both selection stages on the current state."""
        instance = self._require_episode()
        budget_norm = state.budget_rest / max(instance.budget, 1e-9)

        worker_logp, h_g = self._worker_stage(state, budget_norm)
        worker_idx = _choose(worker_logp, greedy, rng)
        worker_id = self._worker_ids[worker_idx]

        task_logp, task_ids = self._task_stage(
            state, worker_id, worker_idx, budget_norm, h_g)
        task_idx = _choose(task_logp, greedy, rng)

        log_prob = worker_logp[worker_idx] + task_logp[task_idx]
        return ActionRecord(worker_id, task_ids[task_idx], log_prob)

    def log_prob_of(self, state: SelectionState, worker_id: int,
                    task_id: int) -> nn.Tensor:
        """Log-probability the policy assigns to a given (worker, task) pair.

        Used by imitation pretraining to evaluate teacher actions.
        """
        instance = self._require_episode()
        budget_norm = state.budget_rest / max(instance.budget, 1e-9)
        worker_logp, h_g = self._worker_stage(state, budget_norm)
        worker_idx = self._worker_ids.index(worker_id)
        task_logp, task_ids = self._task_stage(
            state, worker_id, worker_idx, budget_norm, h_g)
        task_idx = task_ids.index(task_id)
        return worker_logp[worker_idx] + task_logp[task_idx]

    # ------------------------------------------------------------------ #
    # Batched decoding: K rollouts of one instance per forward pass.
    # ------------------------------------------------------------------ #
    def _reset_bank(self) -> None:
        self._bank = None
        self._bank_counts = None
        self._bank_slots = {}

    def _assigned_bank_rows(self, states, rows: list[list[int]], w: int,
                            task_emb: nn.Tensor) -> nn.Tensor:
        """Mean-assigned embeddings for K states x ``w`` worker slots.

        ``rows`` lists, state-major, the flat task-embedding row indices
        assigned to each (state, worker slot) pair.  Rather than gather
        and pool all K*w rows every step, a persistent bank tensor keeps
        one pooled row per pair and only the pairs whose assigned count
        changed since the previous call (one worker per rollout per step)
        are recomputed and scattered in.  Recomputed rows run the exact
        gather + masked-mean the full rebuild would, so the forward pass
        stays bit-identical; gradients flow into every step's use of a
        row through the :func:`~repro.nn.ops.scatter_rows` chain.

        Slots are keyed by state object identity (a strong reference is
        kept until the next ``begin_episode``, so ids cannot be reused
        mid-episode) — assigned sets only grow during an episode, so a
        count match implies unchanged contents.
        """
        d = self.net.config.d_model
        slots = np.empty(len(states), dtype=np.intp)
        for k, state in enumerate(states):
            entry = self._bank_slots.get(id(state))
            if entry is None:
                entry = (state, len(self._bank_slots))
                self._bank_slots[id(state)] = entry
            slots[k] = entry[1]
        capacity = len(self._bank_slots) * w
        if self._bank is None:
            self._bank = nn.Tensor(np.zeros((capacity, d)))
            self._bank_counts = np.zeros(capacity, dtype=np.intp)
        elif self._bank.shape[0] < capacity:
            grow = capacity - self._bank.shape[0]
            self._bank = nn.ops.concat(
                [self._bank, nn.Tensor(np.zeros((grow, d)))], axis=0)
            self._bank_counts = np.concatenate(
                [self._bank_counts, np.zeros(grow, dtype=np.intp)])
        counts = self._bank_counts
        changed_rows: list[int] = []
        changed_lists: list[list[int]] = []
        for k in range(len(states)):
            base_row = slots[k] * w
            for j in range(w):
                row = rows[k * w + j]
                r = base_row + j
                if counts[r] != len(row):
                    counts[r] = len(row)
                    changed_rows.append(r)
                    changed_lists.append(row)
        if changed_rows:
            a_max = max(len(row) for row in changed_lists)
            idx = np.zeros((len(changed_rows), a_max), dtype=np.intp)
            mask = np.ones((len(changed_rows), a_max), dtype=bool)
            for i, row in enumerate(changed_lists):
                idx[i, :len(row)] = row
                mask[i, :len(row)] = False
            gathered = nn.ops.gather_rows(task_emb, idx)
            new_rows = nn.ops.masked_mean(gathered, mask[:, :, None], axis=1)
            self._bank = nn.ops.scatter_rows(
                self._bank, changed_rows, new_rows)
        flat = slots[:, None] * w + np.arange(w, dtype=np.intp)[None, :]
        return nn.ops.gather_rows(self._bank, flat)

    def _worker_state_embeddings_batch(self, states) -> nn.Tensor:
        """Worker-state embeddings for K rollouts: (K, n_w, 2d)."""
        num_states, n_w = len(states), len(self._worker_ids)
        d = self.net.config.d_model
        rows: list[list[int]] = []
        for state in states:
            for worker_id in self._worker_ids:
                rows.append([self._task_index[t.task_id]
                             for t in state.assignments[worker_id].assigned])
        mean_assigned = self._assigned_bank_rows(
            states, rows, n_w, self._task_emb)
        worker_emb = nn.ops.broadcast_to(self._worker_emb,
                                         (num_states, n_w, d))
        return nn.ops.concat([mean_assigned, worker_emb], axis=2)

    def _worker_stage_batch(self, states, budget_norms: np.ndarray
                            ) -> tuple[nn.Tensor, nn.Tensor]:
        """Batched stage 1: ((K, n_w) log-probs, (K, 2d) group embeddings)."""
        worker_states = self._worker_state_embeddings_batch(states)
        mask = np.empty((len(states), len(self._worker_ids)), dtype=bool)
        for k, state in enumerate(states):
            feasible = set(state.feasible_worker_ids())
            mask[k] = [w not in feasible for w in self._worker_ids]
            if mask[k].all():
                raise RuntimeError("no worker has feasible candidates")
        return self.net.worker_selection.forward_batch(
            worker_states, budget_norms, mask)

    def _task_stage_batch(self, states, worker_ids, worker_idxs,
                          budget_norms: np.ndarray, h_g: nn.Tensor,
                          multi: _MultiEpisodeStatics | None = None,
                          inst_idx: np.ndarray | None = None
                          ) -> tuple[nn.Tensor, list[list[int]]]:
        """Batched stage 2: ((K, m_max) padded log-probs, task-id orders).

        With ``multi`` / ``inst_idx`` the rollouts belong to different
        instances and every task index is offset into the flat
        cross-instance embedding matrices; without them the path is the
        homogeneous one-instance batch, unchanged.
        """
        if multi is None:
            instance = self._require_episode()
            task_emb = self._task_emb
            cand_keys = self._cand_keys
        else:
            task_emb = multi.task_emb
            cand_keys = multi.cand_keys
        num_states = len(states)
        task_id_lists: list[list[int]] = []
        delta_in_rows, delta_phi_rows = [], []
        cand_rows: list[list[int]] = []
        assigned_rows: list[list[int]] = []
        for k, (state, worker_id) in enumerate(zip(states, worker_ids)):
            if multi is None:
                task_index = self._task_index
                base = 0
            else:
                i = inst_idx[k]
                instance = multi.instances[i]
                task_index = multi.task_index[i]
                base = int(multi.tasks.offsets[i])
            candidates = state.candidates.worker_candidates(worker_id)
            task_ids = sorted(candidates)
            task_id_lists.append(task_ids)
            delta_in_rows.append(np.array(
                [candidates[t].delta_incentive for t in task_ids]))
            delta_phi_rows.append(state.coverage.gain_many(
                [instance.sensing_task(t) for t in task_ids]))
            cand_rows.append([base + task_index[t] for t in task_ids])
            assigned_rows.append(
                [base + task_index[t.task_id]
                 for t in state.assignments[worker_id].assigned])

        delta_phi, cand_mask = nn.ops.pad_stack(delta_phi_rows)
        delta_in, _ = nn.ops.pad_stack(delta_in_rows)
        m_max = delta_phi.shape[1]
        cand_idx = np.zeros((num_states, m_max), dtype=np.intp)
        for k, row in enumerate(cand_rows):
            cand_idx[k, :len(row)] = row
        candidate_keys = nn.ops.gather_rows(cand_keys, cand_idx)

        a_max = max(len(row) for row in assigned_rows)
        assigned_emb, assigned_mask = None, None
        if a_max:
            a_idx = np.zeros((num_states, a_max), dtype=np.intp)
            assigned_mask = np.ones((num_states, a_max), dtype=bool)
            for k, row in enumerate(assigned_rows):
                a_idx[k, :len(row)] = row
                assigned_mask[k, :len(row)] = False
            assigned_emb = nn.ops.gather_rows(task_emb, a_idx)

        if multi is None:
            worker_emb = nn.ops.gather_rows(
                self._worker_emb, np.asarray(worker_idxs, dtype=np.intp))
            task_mean = nn.ops.broadcast_to(
                self._task_mean, (num_states, self._task_mean.shape[0]))
        else:
            flat_rows = (multi.workers.offsets[inst_idx]
                         + np.asarray(worker_idxs, dtype=np.intp))
            worker_emb = nn.ops.gather_rows(multi.worker_emb, flat_rows)
            task_mean = nn.ops.gather_rows(multi.task_mean, inst_idx)
        task_logp = self.net.task_selection.forward_batch(
            worker_emb, assigned_emb, assigned_mask, budget_norms, h_g,
            task_mean, candidate_keys, cand_mask, delta_phi, delta_in)
        return task_logp, task_id_lists

    # ------------------------------------------------------------------ #
    # Cross-instance decoding: B instances x K rollouts per forward pass.
    # ------------------------------------------------------------------ #
    def _worker_state_embeddings_multi(self, states, inst_idx,
                                       multi: _MultiEpisodeStatics
                                       ) -> tuple[nn.Tensor, np.ndarray]:
        """Padded worker-state embeddings across instances: (K, W_max, 2d).

        Returns the embeddings plus the (K, W_max) padding mask.  Padded
        slots gather flat row 0 as a placeholder; the worker-selection
        forward masks them out of every pooling, glimpse, and pointer
        term, so they contribute nothing forward and receive exactly zero
        gradient through the gather's scatter-add backward.
        """
        pad_idx = multi.worker_pad_idx[inst_idx]        # (K, W_max)
        pad_mask = multi.worker_pad_mask[inst_idx]      # (K, W_max)
        w_max = pad_idx.shape[1]
        rows: list[list[int]] = []
        for state, i in zip(states, inst_idx):
            task_index = multi.task_index[i]
            base = int(multi.tasks.offsets[i])
            for worker_id in multi.worker_ids[i]:
                rows.append([base + task_index[t.task_id]
                             for t in state.assignments[worker_id].assigned])
            rows.extend([[]] * (w_max - len(multi.worker_ids[i])))
        mean_assigned = self._assigned_bank_rows(
            states, rows, w_max, multi.task_emb)
        worker_emb = nn.ops.gather_rows(multi.worker_emb, pad_idx)
        return nn.ops.concat([mean_assigned, worker_emb], axis=2), pad_mask

    def _worker_stage_multi(self, states, inst_idx, budget_norms: np.ndarray,
                            multi: _MultiEpisodeStatics
                            ) -> tuple[nn.Tensor, nn.Tensor]:
        """Cross-instance stage 1: ((K, W_max) log-probs, (K, 2d) h_g)."""
        worker_states, pad_mask = self._worker_state_embeddings_multi(
            states, inst_idx, multi)
        mask = pad_mask.copy()
        for k, (state, i) in enumerate(zip(states, inst_idx)):
            feasible = set(state.feasible_worker_ids())
            ids = multi.worker_ids[i]
            mask[k, :len(ids)] = [w not in feasible for w in ids]
            if mask[k].all():
                raise RuntimeError("no worker has feasible candidates")
        return self.net.worker_selection.forward_batch(
            worker_states, budget_norms, mask, pad_mask=pad_mask)

    def _act_batch_multi(self, states, greedy, rngs,
                         instance_idxs) -> list[ActionRecord]:
        multi = self._require_episodes()
        num_states = len(states)
        inst_idx = np.asarray(instance_idxs, dtype=np.intp)
        if inst_idx.shape != (num_states,):
            raise ValueError("instance_idxs must give one index per state")
        greedy_flags = [greedy] * num_states if isinstance(greedy, bool) \
            else list(greedy)
        rng_list = [None] * num_states if rngs is None else list(rngs)
        budget_norms = np.array(
            [s.budget_rest / max(multi.instances[i].budget, 1e-9)
             for s, i in zip(states, inst_idx)])

        worker_logp, h_g = self._worker_stage_multi(
            states, inst_idx, budget_norms, multi)
        # Slice each row to its instance's real worker count: the padded
        # tail holds exact zero probability either way, and the slice
        # keeps _choose's draw identical to the single-instance batch.
        worker_idxs = [
            _choose(worker_logp.data[k, :multi.workers.lengths[i]],
                    greedy_flags[k], rng_list[k])
            for k, i in enumerate(inst_idx)]
        worker_ids = [multi.worker_ids[i][w]
                      for i, w in zip(inst_idx, worker_idxs)]

        task_logp, task_id_lists = self._task_stage_batch(
            states, worker_ids, worker_idxs, budget_norms, h_g,
            multi=multi, inst_idx=inst_idx)

        task_idxs = [
            _choose(task_logp.data[k, :len(task_id_lists[k])],
                    greedy_flags[k], rng_list[k])
            for k in range(num_states)]
        log_probs = _extract_log_probs(
            worker_logp, worker_idxs, task_logp, task_idxs)
        return [
            ActionRecord(worker_ids[k], task_id_lists[k][task_idxs[k]],
                         log_probs[k])
            for k in range(num_states)]

    def act_batch(self, states, greedy=True, rngs=None,
                  instance_idxs=None) -> list[ActionRecord]:
        """Decode one action for each of K concurrent rollouts.

        ``states`` are live :class:`SelectionState` objects over the
        instance passed to :meth:`begin_episode`.  ``greedy`` is one bool
        for the whole batch or a per-rollout sequence; ``rngs`` supplies
        each sampled rollout's own generator, consumed in the same
        worker-then-task order as the serial :meth:`act`, so a rollout's
        random stream is independent of its batch companions.

        ``instance_idxs`` switches to the cross-instance path: after
        :meth:`begin_episodes`, each state k belongs to
        ``instances[instance_idxs[k]]`` and the whole heterogeneous batch
        shares one two-stage forward, padded to the widest instance.
        """
        states = list(states)
        if not states:
            return []
        if instance_idxs is not None:
            return self._act_batch_multi(states, greedy, rngs, instance_idxs)
        instance = self._require_episode()
        num_states = len(states)
        greedy_flags = [greedy] * num_states if isinstance(greedy, bool) \
            else list(greedy)
        rng_list = [None] * num_states if rngs is None else list(rngs)
        budget_norms = np.array(
            [s.budget_rest / max(instance.budget, 1e-9) for s in states])

        worker_logp, h_g = self._worker_stage_batch(states, budget_norms)
        worker_idxs = [
            _choose(worker_logp.data[k], greedy_flags[k], rng_list[k])
            for k in range(num_states)]
        worker_ids = [self._worker_ids[i] for i in worker_idxs]

        task_logp, task_id_lists = self._task_stage_batch(
            states, worker_ids, worker_idxs, budget_norms, h_g)

        task_idxs = [
            _choose(task_logp.data[k, :len(task_id_lists[k])],
                    greedy_flags[k], rng_list[k])
            for k in range(num_states)]
        log_probs = _extract_log_probs(
            worker_logp, worker_idxs, task_logp, task_idxs)
        return [
            ActionRecord(worker_ids[k], task_id_lists[k][task_idxs[k]],
                         log_probs[k])
            for k in range(num_states)]

    # ------------------------------------------------------------------ #
    def parameters(self):
        return self.net.parameters()


class FlatSelectionNet(nn.Module):
    """Single-stage scorer for the "w/o TASNet" ablation.

    Every feasible (worker, task) pair is embedded as ``[w_j; s_i]`` and
    scored by one pointer over the flat candidate list — the strategy
    Section IV-B argues is hard to learn because of the |W| x |S| action
    space and which, per the ablation's definition, has neither the
    two-stage decomposition nor TASNet's heuristic-signal fusion.
    """

    def __init__(self, config: TASNetConfig, grid_nx: int, grid_ny: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        from .tasnet import SensingTaskEncoder, WorkerEncoder

        rng = rng or np.random.default_rng()
        self.config = config
        d = config.d_model
        self.worker_encoder = WorkerEncoder(config, grid_nx, grid_ny, rng)
        self.task_encoder = SensingTaskEncoder(config, rng)
        self.budget_fc = nn.Linear(1, d, rng=rng)
        self.pointer = nn.PointerAttention(d, 2 * d, d_key=d,
                                           clip=config.clip, rng=rng)


class FlatSelectionPolicy:
    """Episode driver for :class:`FlatSelectionNet`."""

    def __init__(self, net: FlatSelectionNet):
        self.net = net
        self._instance: USMDWInstance | None = None
        self._worker_emb: nn.Tensor | None = None
        self._task_emb: nn.Tensor | None = None
        self._worker_pos: dict[int, int] = {}
        self._task_index: dict[int, int] = {}

    def begin_episode(self, instance: USMDWInstance) -> None:
        self._instance = instance
        grids = np.stack([worker_travel_grid(instance, w) for w in instance.workers])
        self._worker_emb = self.net.worker_encoder(grids)
        self._task_emb = self.net.task_encoder(sensing_task_features(instance))
        self._worker_pos = {w.worker_id: i for i, w in enumerate(instance.workers)}
        self._task_index = {s.task_id: i for i, s in enumerate(instance.sensing_tasks)}

    def _pair_log_probs(self, state: SelectionState
                        ) -> tuple[nn.Tensor, list[tuple[int, int]]]:
        instance = self._instance
        if instance is None:
            raise RuntimeError("call begin_episode(instance) first")
        budget_norm = state.budget_rest / max(instance.budget, 1e-9)

        pairs: list[tuple[int, int]] = []
        key_rows = []
        for worker_id in state.candidates.workers_with_candidates():
            w_idx = self._worker_pos[worker_id]
            for task_id in sorted(
                    state.candidates.worker_candidates(worker_id)):
                t_idx = self._task_index[task_id]
                key_rows.append(nn.ops.concat(
                    [self._worker_emb[w_idx], self._task_emb[t_idx]]))
                pairs.append((worker_id, task_id))
        keys = nn.ops.stack(key_rows)
        query = self.net.budget_fc(nn.Tensor(np.array([budget_norm])))
        return nn.ops.log_softmax(self.net.pointer(query, keys)), pairs

    def act(self, state: SelectionState, greedy: bool = True,
            rng: np.random.Generator | None = None) -> ActionRecord:
        log_probs, pairs = self._pair_log_probs(state)
        choice = _choose(log_probs, greedy, rng)
        worker_id, task_id = pairs[choice]
        return ActionRecord(worker_id, task_id, log_probs[choice])

    def log_prob_of(self, state: SelectionState, worker_id: int,
                    task_id: int) -> nn.Tensor:
        log_probs, pairs = self._pair_log_probs(state)
        return log_probs[pairs.index((worker_id, task_id))]

    def parameters(self):
        return self.net.parameters()
