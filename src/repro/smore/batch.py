"""Batched decode engine: K rollouts of one instance in lock-step.

Sample-and-select-best inference and multi-rollout REINFORCE both decode
the *same* instance many times.  The serial path loops ``run_episode``;
this module instead advances all K episodes together, so each decoding
step costs one batched two-stage TASNet forward instead of K serial
forwards.  The static encoders (worker grid, sensing-task set) run once
per instance — :meth:`TASNetPolicy.begin_episode` — and their embeddings
are shared by every rollout in the batch.

Determinism contract: each rollout owns its spec ``(greedy, rng)`` and
its generator is consumed in exactly the serial order (worker choice,
then task choice, per step), so a batched rollout reproduces the serial
rollout with the same seed bit-for-bit at the action level.  Episodes
that finish early simply drop out of the active set; the stragglers keep
stepping in ever-smaller batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.errors import ReproError
from ..obs.profile import scope as profile_scope
from .env import SelectionEnv
from .state import SelectionState

__all__ = ["BatchedEpisodeRunner", "EpisodeResult", "MultiInstanceRunner",
           "BatchAdmissionError", "BatchFull", "DeadlineExpired"]


class BatchAdmissionError(ReproError):
    """A request could not be admitted into a decode batch."""


class BatchFull(BatchAdmissionError):
    """The batch already holds its maximum number of requests."""


class DeadlineExpired(BatchAdmissionError):
    """The request's deadline passed before it could be admitted."""


@dataclass
class EpisodeResult:
    """One finished rollout out of a batch."""

    state: SelectionState
    total_reward: float
    records: list = field(default_factory=list)


class BatchedEpisodeRunner:
    """Run K episodes of ``policy`` on ``env`` in lock-step.

    Policies exposing :meth:`act_batch` (TASNet) get one batched forward
    per decoding step; policies without it (selection rules, the flat
    ablation policy) fall back to per-state :meth:`act` calls inside the
    same lock-step loop, so the runner is a drop-in driver for every
    policy type.
    """

    def __init__(self, env: SelectionEnv, policy):
        self.env = env
        self.policy = policy

    def run(self, specs, record_actions: bool = False) -> list[EpisodeResult]:
        """Roll one episode per spec; a spec is ``(greedy, rng)``.

        ``rng`` may be ``None`` (greedy rollouts draw nothing), a seed,
        or a ready :class:`numpy.random.Generator`.
        """
        specs = list(specs)
        if not specs:
            return []
        greedy_flags, rngs = [], []
        for use_greedy, rng in specs:
            greedy_flags.append(bool(use_greedy))
            if rng is not None and not isinstance(rng, np.random.Generator):
                rng = np.random.default_rng(rng)
            rngs.append(rng)

        with profile_scope("decode"):
            return self._run(specs, greedy_flags, rngs, record_actions)

    def _run(self, specs, greedy_flags, rngs,
             record_actions: bool) -> list[EpisodeResult]:
        states = [self.env.reset() for _ in specs]
        self.policy.begin_episode(self.env.instance)
        results = [EpisodeResult(state=s, total_reward=0.0) for s in states]

        act_batch = getattr(self.policy, "act_batch", None)
        active = [k for k, s in enumerate(states) if not s.done]
        while active:
            if act_batch is not None:
                actions = act_batch(
                    [states[k] for k in active],
                    greedy=[greedy_flags[k] for k in active],
                    rngs=[rngs[k] for k in active])
            else:
                actions = [
                    self.policy.act(states[k], greedy=greedy_flags[k],
                                    rng=rngs[k])
                    for k in active]
            for k, action in zip(active, actions):
                _, reward, _ = self.env.step_state(
                    states[k], action.worker_id, action.task_id)
                results[k].total_reward += reward
                if record_actions:
                    results[k].records.append(action)
            active = [k for k in active if not states[k].done]
        return results


class MultiInstanceRunner:
    """Run rollouts over B heterogeneous instances in one lock-step batch.

    ``envs`` holds one :class:`SelectionEnv` per instance and each env
    gets its own rollout schedule (a list of ``(greedy, rng)`` specs, the
    same normalisation as :meth:`BatchedEpisodeRunner.run`).  Policies
    exposing :meth:`begin_episodes` and ``act_batch(...,
    instance_idxs=...)`` (TASNet) decode every active rollout of every
    instance through a single two-stage forward per step; other policies
    fall back to one :class:`BatchedEpisodeRunner` per env.  Either way
    each rollout consumes its own generator in the serial worker-then-task
    order, so results match per-instance decoding rollout-for-rollout.
    """

    def __init__(self, envs, policy):
        self.envs = list(envs)
        self.policy = policy
        self._admitted: list[list] = []

    # -- incremental submission ----------------------------------------- #
    def admit(self, env, specs) -> int:
        """Admit one env + its rollout specs into the next run; returns
        its slot index.

        The incremental counterpart of pre-assembling ``envs`` /
        ``specs_per_env``: a serving front-end admits requests one at a
        time as they arrive, then fires :meth:`run_admitted` once the
        batch closes.  ``run_admitted(...)`` is then exactly
        ``run([specs...])`` over the admitted slots, in admission order.
        """
        self.envs.append(env)
        self._admitted.append(list(specs))
        return len(self.envs) - 1

    def run_admitted(self, record_actions: bool = False
                     ) -> list[list[EpisodeResult]]:
        """Run the specs admitted via :meth:`admit` (one list per slot)."""
        specs_per_env, self._admitted = self._admitted, []
        return self.run(specs_per_env, record_actions)

    def run(self, specs_per_env,
            record_actions: bool = False) -> list[list[EpisodeResult]]:
        """Roll each env's specs; returns one result list per env."""
        specs_per_env = [list(specs) for specs in specs_per_env]
        if len(specs_per_env) != len(self.envs):
            raise ValueError(
                f"got {len(specs_per_env)} spec lists for {len(self.envs)} envs")
        if not any(specs_per_env):
            return [[] for _ in specs_per_env]
        if getattr(self.policy, "begin_episodes", None) is None:
            return [BatchedEpisodeRunner(env, self.policy).run(
                        specs, record_actions)
                    for env, specs in zip(self.envs, specs_per_env)]

        env_of, greedy_flags, rngs = [], [], []
        for e, specs in enumerate(specs_per_env):
            for use_greedy, rng in specs:
                env_of.append(e)
                greedy_flags.append(bool(use_greedy))
                if rng is not None and not isinstance(rng, np.random.Generator):
                    rng = np.random.default_rng(rng)
                rngs.append(rng)

        with profile_scope("decode"):
            return self._run(len(specs_per_env), env_of, greedy_flags, rngs,
                             record_actions)

    def _run(self, num_envs, env_of, greedy_flags, rngs,
             record_actions: bool) -> list[list[EpisodeResult]]:
        states = [self.envs[e].reset() for e in env_of]
        self.policy.begin_episodes([env.instance for env in self.envs])
        results = [EpisodeResult(state=s, total_reward=0.0) for s in states]

        active = [k for k, s in enumerate(states) if not s.done]
        while active:
            actions = self.policy.act_batch(
                [states[k] for k in active],
                greedy=[greedy_flags[k] for k in active],
                rngs=[rngs[k] for k in active],
                instance_idxs=[env_of[k] for k in active])
            for k, action in zip(active, actions):
                _, reward, _ = self.envs[env_of[k]].step_state(
                    states[k], action.worker_id, action.task_id)
                results[k].total_reward += reward
                if record_actions:
                    results[k].records.append(action)
            active = [k for k in active if not states[k].done]

        grouped: list[list[EpisodeResult]] = [[] for _ in range(num_envs)]
        for e, result in zip(env_of, results):
            grouped[e].append(result)
        return grouped
