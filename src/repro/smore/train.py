"""REINFORCE training of TASNet with a critic baseline (Section IV-F).

For each training iteration a batch of USMDW instances is rolled out with
sampled actions; the policy gradient of Equation 12 —
``(phi(pi) - b(s)) * grad log p(pi)`` — updates the policy, and the critic
is regressed onto the realised coverage.  Greedy rollouts on held-out
instances provide validation, as in the paper ("sample during training,
argmax during validation and testing").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .. import nn, obs
from ..core.instance import USMDWInstance
from ..obs import TrainingHistory
from ..obs.profile import scope as profile_scope
from ..parallel import parallel_map
from ..tsptw.base import RoutePlanner
from .batch import BatchedEpisodeRunner, MultiInstanceRunner
from .critic import CriticNetwork, critic_features
from .env import SelectionEnv
from .solver import run_episode

__all__ = ["TrainingConfig", "TASNetTrainer", "imitation_pretrain"]


def imitation_pretrain(policy, planner: RoutePlanner,
                       instances: Sequence[USMDWInstance],
                       iterations: int = 10, lr: float = 3e-3,
                       explore: float = 0.2, seed: int = 0,
                       grad_clip: float = 1.0, teacher=None) -> list[float]:
    """Warm-start the policy by behaviour-cloning the greedy selection rule.

    The paper trains TASNet from scratch on a GPU over thousands of
    instances; at CPU scale, REINFORCE from a random initialisation needs
    many more episodes than a benchmark run can afford.  Cloning the
    max-coverage-gain / min-cost rule first (the very heuristic TASNet's
    soft mask encodes) gives REINFORCE a competent starting policy; the
    RL fine-tuning then improves past the myopic teacher.  Documented as a
    training-schedule substitution in DESIGN.md.

    With probability ``explore`` the rollout follows the policy's own
    sampled action instead of the teacher's, so the cloned policy also
    sees off-teacher states.  Returns the per-iteration mean cross-entropy.
    """
    from .solver import RatioSelectionRule

    rng = np.random.default_rng(seed)
    optimizer = nn.Adam(policy.parameters(), lr=lr)
    if teacher is None:
        teacher = RatioSelectionRule()
    history: list[float] = []
    # One env per instance: the candidate-table snapshot survives across
    # iterations, so the O(W x S) init sweep is paid once per instance.
    envs: dict[int, SelectionEnv] = {}
    for iteration in range(iterations):
        index = int(rng.integers(0, len(instances)))
        instance = instances[index]
        env = envs.get(index)
        if env is None:
            env = envs.setdefault(index, SelectionEnv(instance, planner))
        state = env.reset()
        policy.begin_episode(instance)
        teacher.begin_episode(instance)
        loss = None
        steps = 0
        while not state.done:
            target = teacher.act(state)
            # Log-prob of the teacher's action under the learner: force the
            # learner to evaluate exactly that pair.
            log_prob = policy.log_prob_of(state, target.worker_id,
                                          target.task_id)
            loss = -log_prob if loss is None else loss - log_prob
            steps += 1
            if rng.random() < explore:
                action = policy.act(state, greedy=False, rng=rng)
            else:
                action = target
            state, _, _ = env.step(action.worker_id, action.task_id)
        if loss is None:
            continue
        loss = loss * (1.0 / steps)
        optimizer.zero_grad()
        loss.backward()
        nn.clip_grad_norm(policy.parameters(), grad_clip)
        optimizer.step()
        history.append(loss.item())
    return history


@dataclass
class TrainingConfig:
    """REINFORCE hyper-parameters (paper: Adam, lr 1e-4; scaled for CPU).

    ``baseline`` selects the variance-reduction scheme: ``"critic"`` (the
    paper's choice), ``"rollout"`` (the self-critic greedy-rollout baseline
    of Kool et al. the paper compares against and finds less
    training-efficient), or ``"none"``.
    """

    iterations: int = 20
    batch_size: int = 4
    lr: float = 1e-3
    critic_lr: float = 1e-3
    grad_clip: float = 1.0
    seed: int = 0
    baseline: str = "critic"
    #: Sampled rollouts decoded per instance each iteration.  Values > 1
    #: run as one lock-step batch (BatchedEpisodeRunner): K episodes per
    #: batched TASNet forward, static encodings shared, all log-probs in
    #: one graph for the single policy backward.
    rollouts_per_instance: int = 1
    #: Decode the whole iteration batch as ONE cross-instance lock-step
    #: run (MultiInstanceRunner): batch_size instances x
    #: rollouts_per_instance episodes share every batched TASNet forward.
    #: Rollout seeds are drawn per instance in the same order as the
    #: per-instance batched path, so flipping this changes only the
    #: batching, not the sampled action streams.
    cross_instance_batch: bool = False
    #: Process-pool size for greedy validation rollouts (repro.parallel).
    #: Training rollouts stay in-process — their autograd graphs cannot
    #: cross a process boundary.
    eval_workers: int = 1

    def __post_init__(self):
        if self.baseline not in ("critic", "rollout", "none"):
            raise ValueError(f"unknown baseline {self.baseline!r}")
        if self.rollouts_per_instance < 1:
            raise ValueError("rollouts_per_instance must be >= 1")


@dataclass
class TASNetTrainer:
    """Trains any policy exposing ``begin_episode`` / ``act`` / ``parameters``."""

    policy: object
    planner: RoutePlanner
    config: TrainingConfig = field(default_factory=TrainingConfig)
    critic: CriticNetwork | None = None
    #: Named training curves (dict-compatible).  ``train_iteration``
    #: records ``reward`` / ``reward_std`` / ``loss`` / ``grad_norm`` /
    #: ``entropy`` (and ``critic_loss`` under the critic baseline);
    #: :meth:`evaluate` records ``eval``; :meth:`train` appends the best
    #: validation score under ``val``.
    history: TrainingHistory = field(
        default_factory=lambda: TrainingHistory(
            reward=[], baseline=[], critic_loss=[]))

    def __post_init__(self):
        self.rng = np.random.default_rng(self.config.seed)
        if self.critic is None:
            self.critic = CriticNetwork(rng=np.random.default_rng(self.config.seed + 1))
        self.optimizer = nn.Adam(self.policy.parameters(), lr=self.config.lr)
        self.critic_optimizer = nn.Adam(self.critic.parameters(),
                                        lr=self.config.critic_lr)
        self._envs: dict[int, SelectionEnv] = {}

    # ------------------------------------------------------------------ #
    def _env(self, instance: USMDWInstance) -> SelectionEnv:
        """Per-instance environment, kept so candidate snapshots are reused
        across every rollout of the whole training run."""
        key = id(instance)
        env = self._envs.get(key)
        if env is None or env.instance is not instance:
            env = SelectionEnv(instance, self.planner)
            self._envs[key] = env
        return env

    def _rollout(self, instance: USMDWInstance):
        """Sampled episode; (phi, sum of log-probs, initial features, steps)."""
        env = self._env(instance)
        state = env.reset()
        features = critic_features(instance, state)
        self.policy.begin_episode(instance)
        log_prob_sum = None
        steps = 0
        while not state.done:
            action = self.policy.act(state, greedy=False, rng=self.rng)
            state, _, _ = env.step(action.worker_id, action.task_id)
            log_prob_sum = (action.log_prob if log_prob_sum is None
                            else log_prob_sum + action.log_prob)
            steps += 1
        return state.phi(), log_prob_sum, features, steps

    def _rollout_batch(self, instance: USMDWInstance, num_rollouts: int):
        """K lock-step episodes; list of (phi, log-probs, features, steps).

        Each rollout draws from its own generator seeded off the trainer
        rng, so companions in the batch never perturb each other's
        sampling stream.
        """
        env = self._env(instance)
        features = critic_features(instance, env.reset())
        seeds = [int(s) for s in
                 self.rng.integers(0, 2**63 - 1, size=num_rollouts)]
        runner = BatchedEpisodeRunner(env, self.policy)
        episodes = runner.run([(False, seed) for seed in seeds],
                              record_actions=True)
        samples = []
        for episode in episodes:
            log_prob_sum = None
            for record in episode.records:
                log_prob_sum = (record.log_prob if log_prob_sum is None
                                else log_prob_sum + record.log_prob)
            samples.append((episode.state.phi(), log_prob_sum, features,
                            len(episode.records)))
        return samples

    def _collect_samples(self, instance: USMDWInstance):
        if self.config.rollouts_per_instance == 1:
            return [self._rollout(instance)]
        return self._rollout_batch(instance,
                                   self.config.rollouts_per_instance)

    def _rollout_cross_batch(self, batch_instances, num_rollouts: int):
        """One lock-step run over the whole iteration batch.

        B instances x K rollouts advance together; each decoding step is
        a single two-stage forward over every active episode.  Each
        instance's K seeds are drawn from the trainer rng in the order
        the per-instance path (:meth:`_rollout_batch` inside the batch
        loop) would draw them, so the sampled trajectories are identical
        — only the batching changes.  Returns
        ``(phi, log-prob sum, features, steps, instance)`` tuples.
        """
        envs = [self._env(instance) for instance in batch_instances]
        specs_per_env, features = [], []
        for instance, env in zip(batch_instances, envs):
            features.append(critic_features(instance, env.reset()))
            seeds = [int(s) for s in
                     self.rng.integers(0, 2**63 - 1, size=num_rollouts)]
            specs_per_env.append([(False, seed) for seed in seeds])
        runner = MultiInstanceRunner(envs, self.policy)
        grouped = runner.run(specs_per_env, record_actions=True)
        samples = []
        for instance, feats, episodes in zip(batch_instances, features,
                                             grouped):
            for episode in episodes:
                log_prob_sum = None
                for record in episode.records:
                    log_prob_sum = (record.log_prob if log_prob_sum is None
                                    else log_prob_sum + record.log_prob)
                samples.append((episode.state.phi(), log_prob_sum, feats,
                                len(episode.records), instance))
        return samples

    def _greedy_rollout_value(self, instance: USMDWInstance) -> float:
        """Self-critic baseline: coverage of the current policy decoded
        greedily on the same instance (Kool et al.'s rollout baseline)."""
        env = self._env(instance)
        with nn.no_grad():
            state, _, _ = run_episode(env, self.policy, greedy=True)
        return state.phi()

    def train_iteration(self, instances: Sequence[USMDWInstance]) -> float:
        """One REINFORCE update over a batch sampled from ``instances``.

        All rollouts of the iteration accumulate into one policy-loss
        graph and trigger exactly one backward; the critic evaluates the
        whole batch of feature vectors in a single forward that serves
        both the (detached) baselines and the regression loss.  With
        ``rollouts_per_instance > 1`` each instance's rollouts decode in
        lock-step through the batched engine.
        """
        cfg = self.config
        hook = nn.get_tensor_hook()
        profiled = hook.enabled and hasattr(hook, "diff")
        profile_baseline = hook.snapshot() if profiled else None
        batch_idx = self.rng.choice(len(instances),
                                    size=min(cfg.batch_size, len(instances)),
                                    replace=False)
        rewards = []
        samples = []  # (phi, log-prob sum, features, instance)
        total_log_prob = 0.0
        total_steps = 0
        rollout_span = obs.span("train.rollouts",
                                instances=len(batch_idx),
                                rollouts_per_instance=cfg.rollouts_per_instance)
        with rollout_span, profile_scope("train.rollouts"):
            batch_instances = [instances[int(idx)] for idx in batch_idx]
            if cfg.cross_instance_batch:
                collected = self._rollout_cross_batch(
                    batch_instances, cfg.rollouts_per_instance)
            else:
                collected = [
                    sample + (instance,)
                    for instance in batch_instances
                    for sample in self._collect_samples(instance)]
            for phi, log_prob_sum, features, steps, instance in collected:
                rewards.append(phi)
                if log_prob_sum is None:
                    continue  # instance admitted no assignments at all
                total_log_prob += float(log_prob_sum.item())
                total_steps += steps
                samples.append((phi, log_prob_sum, features, instance))

        policy_loss = None
        critic_loss = None
        if samples:
            phis = np.array([phi for phi, _, _, _ in samples])
            if cfg.baseline == "critic":
                feature_batch = np.stack([f for _, _, f, _ in samples])
                values = self.critic.values(feature_batch)
                baselines = values.data
                critic_loss = nn.ops.sum((values - nn.Tensor(phis)) ** 2.0)
            elif cfg.baseline == "rollout":
                # Greedy decode once per distinct instance, not per sample.
                cache: dict[int, float] = {}
                baselines = np.array([
                    cache[id(inst)] if id(inst) in cache else cache.setdefault(
                        id(inst), self._greedy_rollout_value(inst))
                    for _, _, _, inst in samples])
            else:
                baselines = np.zeros(len(samples))
            total = len(batch_idx) * cfg.rollouts_per_instance
            for (phi, log_prob_sum, _, _), baseline in zip(samples, baselines):
                advantage = phi - float(baseline)
                term = log_prob_sum * (-advantage / total)
                policy_loss = (term if policy_loss is None
                               else policy_loss + term)

        grad_norm = 0.0
        loss_value = 0.0
        if policy_loss is not None:
            loss_value = float(policy_loss.item())
            with profile_scope("train.update"):
                self.optimizer.zero_grad()
                policy_loss.backward()
                grad_norm = nn.clip_grad_norm(self.policy.parameters(),
                                              cfg.grad_clip)
                self.optimizer.step()
        critic_loss_value = None
        if critic_loss is not None:
            critic_loss_value = float(critic_loss.item())
            with profile_scope("train.critic"):
                self.critic_optimizer.zero_grad()
                critic_loss.backward()
                self.critic_optimizer.step()
            self.history["critic_loss"].append(critic_loss_value)

        mean_reward = float(np.mean(rewards)) if rewards else 0.0
        reward_std = float(np.std(rewards)) if rewards else 0.0
        # Sample estimate of the policy entropy: the mean negative
        # log-probability of the actions actually drawn this iteration.
        entropy = (-total_log_prob / total_steps) if total_steps else 0.0
        self.history.record(reward=mean_reward, reward_std=reward_std,
                            loss=loss_value, grad_norm=grad_norm,
                            entropy=entropy)
        if profiled:
            self._record_profile(hook.diff(profile_baseline))
        obs.count("train.iterations")
        obs.event("train.iteration", epoch=len(self.history["reward"]),
                  reward=mean_reward, reward_std=reward_std,
                  loss=loss_value, grad_norm=grad_norm, entropy=entropy,
                  critic_loss=critic_loss_value)
        return mean_reward

    def _record_profile(self, delta: dict) -> None:
        """Fold one iteration's op-profiler delta into the history.

        ``delta`` is an :meth:`~repro.obs.profile.OpProfiler.diff`
        payload; scope rows are excluded from the time sums (they would
        double-count the ops running inside them).  Adds per-epoch
        ``profile_forward_seconds`` / ``profile_backward_seconds`` /
        ``profile_flops`` / ``profile_peak_live_bytes`` series and a
        max-merged ``train.peak_live_bytes`` gauge.
        """
        forward_seconds = 0.0
        backward_seconds = 0.0
        total_flops = 0
        for row in delta.get("ops", {}).values():
            kind, _, fwd_s, _, bwd_s, flops, bwd_flops, _, _ = row
            if kind != "scope":
                forward_seconds += fwd_s
                backward_seconds += bwd_s
            total_flops += flops + bwd_flops
        peak = delta.get("peak_live_bytes", 0)
        self.history.record(profile_forward_seconds=forward_seconds,
                            profile_backward_seconds=backward_seconds,
                            profile_flops=total_flops,
                            profile_peak_live_bytes=peak)
        obs.gauge("train.peak_live_bytes", peak)

    def train(self, instances: Sequence[USMDWInstance],
              val_instances: Sequence[USMDWInstance] | None = None,
              eval_every: int = 5, patience: int | None = None) -> None:
        """Run the configured number of iterations.

        With ``val_instances``, the policy is greedily evaluated every
        ``eval_every`` iterations and the best-scoring parameters are
        restored at the end — the paper's validate-then-test-best protocol.
        ``patience`` (in evaluation rounds) enables early stopping when
        validation stops improving.
        """
        best_score = -float("inf")
        best_state = None
        stale_rounds = 0
        net = getattr(self.policy, "net", None)
        track = val_instances is not None and net is not None
        if track:
            best_score = self.evaluate(val_instances)
            best_state = net.state_dict()
        for iteration in range(self.config.iterations):
            self.train_iteration(instances)
            if track and (iteration + 1) % eval_every == 0:
                score = self.evaluate(val_instances)
                if score > best_score:
                    best_score = score
                    best_state = net.state_dict()
                    stale_rounds = 0
                else:
                    stale_rounds += 1
                    if patience is not None and stale_rounds >= patience:
                        break
        if track:
            final = self.evaluate(val_instances)
            if final > best_score:
                best_score = final
            elif best_state is not None:
                net.load_state_dict(best_state)
            self.history.setdefault("val", []).append(best_score)

    # ------------------------------------------------------------------ #
    def save_checkpoint(self, path) -> None:
        """Persist policy + critic weights and Adam moments to one npz."""
        payload: dict[str, np.ndarray] = {}
        net = getattr(self.policy, "net", None)
        if net is None:
            raise ValueError("policy has no .net to checkpoint")
        for name, value in net.state_dict().items():
            payload[f"policy/{name}"] = value
        for name, value in self.critic.state_dict().items():
            payload[f"critic/{name}"] = value
        opt_state = self.optimizer.state_dict()
        payload["opt/step_count"] = np.array(opt_state["step_count"])
        for i, (m, v) in enumerate(zip(opt_state["m"], opt_state["v"])):
            payload[f"opt/m{i}"] = m
            payload[f"opt/v{i}"] = v
        np.savez(path, **payload)

    def load_checkpoint(self, path) -> None:
        """Restore a checkpoint written by :meth:`save_checkpoint`."""
        with np.load(path) as archive:
            data = {key: archive[key] for key in archive.files}
        net = getattr(self.policy, "net")
        net.load_state_dict({
            name[len("policy/"):]: value for name, value in data.items()
            if name.startswith("policy/")
        })
        self.critic.load_state_dict({
            name[len("critic/"):]: value for name, value in data.items()
            if name.startswith("critic/")
        })
        count = sum(1 for name in data if name.startswith("opt/m"))
        self.optimizer.load_state_dict({
            "step_count": int(data["opt/step_count"]),
            "m": [data[f"opt/m{i}"] for i in range(count)],
            "v": [data[f"opt/v{i}"] for i in range(count)],
        })

    # ------------------------------------------------------------------ #
    def evaluate(self, instances: Sequence[USMDWInstance]) -> float:
        """Mean greedy-rollout coverage over held-out instances.

        Greedy decoding is deterministic, so fanning the instances out over
        ``config.eval_workers`` processes returns exactly the serial score.
        """

        def score_one(instance: USMDWInstance) -> float:
            env = self._env(instance)
            with nn.no_grad():
                state, _, _ = run_episode(env, self.policy, greedy=True)
            return state.phi()

        with obs.span("train.eval", instances=len(instances)):
            scores = parallel_map(score_one, instances,
                                  workers=self.config.eval_workers)
        score = float(np.mean(scores)) if scores else 0.0
        self.history.record(eval=score)
        obs.event("train.eval", coverage=score)
        return score
