"""Heuristic signals for the task decoder (paper Section IV-E).

For each candidate sensing task the decoder receives two auxiliary signals:
the coverage gain ``delta_phi`` and the incentive cost ``delta_in``.  Their
ratio — the *coverage-incentive ratio* ``beta = delta_phi / delta_in`` —
drives the soft mask (Equations 9-10) that modulates the pointer logits
(Equation 11), steering exploration toward tasks that buy more coverage per
unit of budget without hard-forbidding any candidate.
"""

from __future__ import annotations

import numpy as np

__all__ = ["coverage_incentive_ratio", "soft_mask", "SOFT_MASK_EPS"]

SOFT_MASK_EPS = 1e-6


def coverage_incentive_ratio(delta_phi: np.ndarray,
                             delta_in: np.ndarray) -> np.ndarray:
    """``beta_i = delta_phi_i / delta_in_i`` with a guarded denominator.

    A zero-cost assignment (the task sits exactly on the worker's current
    route) is maximally attractive; we guard the division so it yields a
    large finite ratio instead of inf.
    """
    safe_cost = np.maximum(np.asarray(delta_in, dtype=np.float64), SOFT_MASK_EPS)
    return np.asarray(delta_phi, dtype=np.float64) / safe_cost


def soft_mask(delta_phi: np.ndarray, delta_in: np.ndarray,
              lam: float = 0.5, eps: float = SOFT_MASK_EPS) -> np.ndarray:
    """The soft mask ``f`` of Equations 9-10.

    ``beta`` is min-max normalised across the current candidates, and
    ``f_i = exp(-lam^2 / (eps + beta_hat_i^2))`` lies in (0, 1]: near 1 for
    the best ratio, near 0 for the worst.  With a single candidate (or all
    ratios equal) the mask degenerates to all-ones — there is nothing to
    discriminate.
    """
    beta = coverage_incentive_ratio(delta_phi, delta_in)
    spread = beta.max() - beta.min()
    if beta.size <= 1 or spread <= 0:
        return np.ones_like(beta)
    beta_hat = (beta - beta.min()) / spread
    return np.exp(-(lam ** 2) / (eps + beta_hat ** 2))
