"""Assignment state ``M`` and the MDP state of the selection process.

``M[w]`` tracks, per worker: the assigned sensing tasks, the current
working route, and the incentive currently owed (Algorithm 1 line 3).
:class:`SelectionState` bundles everything TASNet conditions on
(Section IV-A): candidates ``C``, assignments ``M``, static worker info
``W``, and the remaining budget ``B_t`` — plus the coverage state that
yields rewards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.coverage import CoverageState
from ..core.entities import SensingTask, Worker
from ..core.route import WorkingRoute
from .candidates import CandidateEntry, CandidateTable

__all__ = ["WorkerAssignment", "AssignmentState", "SelectionState"]


@dataclass
class WorkerAssignment:
    """One worker's slot in M: assigned tasks, route, incentive owed."""

    worker: Worker
    assigned: list[SensingTask] = field(default_factory=list)
    route: WorkingRoute | None = None
    incentive: float = 0.0

    @property
    def num_assigned(self) -> int:
        return len(self.assigned)


class AssignmentState:
    """The hashmap ``M`` of Algorithm 1."""

    def __init__(self, workers):
        self._slots: dict[int, WorkerAssignment] = {
            w.worker_id: WorkerAssignment(w) for w in workers
        }

    def __getitem__(self, worker_id: int) -> WorkerAssignment:
        return self._slots[worker_id]

    def __iter__(self):
        return iter(self._slots.values())

    def apply(self, worker_id: int, task: SensingTask,
              entry: CandidateEntry) -> None:
        """Record a selected assignment (Algorithm 1 line 13)."""
        slot = self._slots[worker_id]
        slot.assigned.append(task)
        slot.route = entry.route
        slot.incentive += entry.delta_incentive

    def routes(self) -> dict[int, WorkingRoute]:
        return {
            worker_id: slot.route
            for worker_id, slot in self._slots.items()
            if slot.route is not None
        }

    def incentives(self) -> dict[int, float]:
        return {
            worker_id: slot.incentive
            for worker_id, slot in self._slots.items()
            if slot.route is not None
        }

    def total_incentive(self) -> float:
        return sum(slot.incentive for slot in self._slots.values())


@dataclass
class SelectionState:
    """MDP state ``s_t = (C_t, M_t, W, B_t)`` plus coverage bookkeeping."""

    candidates: CandidateTable
    assignments: AssignmentState
    workers: tuple[Worker, ...]
    budget_rest: float
    coverage: CoverageState
    selected: list[SensingTask] = field(default_factory=list)
    step_count: int = 0
    # The availability pool, maintained incrementally: tasks in instance
    # order (arrivals appended at the end), minus everything selected or
    # expired.  Dict insertion order *is* the pool order, so iterating
    # ``unselected.values()`` reproduces exactly the list the env used to
    # rebuild from scratch every step.
    unselected: dict[int, SensingTask] = field(default_factory=dict)

    @property
    def done(self) -> bool:
        return self.candidates.empty

    def feasible_worker_ids(self) -> list[int]:
        return self.candidates.workers_with_candidates()

    def phi(self) -> float:
        return self.coverage.phi()
