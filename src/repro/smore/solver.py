"""The SMORE solver facade (paper Algorithm 1).

Runs candidate assignment initialisation followed by iterative selection,
driven by a trained (or untrained) policy.  Also hosts the "w/o RL-AS"
ablation: the same iterative framework with a purely greedy
coverage-gain-first selection rule instead of the learned policy.

Sample-and-select-best inference (``num_samples > 1``) shares one
:class:`~repro.smore.env.SelectionEnv` across rollouts, so the candidate
table is initialised once and restored by snapshot copy per rollout; with
``workers > 1`` the sampled rollouts additionally fan out over a process
pool (:mod:`repro.parallel`) with per-rollout seeds derived from one root,
making parallel and serial decoding bit-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .. import nn, obs
from ..core.instance import USMDWInstance
from ..core.perf import PerfCounters
from ..core.solution import Solution
from ..obs.profile import scope as profile_scope
from ..obs.slo import current_slo_tracker
from ..parallel import derive_seeds, parallel_map
from ..tsptw.base import RoutePlanner
from .batch import BatchedEpisodeRunner, BatchFull, DeadlineExpired, \
    MultiInstanceRunner
from .env import SelectionEnv
from .policy import FlatSelectionPolicy, TASNetPolicy
from .state import SelectionState

__all__ = ["SMORESolver", "SolveBatch", "GreedySelectionRule",
           "RatioSelectionRule", "run_episode"]


def run_episode(env: SelectionEnv, policy, greedy: bool = True,
                rng: np.random.Generator | None = None,
                record_actions: bool = False):
    """Roll one full episode; return (state, total_reward, action_records)."""
    state = env.reset()
    policy.begin_episode(env.instance)
    total_reward = 0.0
    records = []
    while not state.done:
        action = policy.act(state, greedy=greedy, rng=rng)
        state, reward, _ = env.step(action.worker_id, action.task_id)
        total_reward += reward
        if record_actions:
            records.append(action)
    return state, total_reward, records


def _chunk(items: list, parts: int) -> list[list]:
    """Split ``items`` into at most ``parts`` contiguous non-empty chunks.

    Contiguity preserves the rollout schedule's order, so concatenating
    chunk results reproduces the serial result list exactly.
    """
    parts = min(parts, len(items))
    size, extra = divmod(len(items), parts)
    chunks, start = [], 0
    for i in range(parts):
        stop = start + size + (1 if i < extra else 0)
        chunks.append(items[start:stop])
        start = stop
    return chunks


def _best_candidate_pair(state: SelectionState, score):
    """Arg-best (worker, task) over the candidate table without sorting.

    ``score(task_id, entry)`` returns the primary key to *minimise* (e.g.
    negative coverage gain).  Ties break toward the lower incentive cost,
    then the lower task id within a worker's row; across workers the
    earlier worker in table order wins, mirroring the historical
    sorted-scan semantics at O(row) instead of O(row log row) per step.
    """
    best = None
    best_key = None
    for worker_id in state.candidates.workers_with_candidates():
        row_best = None
        row_key = None
        for task_id, entry in state.candidates.worker_candidates(
                worker_id).items():
            key = (score(task_id, entry), entry.delta_incentive, task_id)
            if row_key is None or key < row_key:
                row_key = key
                row_best = task_id
        if row_key is not None and (best_key is None
                                    or row_key[:2] < best_key[:2]):
            best_key = row_key
            best = (worker_id, row_best)
    return best


class GreedySelectionRule:
    """"w/o RL-AS" ablation: pick the pair with maximum coverage gain.

    Ties break toward the lower incentive cost, mirroring TVPG's rule but
    inside SMORE's exact-replanning framework.
    """

    def begin_episode(self, instance: USMDWInstance) -> None:
        self._instance = instance

    def act(self, state: SelectionState, greedy: bool = True,
            rng: np.random.Generator | None = None):
        from .policy import ActionRecord

        def score(task_id, entry):
            return -state.coverage.gain(self._instance.sensing_task(task_id))

        best = _best_candidate_pair(state, score)
        return ActionRecord(best[0], best[1], nn.Tensor(0.0))


class RatioSelectionRule:
    """Coverage-incentive-ratio greedy: pick the pair maximising
    ``delta_phi / delta_in`` (the paper's soft-mask heuristic, Section IV-E,
    applied as a hard rule).  Used as the imitation-pretraining teacher and
    as a strong deterministic reference policy."""

    def begin_episode(self, instance: USMDWInstance) -> None:
        self._instance = instance

    def act(self, state: SelectionState, greedy: bool = True,
            rng: np.random.Generator | None = None):
        from .heuristics import SOFT_MASK_EPS
        from .policy import ActionRecord

        def score(task_id, entry):
            gain = state.coverage.gain(self._instance.sensing_task(task_id))
            return -gain / max(entry.delta_incentive, SOFT_MASK_EPS)

        best = _best_candidate_pair(state, score)
        return ActionRecord(best[0], best[1], nn.Tensor(0.0))


class SMORESolver:
    """SMORE: candidate initialisation + policy-driven iterative selection.

    Parameters
    ----------
    planner:
        TSPTW backend (``f_TSPTW`` in Algorithm 1).
    policy:
        A :class:`TASNetPolicy`, :class:`FlatSelectionPolicy` ("w/o
        TASNet"), or :class:`GreedySelectionRule` ("w/o RL-AS").
    name:
        Label recorded on solutions (defaults by policy type).
    """

    def __init__(self, planner: RoutePlanner, policy, name: str | None = None):
        self.planner = planner
        self.policy = policy
        if name is None:
            name = {
                TASNetPolicy: "SMORE",
                FlatSelectionPolicy: "SMORE w/o TASNet",
                GreedySelectionRule: "SMORE w/o RL-AS",
            }.get(type(policy), "SMORE")
        self.name = name

    # ------------------------------------------------------------------ #
    def _rollout_plan(self, greedy: bool, rng: np.random.Generator | None,
                      num_samples: int) -> list:
        """The (use_greedy, seed) schedule for sample-and-select-best.

        Per-rollout seeds are derived from one root drawn off the caller's
        rng, so the schedule — and therefore the returned solution — is
        identical whether rollouts run serially or across a pool.
        """
        if num_samples > 1:
            rng = rng or np.random.default_rng()
            root = int(rng.integers(0, 2**63 - 1))
            return [(True, None)] + [
                (False, seed) for seed in derive_seeds(root, num_samples - 1)]
        if not greedy:
            return [(False, np.random.SeedSequence()
                     if rng is None else rng)]
        return [(True, None)]

    def solve(self, instance: USMDWInstance, greedy: bool = True,
              rng: np.random.Generator | None = None,
              num_samples: int = 1, workers: int = 1,
              reuse_candidates: bool = True,
              batch_rollouts: bool = True,
              shards: int | None = None,
              shard_method: str = "grid",
              shard_pool=None) -> Solution:
        """Solve one instance.

        ``greedy=True`` decodes with argmax actions (the paper's test-time
        protocol).  ``num_samples > 1`` enables sample-and-select-best
        inference — a standard neural-CO extension beyond the paper: the
        policy is rolled out stochastically ``num_samples - 1`` times on
        top of one greedy rollout and the best-coverage solution is
        returned.  Candidate initialisation runs once regardless of
        ``num_samples`` (snapshot reuse); ``workers > 1`` fans the sampled
        rollouts out over a process pool with identical results.

        ``shards > 1`` routes the solve through the city-scale
        divide-and-conquer pipeline (:func:`repro.shard.solve_sharded`):
        spatial partition, independent per-shard solves (optionally over
        a ``shard_pool`` :class:`~repro.parallel.PersistentPool`), then
        boundary repair and merge.  ``shards=1``/``None`` is the plain
        unsharded path.

        ``batch_rollouts=True`` (default) advances all rollouts in
        lock-step through :class:`BatchedEpisodeRunner`, one batched
        policy forward per decoding step; with ``workers > 1`` each pool
        child batch-decodes its contiguous chunk of the rollout schedule.
        Because each rollout keeps its own derived seed and rng-draw
        order, the returned solution is identical either way — set
        ``batch_rollouts=False`` to force the per-episode reference loop.
        """
        if shards is not None and shards > 1:
            from ..shard import solve_sharded

            return solve_sharded(self, instance, shards,
                                 method=shard_method, pool=shard_pool,
                                 greedy=greedy, rng=rng,
                                 num_samples=num_samples)
        start = time.perf_counter()
        solve_span = obs.span("solve", method=self.name,
                              num_samples=num_samples, workers=workers)
        with solve_span, profile_scope("solve"):
            env = SelectionEnv(instance, self.planner,
                               reuse_candidates=reuse_candidates)
            rollouts = self._rollout_plan(greedy, rng, num_samples)
            # A memoising planner's counters are cumulative over its whole
            # lifetime; scope them to this solve by differencing around
            # each unit of work.  Differencing *inside* roll/roll_chunk —
            # which execute in the pool children — is what ships child-side
            # cache activity back instead of losing it with the fork.
            stats_fn = getattr(self.planner, "stats", None)

            def roll(spec):
                use_greedy, seed = spec
                roll_rng = None
                if not use_greedy:
                    roll_rng = (seed if isinstance(seed, np.random.Generator)
                                else np.random.default_rng(seed))
                # Fresh counters per rollout: a pool child may run several
                # rollouts on its copy of the env, and each must report only
                # its own episode.
                env.perf = PerfCounters()
                cache_before = stats_fn() if stats_fn is not None else None
                with obs.span("select", rollouts=1):
                    with nn.no_grad():
                        state, _, _ = run_episode(env, self.policy,
                                                  greedy=use_greedy,
                                                  rng=roll_rng)
                if cache_before is not None:
                    env.perf.merge(stats_fn().diff(cache_before))
                return (state.phi(), state.assignments.routes(),
                        state.assignments.incentives(), env.perf)

            def roll_chunk(chunk):
                # One batched decode over a contiguous slice of the schedule;
                # fresh counters so the chunk reports only its own episodes.
                env.perf = PerfCounters()
                cache_before = stats_fn() if stats_fn is not None else None
                with obs.span("select", rollouts=len(chunk)):
                    runner = BatchedEpisodeRunner(env, self.policy)
                    with nn.no_grad():
                        episodes = runner.run(chunk)
                if cache_before is not None:
                    env.perf.merge(stats_fn().diff(cache_before))
                return ([(ep.state.phi(), ep.state.assignments.routes(),
                          ep.state.assignments.incentives())
                         for ep in episodes], env.perf)

            perf = PerfCounters()
            batched = batch_rollouts and len(rollouts) > 1
            if workers > 1 and len(rollouts) > 1:
                # Warm the candidate snapshot before forking so every child
                # inherits it instead of re-running the O(W x S) init sweep.
                cache_before = stats_fn() if stats_fn is not None else None
                env.reset()  # emits the env's "init" span on first compute
                env.perf.rollouts = 0  # the warm-up reset is not an episode
                perf.merge(env.perf)
                if cache_before is not None:
                    perf.merge(stats_fn().diff(cache_before))
                if batched:
                    chunks = _chunk(rollouts, workers)
                    chunk_results = parallel_map(roll_chunk, chunks,
                                                 workers=workers)
                    results = []
                    for episodes, chunk_perf in chunk_results:
                        results.extend(
                            (phi, routes, incentives, PerfCounters())
                            for phi, routes, incentives in episodes)
                        perf.merge(chunk_perf)
                else:
                    results = parallel_map(roll, rollouts, workers=workers)
            elif batched:
                episodes, chunk_perf = roll_chunk(rollouts)
                results = [(phi, routes, incentives, PerfCounters())
                           for phi, routes, incentives in episodes]
                perf.merge(chunk_perf)
            else:
                results = [roll(spec) for spec in rollouts]
            for _, _, _, episode_perf in results:
                perf.merge(episode_perf)

            best = None
            best_phi = -float("inf")
            for phi, routes, incentives, _ in results:
                if phi > best_phi:
                    best_phi = phi
                    best = (routes, incentives)

            elapsed = time.perf_counter() - start
            obs.count("solve.count")
            obs.record_perf(perf, prefix="solve.")
            obs.gauge("solve.best_phi", best_phi)
            obs.event("solve.done", method=self.name, phi=best_phi,
                      rollouts=len(rollouts),
                      planner_calls=perf.planner_calls,
                      wall_time=round(elapsed, 6))
        return Solution(
            instance=instance,
            routes=best[0],
            incentives=best[1],
            solver_name=self.name,
            wall_time=elapsed,
            perf=perf,
        )

    def solve_dynamic(self, instance: USMDWInstance, schedule,
                      greedy: bool = True,
                      rng: np.random.Generator | None = None,
                      num_samples: int = 1, workers: int = 1,
                      repair: bool = True,
                      worker_arrivals: dict[int, float] | None = None,
                      reuse_candidates: bool = True):
        """Solve one instance under a streaming arrival schedule.

        Same sampling surface as :meth:`solve` — one greedy rollout plus
        ``num_samples - 1`` stochastic replays of the full dynamic
        episode, best coverage wins — but each rollout runs the
        epoch-by-epoch loop of
        :func:`~repro.smore.dynamic.run_dynamic_episode`: select until
        the candidate table drains, advance to the next arrival/expiry
        epoch (incremental table repair by default, per-epoch rebuild
        with ``repair=False``), repeat until nothing more can arrive.
        ``workers > 1`` fans sampled rollouts over a process pool with
        the same derived-seed schedule as :meth:`solve`, so parallel and
        serial decoding return identical results.  Returns a
        :class:`~repro.smore.dynamic.DynamicResult` with explicit
        rejection accounting alongside the usual routes/incentives.
        """
        from .dynamic import DynamicResult, DynamicSelectionEnv, \
            run_dynamic_episode

        start = time.perf_counter()
        with obs.span("solve_dynamic", method=self.name,
                      num_samples=num_samples, workers=workers,
                      repair=repair), profile_scope("solve"):
            env = DynamicSelectionEnv(
                instance, self.planner, schedule, repair=repair,
                worker_arrivals=worker_arrivals,
                reuse_candidates=reuse_candidates)
            rollouts = self._rollout_plan(greedy, rng, num_samples)
            stats_fn = getattr(self.planner, "stats", None)

            def roll(spec):
                use_greedy, seed = spec
                roll_rng = None
                if not use_greedy:
                    roll_rng = (seed if isinstance(seed, np.random.Generator)
                                else np.random.default_rng(seed))
                env.perf = PerfCounters()
                cache_before = stats_fn() if stats_fn is not None else None
                with obs.span("select", rollouts=1):
                    with nn.no_grad():
                        state, _ = run_dynamic_episode(
                            env, self.policy, greedy=use_greedy, rng=roll_rng)
                if cache_before is not None:
                    env.perf.merge(stats_fn().diff(cache_before))
                return (state.phi(), state.assignments.routes(),
                        state.assignments.incentives(),
                        tuple(t.task_id for t in state.selected),
                        tuple(state.rejected), state.arrived, state.events,
                        env.perf)

            perf = PerfCounters()
            if workers > 1 and len(rollouts) > 1:
                # Warm the epoch-zero snapshot before forking, as solve()
                # does, so children inherit the initial table.
                cache_before = stats_fn() if stats_fn is not None else None
                env.reset()
                env.perf.rollouts = 0
                perf.merge(env.perf)
                if cache_before is not None:
                    perf.merge(stats_fn().diff(cache_before))
                results = parallel_map(roll, rollouts, workers=workers)
            else:
                results = [roll(spec) for spec in rollouts]
            for result in results:
                perf.merge(result[-1])

            best = max(results, key=lambda r: r[0])
            elapsed = time.perf_counter() - start
            obs.count("solve_dynamic.count")
            obs.record_perf(perf, prefix="solve.")
            obs.gauge("solve.best_phi", best[0])
            obs.event("solve_dynamic.done", method=self.name, phi=best[0],
                      rejected=len(best[4]), events=best[6],
                      rollouts=len(rollouts), wall_time=round(elapsed, 6))
            # An installed SLO tracker saw every epoch (run_dynamic_episode
            # feeds it on simulation time; parallel rollouts merge their
            # window deltas back through capture_child/absorb).  Close the
            # run with one final objective check + a report event so the
            # trace file carries the end-state verdicts.
            slo_tracker = current_slo_tracker()
            if slo_tracker is not None:
                slo_tracker.check()
                report = slo_tracker.report()
                obs.event("solve_dynamic.slo", slo=report["name"],
                          requests=report["requests"],
                          error_rate=report["error_rate"],
                          budget_used=report["budget_used"],
                          alerts_fired=report["alerts_fired"])
        return DynamicResult(
            instance=instance, phi=best[0], routes=best[1],
            incentives=best[2], selected_ids=best[3], rejected_ids=best[4],
            arrived=best[5], events=best[6], solver_name=self.name,
            wall_time=elapsed, perf=perf)

    def open_batch(self, max_size: int | None = None,
                   reuse_candidates: bool = True, env_factory=None,
                   clock=time.monotonic) -> "SolveBatch":
        """Open an incrementally assembled cross-instance decode batch.

        The serving front-end admits requests one at a time
        (:meth:`SolveBatch.admit`, with admission control and deadline
        shedding) and fires :meth:`SolveBatch.execute` when the batch
        closes; :meth:`solve_many` is this surface with the whole request
        list admitted up front.
        """
        return SolveBatch(self, max_size=max_size,
                          reuse_candidates=reuse_candidates,
                          env_factory=env_factory, clock=clock)

    def solve_many(self, instances, greedy: bool = True, rngs=None,
                   num_samples: int = 1,
                   reuse_candidates: bool = True) -> list[Solution]:
        """Solve B instances in one cross-instance batched decode.

        Each instance's rollout schedule comes from the same
        :meth:`_rollout_plan` (consuming its entry of ``rngs`` exactly as
        :meth:`solve` would), then all ``B x num_samples`` rollouts
        advance in lock-step through
        :class:`~repro.smore.batch.MultiInstanceRunner` — one batched
        two-stage forward per decoding step across the whole fleet.  The
        returned solutions therefore match B independent
        ``solve(instances[i], rng=rngs[i], ...)`` calls
        action-for-action.

        An empty instance list is an error: a batch with nothing to
        decode almost always signals a caller bug (an exhausted request
        queue, a filtered-away workload), so it raises ``ValueError``
        instead of silently returning ``[]``.

        Accounting: per-solution ``wall_time`` is the batch wall time
        amortised over the instances (the marginal time of one instance
        inside a shared batch is undefined), and a shared memoising
        planner's cache delta for the whole run is merged into the first
        solution's perf — summing perf over the returned list stays
        comparable with the sum over independent solves.
        """
        instances = list(instances)
        if not instances:
            raise ValueError(
                "solve_many needs at least one instance; an empty batch is "
                "almost always a caller bug (use solve() for one instance)")
        rng_list = [None] * len(instances) if rngs is None else list(rngs)
        if len(rng_list) != len(instances):
            raise ValueError(
                f"got {len(rng_list)} rngs for {len(instances)} instances")
        batch = self.open_batch(reuse_candidates=reuse_candidates)
        for instance, rng in zip(instances, rng_list):
            batch.admit(instance, greedy=greedy, rng=rng,
                        num_samples=num_samples)
        return batch.execute()


@dataclass
class _BatchRequest:
    """One admitted solve request inside a :class:`SolveBatch`."""

    instance: USMDWInstance
    greedy: bool
    rng: object
    num_samples: int
    deadline: float | None


class SolveBatch:
    """Incrementally assembled cross-instance decode batch.

    The admission surface under the online solver service: requests are
    admitted one at a time — each with its own instance, decode mode,
    rng, and optional deadline — and :meth:`execute` decodes every
    admitted rollout in one lock-step
    :class:`~repro.smore.batch.MultiInstanceRunner` pass.

    Admission control: ``max_size`` bounds the batch
    (:class:`~repro.smore.batch.BatchFull` past it) and a request whose
    ``deadline`` (a ``clock()`` timestamp, :func:`time.monotonic` by
    default) already passed is rejected with
    :class:`~repro.smore.batch.DeadlineExpired`.  Requests whose deadline
    expires *between* admission and execution are shed at execute time:
    their slot in the returned list is ``None`` and they never enter the
    decode batch.

    ``env_factory(instance)`` lets a warm engine supply resident
    :class:`~repro.smore.env.SelectionEnv` objects (candidate-table
    snapshots survive across batches); by default each request gets a
    fresh env over the solver's planner.  When the factory returns the
    same env object for duplicate instances inside one batch, decode
    correctness is unaffected (every rollout owns its state) and the
    env's perf counters are attributed to the first request on that env.

    Batching is an execution strategy, not a semantics change: a greedy
    request's solution is bit-identical to ``solver.solve(instance)``
    regardless of which other requests share the batch.
    """

    def __init__(self, solver: SMORESolver, max_size: int | None = None,
                 reuse_candidates: bool = True, env_factory=None,
                 clock=time.monotonic):
        if max_size is not None and max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self._solver = solver
        self._max_size = max_size
        self._reuse_candidates = reuse_candidates
        self._env_factory = env_factory
        self._clock = clock
        self._requests: list[_BatchRequest] = []
        self._executed = False

    def __len__(self) -> int:
        return len(self._requests)

    @property
    def is_full(self) -> bool:
        return self._max_size is not None \
            and len(self._requests) >= self._max_size

    # ------------------------------------------------------------------ #
    def admit(self, instance: USMDWInstance, greedy: bool = True,
              rng=None, num_samples: int = 1,
              deadline: float | None = None) -> int:
        """Admit one request into the batch; returns its ticket index.

        Tickets index the list :meth:`execute` returns.  Raises
        :class:`BatchFull` when the batch is at ``max_size`` and
        :class:`DeadlineExpired` when ``deadline`` already passed.
        """
        if self._executed:
            raise RuntimeError("batch already executed; open a new one")
        if self.is_full:
            raise BatchFull(
                f"batch already holds {self._max_size} requests")
        if deadline is not None and self._clock() >= deadline:
            raise DeadlineExpired(
                f"deadline passed {self._clock() - deadline:.6f}s before "
                "admission")
        self._requests.append(_BatchRequest(
            instance=instance, greedy=bool(greedy), rng=rng,
            num_samples=num_samples, deadline=deadline))
        return len(self._requests) - 1

    # ------------------------------------------------------------------ #
    def _make_env(self, instance: USMDWInstance) -> SelectionEnv:
        if self._env_factory is not None:
            return self._env_factory(instance)
        return SelectionEnv(instance, self._solver.planner,
                            reuse_candidates=self._reuse_candidates)

    def execute(self) -> list[Solution | None]:
        """Decode every live admitted request in one lock-step batch.

        Returns one entry per ticket, in admission order: a
        :class:`~repro.core.solution.Solution`, or ``None`` for requests
        whose deadline expired while queued (shed without decoding).
        Raises ``ValueError`` on an empty batch.
        """
        if self._executed:
            raise RuntimeError("batch already executed; open a new one")
        self._executed = True
        solver = self._solver
        requests = self._requests
        if not requests:
            raise ValueError(
                "cannot execute an empty batch; admit at least one request")
        now = self._clock()
        live = [i for i, req in enumerate(requests)
                if req.deadline is None or now < req.deadline]
        results: list[Solution | None] = [None] * len(requests)
        if len(live) < len(requests):
            obs.count("solve_many.shed", len(requests) - len(live))
        if not live:
            return results

        start = time.perf_counter()
        plans = [solver._rollout_plan(requests[i].greedy, requests[i].rng,
                                      requests[i].num_samples)
                 for i in live]
        total_rollouts = sum(len(plan) for plan in plans)
        many_span = obs.span("solve_many", method=solver.name,
                             instances=len(live), rollouts=total_rollouts)
        with many_span, profile_scope("solve"):
            envs, env_seen = [], set()
            for i in live:
                env = self._make_env(requests[i].instance)
                envs.append(env)
                if id(env) not in env_seen:
                    env_seen.add(id(env))
                    # Scope the env's counters to this batch: warm envs
                    # supplied by a factory carry earlier batches' perf.
                    env.perf = PerfCounters()
            stats_fn = getattr(solver.planner, "stats", None)
            cache_before = stats_fn() if stats_fn is not None else None
            runner = MultiInstanceRunner([], solver.policy)
            for env, plan in zip(envs, plans):
                runner.admit(env, plan)
            with obs.span("select", rollouts=total_rollouts):
                with nn.no_grad():
                    grouped = runner.run_admitted()
            cache_delta = (stats_fn().diff(cache_before)
                           if cache_before is not None else None)
            elapsed = time.perf_counter() - start
            shared_time = elapsed / len(live)

            perf_seen: set[int] = set()
            for i, env, episodes in zip(live, envs, grouped):
                best_state = None
                best_phi = -float("inf")
                for episode in episodes:
                    phi = episode.state.phi()
                    if phi > best_phi:
                        best_phi = phi
                        best_state = episode.state
                if id(env) not in perf_seen:
                    perf_seen.add(id(env))
                    perf = env.perf
                else:
                    perf = PerfCounters()   # duplicate env: counted once
                if cache_delta is not None:
                    perf.merge(cache_delta)
                    cache_delta = None       # batch-wide delta, counted once
                obs.count("solve.count")
                obs.record_perf(perf, prefix="solve.")
                obs.gauge("solve.best_phi", best_phi)
                results[i] = Solution(
                    instance=requests[i].instance,
                    routes=best_state.assignments.routes(),
                    incentives=best_state.assignments.incentives(),
                    solver_name=solver.name,
                    wall_time=shared_time,
                    perf=perf,
                )
            obs.event("solve_many.done", method=solver.name,
                      instances=len(live), rollouts=total_rollouts,
                      wall_time=round(elapsed, 6))
        return results
