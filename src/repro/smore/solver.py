"""The SMORE solver facade (paper Algorithm 1).

Runs candidate assignment initialisation followed by iterative selection,
driven by a trained (or untrained) policy.  Also hosts the "w/o RL-AS"
ablation: the same iterative framework with a purely greedy
coverage-gain-first selection rule instead of the learned policy.
"""

from __future__ import annotations

import time

import numpy as np

from .. import nn
from ..core.instance import USMDWInstance
from ..core.solution import Solution
from ..tsptw.base import RoutePlanner
from .env import SelectionEnv
from .policy import FlatSelectionPolicy, TASNetPolicy
from .state import SelectionState

__all__ = ["SMORESolver", "GreedySelectionRule", "run_episode"]


def run_episode(env: SelectionEnv, policy, greedy: bool = True,
                rng: np.random.Generator | None = None,
                record_actions: bool = False):
    """Roll one full episode; return (state, total_reward, action_records)."""
    state = env.reset()
    policy.begin_episode(env.instance)
    total_reward = 0.0
    records = []
    while not state.done:
        action = policy.act(state, greedy=greedy, rng=rng)
        state, reward, _ = env.step(action.worker_id, action.task_id)
        total_reward += reward
        if record_actions:
            records.append(action)
    return state, total_reward, records


class GreedySelectionRule:
    """"w/o RL-AS" ablation: pick the pair with maximum coverage gain.

    Ties break toward the lower incentive cost, mirroring TVPG's rule but
    inside SMORE's exact-replanning framework.
    """

    def begin_episode(self, instance: USMDWInstance) -> None:
        self._instance = instance

    def act(self, state: SelectionState, greedy: bool = True,
            rng: np.random.Generator | None = None):
        from .policy import ActionRecord

        best = None
        best_key = None
        for worker_id in state.candidates.workers_with_candidates():
            for task_id, entry in sorted(
                    state.candidates.worker_candidates(worker_id).items()):
                gain = state.coverage.gain(self._instance.sensing_task(task_id))
                key = (-gain, entry.delta_incentive)
                if best_key is None or key < best_key:
                    best_key = key
                    best = (worker_id, task_id)
        return ActionRecord(best[0], best[1], nn.Tensor(0.0))


class RatioSelectionRule:
    """Coverage-incentive-ratio greedy: pick the pair maximising
    ``delta_phi / delta_in`` (the paper's soft-mask heuristic, Section IV-E,
    applied as a hard rule).  Used as the imitation-pretraining teacher and
    as a strong deterministic reference policy."""

    def begin_episode(self, instance: USMDWInstance) -> None:
        self._instance = instance

    def act(self, state: SelectionState, greedy: bool = True,
            rng: np.random.Generator | None = None):
        from .heuristics import SOFT_MASK_EPS
        from .policy import ActionRecord

        best = None
        best_key = None
        for worker_id in state.candidates.workers_with_candidates():
            for task_id, entry in sorted(
                    state.candidates.worker_candidates(worker_id).items()):
                gain = state.coverage.gain(self._instance.sensing_task(task_id))
                ratio = gain / max(entry.delta_incentive, SOFT_MASK_EPS)
                key = (-ratio, entry.delta_incentive)
                if best_key is None or key < best_key:
                    best_key = key
                    best = (worker_id, task_id)
        return ActionRecord(best[0], best[1], nn.Tensor(0.0))


class SMORESolver:
    """SMORE: candidate initialisation + policy-driven iterative selection.

    Parameters
    ----------
    planner:
        TSPTW backend (``f_TSPTW`` in Algorithm 1).
    policy:
        A :class:`TASNetPolicy`, :class:`FlatSelectionPolicy` ("w/o
        TASNet"), or :class:`GreedySelectionRule` ("w/o RL-AS").
    name:
        Label recorded on solutions (defaults by policy type).
    """

    def __init__(self, planner: RoutePlanner, policy, name: str | None = None):
        self.planner = planner
        self.policy = policy
        if name is None:
            name = {
                TASNetPolicy: "SMORE",
                FlatSelectionPolicy: "SMORE w/o TASNet",
                GreedySelectionRule: "SMORE w/o RL-AS",
            }.get(type(policy), "SMORE")
        self.name = name

    def solve(self, instance: USMDWInstance, greedy: bool = True,
              rng: np.random.Generator | None = None,
              num_samples: int = 1) -> Solution:
        """Solve one instance.

        ``greedy=True`` decodes with argmax actions (the paper's test-time
        protocol).  ``num_samples > 1`` enables sample-and-select-best
        inference — a standard neural-CO extension beyond the paper: the
        policy is rolled out stochastically ``num_samples`` times (plus one
        greedy rollout) and the best-coverage solution is returned.
        """
        start = time.perf_counter()
        best_state = None
        best_phi = -float("inf")
        rollouts = [(True, None)]
        if num_samples > 1:
            rng = rng or np.random.default_rng()
            rollouts += [(False, rng) for _ in range(num_samples - 1)]
        elif not greedy:
            rollouts = [(False, rng)]
        with nn.no_grad():
            for use_greedy, roll_rng in rollouts:
                env = SelectionEnv(instance, self.planner)
                state, _, _ = run_episode(env, self.policy,
                                          greedy=use_greedy, rng=roll_rng)
                if state.phi() > best_phi:
                    best_phi = state.phi()
                    best_state = state
        elapsed = time.perf_counter() - start
        return Solution(
            instance=instance,
            routes=best_state.assignments.routes(),
            incentives=best_state.assignments.incentives(),
            solver_name=self.name,
            wall_time=elapsed,
        )
