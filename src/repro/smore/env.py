"""The iterative-selection MDP (paper Section IV-A).

States are :class:`~repro.smore.state.SelectionState`; an action assigns
sensing task ``s_j`` to worker ``w_i``; the transition replays Algorithm 1
lines 12-23 (budget update, assignment update, candidate refresh); the
reward is the coverage gain ``r_t = phi(S'_{t+1}) - phi(S'_t)``.

Both SMORE inference (greedy policy) and TASNet training (sampled policy)
run episodes through this environment, which guarantees the learned policy
is optimised on exactly the dynamics the solver executes.

Repeated rollouts on the same environment are cheap: the initial candidate
table — the O(|W| x |S|) planner sweep of Algorithm 1 step 1 — is computed
once on the first :meth:`SelectionEnv.reset` and snapshotted; later resets
restore it via a structural copy instead of replanning every pair.  The
environment's :attr:`perf` counters record planner calls and per-phase wall
time (initialisation vs. selection) across all episodes it has run.
"""

from __future__ import annotations

import time

from .. import obs
from ..obs.profile import scope as profile_scope
from ..core.incentive import IncentiveModel
from ..core.instance import USMDWInstance
from ..core.perf import PerfCounters
from ..tsptw.base import RoutePlanner
from .candidates import CandidateTable
from .state import AssignmentState, SelectionState

__all__ = ["SelectionEnv"]


class SelectionEnv:
    """Environment wrapping one USMDW instance.

    Parameters
    ----------
    instance:
        The problem to solve.
    planner:
        TSPTW backend used for feasibility checks and route updates.
    reuse_candidates:
        When True (default) the initial candidate table is computed once
        and restored by copy on subsequent resets — sound because the
        initial table depends only on the (immutable) instance and the
        planner.  Set False to force a full replan on every reset.
    """

    def __init__(self, instance: USMDWInstance, planner: RoutePlanner,
                 reuse_candidates: bool = True):
        self.instance = instance
        self.planner = planner
        self.incentives = IncentiveModel(mu=instance.mu)
        self.reuse_candidates = reuse_candidates
        # Share the instance's packed arrays / travel-time matrix with the
        # planner (kernel engines), and bulk-fill the coverage bin cache so
        # rollouts never pay per-task binning on first touch.  Both are
        # no-ops for backends without the capability.
        bind = getattr(planner, "bind_instance", None)
        if bind is not None:
            bind(instance)
        instance.coverage.precompute_bins(instance.sensing_tasks)
        self.state: SelectionState | None = None
        self.perf = PerfCounters()
        self._snapshot: CandidateTable | None = None

    # ------------------------------------------------------------------ #
    def _initial_table(self) -> CandidateTable:
        """The post-initialisation candidate table, snapshotted on reuse."""
        if self._snapshot is not None and self.reuse_candidates:
            return self._snapshot.copy()
        with obs.span("init", workers=len(self.instance.workers),
                      tasks=len(self.instance.sensing_tasks)), \
                profile_scope("env.init"):
            table = CandidateTable(self.planner, self.incentives)
            table.initialize(self.instance.workers,
                             self.instance.sensing_tasks,
                             self.instance.budget)
        self.perf.planner_calls += table.planner_calls
        self.perf.init_planner_calls += table.planner_calls
        if self.reuse_candidates:
            # Snapshot only when later resets will restore it: holding the
            # live table while handing the same object to the state would
            # let episode mutations corrupt the "pristine" copy.
            self._snapshot = table
            return table.copy()
        return table

    def reset(self) -> SelectionState:
        """Step 1 of SMORE: candidate assignment initialisation."""
        start = time.perf_counter()
        self.state = SelectionState(
            candidates=self._initial_table(),
            assignments=AssignmentState(self.instance.workers),
            workers=self.instance.workers,
            budget_rest=self.instance.budget,
            coverage=self.instance.coverage.new_state(),
            unselected={s.task_id: s for s in self.instance.sensing_tasks},
        )
        self.perf.init_time += time.perf_counter() - start
        self.perf.rollouts += 1
        return self.state

    # ------------------------------------------------------------------ #
    def step(self, worker_id: int, task_id: int) -> tuple[SelectionState, float, bool]:
        """Apply action ``(w*, s*)``; return (state, reward, done).

        Raises ``KeyError`` when the pair is not a current candidate —
        actions must come from ``state.candidates``.
        """
        return self.step_state(self._require_state(), worker_id, task_id)

    def step_state(self, state: SelectionState, worker_id: int,
                   task_id: int) -> tuple[SelectionState, float, bool]:
        """Apply an action to an explicit state (batched rollouts).

        The batched decode engine holds K states from K :meth:`reset`
        calls and advances each independently; dynamics and perf
        accounting are identical to :meth:`step`.
        """
        entry = state.candidates.get(worker_id, task_id)
        if entry is None:
            raise KeyError(
                f"(worker {worker_id}, task {task_id}) is not a feasible candidate")
        with profile_scope("env.step"):
            return self._apply_step(state, worker_id, task_id, entry)

    def _apply_step(self, state: SelectionState, worker_id: int,
                    task_id: int, entry) -> tuple[SelectionState, float, bool]:
        start = time.perf_counter()
        calls_before = state.candidates.planner_calls
        task = self.instance.sensing_task(task_id)
        worker = self.instance.worker(worker_id)

        phi_before = state.coverage.phi()

        # Lines 12-14: budget, M, S'.
        state.budget_rest -= entry.delta_incentive
        state.assignments.apply(worker_id, task, entry)
        state.selected.append(task)
        state.coverage.add(task)
        state.step_count += 1

        # Lines 15-16: the task is no longer available to anyone.
        state.candidates.remove_task(task_id)
        # Spending budget may strand other workers' candidates.
        state.candidates.prune_over_budget(state.budget_rest)

        # Lines 17-23: refresh the selected worker's row.  The pool of
        # still-available tasks is maintained incrementally on the state
        # (one dict pop per step) rather than rebuilt from the full task
        # list; its iteration order is the pool order by construction.
        state.unselected.pop(task_id, None)
        available = list(state.unselected.values())
        slot = state.assignments[worker_id]
        current_tasks = slot.route.tasks if slot.route is not None else None
        state.candidates.recompute_worker(
            worker, slot.assigned, available, slot.incentive, state.budget_rest,
            current_route_tasks=current_tasks,
            min_position=self._worker_min_position(state, worker_id))

        reward = state.coverage.phi() - phi_before
        self.perf.planner_calls += state.candidates.planner_calls - calls_before
        self.perf.selection_time += time.perf_counter() - start
        return state, reward, state.done

    # ------------------------------------------------------------------ #
    def _worker_min_position(self, state: SelectionState,
                             worker_id: int) -> int:
        """Committed-route anchor for a worker's insertions.

        The static environment plans from departure, so every position is
        open; the dynamic environment overrides this with the worker's
        committed mid-route lock.
        """
        return 0

    # ------------------------------------------------------------------ #
    def _require_state(self) -> SelectionState:
        if self.state is None:
            raise RuntimeError("call reset() before step()")
        return self.state
