"""Candidate assignment table ``C`` (Algorithm 1, step 1 and lines 15-23).

``C[w][s]`` holds, for every *feasible* sensing-task/worker pair, the
working route the TSPTW solver found after assigning ``s`` to ``w`` on top
of the worker's current assignment, and the additional incentive that
assignment would cost.  A pair is feasible iff such a route respects the
worker's time constraint and the additional incentive fits the remaining
budget (Section III-B).

Planners exposing ``plan_insertions_many`` (the insertion solver's batched
kernel sweep, optionally behind :class:`~repro.tsptw.cache.CachedPlanner`)
get the whole init/recompute sweep as one batched call per worker;
``planner_calls`` still counts one logical plan per task, so accounting is
identical to the per-task loop.

Beyond the rows themselves the table maintains two incremental indices —
a task -> workers reverse map and the set of non-empty rows — so that
``remove_task``, ``workers_with_candidates``, ``candidate_task_ids`` and
the ``empty`` check cost O(affected entries) instead of rescanning every
row on every step.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.entities import SensingTask, Worker
from ..core.incentive import IncentiveModel
from ..core.route import WorkingRoute
from ..tsptw.base import RoutePlanner

__all__ = ["CandidateEntry", "CandidateTable"]


class CandidateEntry:
    """Value stored in C: the route after assignment and its marginal cost.

    ``route`` may be given as a zero-argument factory instead of a built
    :class:`WorkingRoute`: a candidate sweep scores dozens of insertions
    per step but only the *chosen* entry's route is ever walked, so the
    factory defers (and usually skips entirely) route construction.  The
    first ``route`` access materialises and caches it.

    ``position`` records where the insertion scan placed the task in the
    worker's route at computation time (None when the planner did not
    report one).  Dynamic re-planning uses it to decide, when a worker's
    committed mid-route position advances, which entries must be re-swept:
    an entry whose position is already past the new anchor provably equals
    the anchored rescan and is kept as-is.
    """

    __slots__ = ("_route", "route_travel_time", "delta_incentive", "position")

    def __init__(self, route, route_travel_time: float,
                 delta_incentive: float, position: int | None = None):
        self._route = route
        self.route_travel_time = route_travel_time
        self.delta_incentive = delta_incentive
        self.position = position

    @property
    def route(self) -> WorkingRoute:
        if callable(self._route):
            self._route = self._route()
        return self._route


class CandidateTable:
    """Feasible sensing-task/worker assignment pairs, updated iteratively."""

    def __init__(self, planner: RoutePlanner, incentives: IncentiveModel):
        self.planner = planner
        self.incentives = incentives
        self._table: dict[int, dict[int, CandidateEntry]] = {}
        # Incremental indices: which workers hold each task, which rows are
        # non-empty, and a lazily rebuilt workers_with_candidates() list
        # (kept in _table order, which selection tie-breaking observes).
        self._task_workers: dict[int, set[int]] = {}
        self._nonempty: set[int] = set()
        self._workers_cache: list[int] | None = None
        self.planner_calls = 0

    # ------------------------------------------------------------------ #
    def initialize(self, workers: Sequence[Worker],
                   sensing_tasks: Sequence[SensingTask],
                   budget_rest: float) -> None:
        """Algorithm 1 lines 4-9: try every (worker, task) pair.

        Each worker's base route (travel tasks only) is planned once; every
        sensing task is then checked by insertion into it — batched when
        the planner supports it, per-task otherwise — or by a full re-plan
        for planners without incremental insertion.
        """
        self._table = {w.worker_id: {} for w in workers}
        self._task_workers = {}
        self._nonempty = set()
        self._workers_cache = None
        plan_many = getattr(self.planner, "plan_many", None)
        insertion = getattr(self.planner, "plan_with_insertion", None)
        insert_many = getattr(self.planner, "plan_insertions_many", None)
        sensing_tasks = list(sensing_tasks)
        for worker in workers:
            base = self.planner.base_route(worker)
            self.incentives.set_base_rtt(worker, base.route_travel_time)
            if not base.feasible:
                continue  # the worker cannot even complete their own trip
            base_tasks = base.route.tasks if base.route is not None else ()
            row: dict[int, CandidateEntry] = {}
            if insert_many is not None:
                # Batched insertion path (kernel sweep): one call per
                # worker, one logical plan per task.
                results = insert_many(worker, base_tasks, sensing_tasks)
                self.planner_calls += len(sensing_tasks)
                for task, result in zip(sensing_tasks, results):
                    entry = self._entry_from_result(worker, result, 0.0,
                                                    budget_rest)
                    if entry is not None:
                        row[task.task_id] = entry
            elif plan_many is not None and insertion is None:
                # Batched path (RL backends): one encoder pass per worker.
                results = plan_many(worker, [[task] for task in sensing_tasks])
                self.planner_calls += len(sensing_tasks)
                for task, result in zip(sensing_tasks, results):
                    entry = self._entry_from_result(worker, result, 0.0,
                                                    budget_rest)
                    if entry is not None:
                        row[task.task_id] = entry
            else:
                for task in sensing_tasks:
                    entry = self._try_assignment(worker, [task], 0.0,
                                                 budget_rest,
                                                 base_tasks=base_tasks)
                    if entry is not None:
                        row[task.task_id] = entry
            self._commit_row(worker.worker_id, row)

    def _entry_from_result(self, worker: Worker, result,
                           current_incentive: float,
                           budget_rest: float) -> CandidateEntry | None:
        if not result.feasible:
            return None
        rtt = result.route_travel_time
        delta = self.incentives.incentive(worker, rtt) - current_incentive
        if delta > budget_rest:
            # Strict >: the paper's constraint is <=, so an assignment that
            # exactly exhausts the remaining budget stays feasible.
            return None
        factory = getattr(result, "make_route", None)
        return CandidateEntry(factory if factory is not None
                              else result.route, rtt, delta,
                              position=getattr(result, "pos", None))

    def _try_assignment(self, worker: Worker,
                        tasks_after: Sequence[SensingTask],
                        current_incentive: float,
                        budget_rest: float,
                        base_tasks: Sequence | None = None) -> CandidateEntry | None:
        self.planner_calls += 1
        insert_fn = getattr(self.planner, "plan_with_insertion", None)
        if base_tasks is not None and insert_fn is not None:
            result = insert_fn(worker, base_tasks, tasks_after[-1])
        else:
            result = self.planner.plan(worker, tasks_after)
        if not result.feasible:
            return None
        rtt = result.route_travel_time
        delta = self.incentives.incentive(worker, rtt) - current_incentive
        if delta > budget_rest:
            return None
        return CandidateEntry(result.route, rtt, delta)

    # ------------------------------------------------------------------ #
    # Incremental index maintenance
    # ------------------------------------------------------------------ #
    def _commit_row(self, worker_id: int,
                    row: dict[int, CandidateEntry]) -> None:
        """Replace a worker's row and update both indices."""
        old = self._table.get(worker_id)
        if old:
            for task_id in old:
                self._unindex(task_id, worker_id)
        self._table[worker_id] = row
        for task_id in row:
            self._task_workers.setdefault(task_id, set()).add(worker_id)
        was_nonempty = worker_id in self._nonempty
        if row and not was_nonempty:
            self._nonempty.add(worker_id)
            self._workers_cache = None
        elif not row and was_nonempty:
            self._nonempty.discard(worker_id)
            self._workers_cache = None

    def _unindex(self, task_id: int, worker_id: int) -> None:
        holders = self._task_workers.get(task_id)
        if holders is not None:
            holders.discard(worker_id)
            if not holders:
                del self._task_workers[task_id]

    def _drop_entry(self, worker_id: int, task_id: int) -> None:
        row = self._table[worker_id]
        del row[task_id]
        self._unindex(task_id, worker_id)
        if not row:
            self._nonempty.discard(worker_id)
            self._workers_cache = None

    # ------------------------------------------------------------------ #
    def copy(self) -> "CandidateTable":
        """Cheap structural copy for snapshot reuse.

        Rows are copied dict-by-dict; the :class:`CandidateEntry` values are
        frozen and shared.  ``planner_calls`` carries over so the copy still
        reports the cost of building the table it restores — no new planner
        calls are issued by the copy itself.
        """
        clone = CandidateTable(self.planner, self.incentives)
        clone._table = {worker_id: dict(row)
                        for worker_id, row in self._table.items()}
        clone._task_workers = {task_id: set(holders)
                               for task_id, holders
                               in self._task_workers.items()}
        clone._nonempty = set(self._nonempty)
        clone.planner_calls = self.planner_calls
        return clone

    def remove_task(self, task_id: int) -> None:
        """Line 16: drop a completed task from every worker's candidates.

        The reverse index makes this O(workers holding the task) instead
        of touching every row.
        """
        for worker_id in self._task_workers.pop(task_id, ()):
            row = self._table[worker_id]
            del row[task_id]
            if not row:
                self._nonempty.discard(worker_id)
                self._workers_cache = None

    def recompute_worker(self, worker: Worker,
                         assigned: Sequence[SensingTask],
                         available: Iterable[SensingTask],
                         current_incentive: float,
                         budget_rest: float,
                         current_route_tasks: Sequence | None = None,
                         min_position: int = 0) -> None:
        """Lines 17-23: refresh the selected worker's candidate row.

        ``current_route_tasks`` — the worker's committed route order — lets
        incremental planners check each candidate by single insertion
        (batched into one call when the planner supports it).
        ``min_position`` anchors every insertion at the worker's committed
        mid-route position (dynamic re-planning); it requires an
        insertion-capable planner, since a full re-plan cannot honour a
        committed prefix.
        """
        row: dict[int, CandidateEntry] = {}
        insert_many = getattr(self.planner, "plan_insertions_many", None)
        plan_many = getattr(self.planner, "plan_many", None)
        if insert_many is not None and current_route_tasks is not None:
            available = list(available)
            results = insert_many(worker, current_route_tasks, available,
                                  min_position=min_position)
            self.planner_calls += len(available)
            for task, result in zip(available, results):
                entry = self._entry_from_result(worker, result,
                                                current_incentive, budget_rest)
                if entry is not None:
                    row[task.task_id] = entry
            self._commit_row(worker.worker_id, row)
            return
        if min_position > 0:
            raise TypeError(
                "anchored recompute (min_position > 0) requires a planner "
                "with plan_insertions_many and the worker's current route")
        if plan_many is not None and getattr(
                self.planner, "plan_with_insertion", None) is None:
            available = list(available)
            sets = [list(assigned) + [task] for task in available]
            results = plan_many(worker, sets)
            self.planner_calls += len(sets)
            for task, result in zip(available, results):
                entry = self._entry_from_result(worker, result,
                                                current_incentive, budget_rest)
                if entry is not None:
                    row[task.task_id] = entry
            self._commit_row(worker.worker_id, row)
            return
        for task in available:
            entry = self._try_assignment(
                worker, list(assigned) + [task], current_incentive, budget_rest,
                base_tasks=current_route_tasks)
            if entry is not None:
                row[task.task_id] = entry
        self._commit_row(worker.worker_id, row)

    # ------------------------------------------------------------------ #
    # Incremental repair (streaming arrivals / expiries / re-anchoring)
    # ------------------------------------------------------------------ #
    def _insertion_results(self, worker: Worker, route_tasks: Sequence,
                           tasks: Sequence[SensingTask],
                           min_position: int) -> list:
        """Anchored insertion results for ``tasks`` into one route order.

        One batched call when the planner sweeps
        (``plan_insertions_many``), a per-task loop when it only offers
        ``plan_with_insertion``; accounting matches the initialize /
        recompute sweeps (one logical plan per task).  Repair is an
        insertion-native operation, so planners without an insertion path
        are rejected outright.
        """
        insert_many = getattr(self.planner, "plan_insertions_many", None)
        if insert_many is not None:
            self.planner_calls += len(tasks)
            return insert_many(worker, route_tasks, tasks,
                               min_position=min_position)
        insert_fn = getattr(self.planner, "plan_with_insertion", None)
        if insert_fn is None:
            raise TypeError(
                "incremental candidate repair requires an insertion-capable "
                "planner (plan_insertions_many or plan_with_insertion)")
        results = []
        for task in tasks:
            self.planner_calls += 1
            results.append(insert_fn(worker, route_tasks, task,
                                     min_position=min_position))
        return results

    def _add_entry(self, worker_id: int, task_id: int,
                   entry: CandidateEntry) -> None:
        """Insert (or update) one entry, maintaining both indices."""
        row = self._table[worker_id]
        was_empty = not row
        row[task_id] = entry
        self._task_workers.setdefault(task_id, set()).add(worker_id)
        if was_empty:
            self._nonempty.add(worker_id)
            self._workers_cache = None

    def add_tasks(self, new_tasks: Sequence[SensingTask],
                  worker_states: Iterable[tuple],
                  budget_rest: float) -> None:
        """Repair after arrivals: sweep the new tasks against each worker.

        ``worker_states`` yields ``(worker, route_tasks, incentive,
        min_position)`` for every worker that can still accept tasks — its
        committed route order, the incentive currently owed, and the
        anchor of its committed mid-route position.  Each worker gets one
        batched anchored sweep over the arrival batch; feasible entries
        are *appended* to its row, which keeps row iteration order equal
        to a fresh rebuild over the arrival-ordered task pool.
        """
        new_tasks = list(new_tasks)
        if not new_tasks:
            return
        for worker, route_tasks, incentive, min_position in worker_states:
            if worker.worker_id not in self._table:
                self._table[worker.worker_id] = {}
            results = self._insertion_results(worker, route_tasks, new_tasks,
                                              min_position)
            for task, result in zip(new_tasks, results):
                entry = self._entry_from_result(worker, result, incentive,
                                                budget_rest)
                if entry is not None:
                    self._add_entry(worker.worker_id, task.task_id, entry)

    def add_task(self, task: SensingTask, worker_states: Iterable[tuple],
                 budget_rest: float) -> None:
        """Single-arrival convenience wrapper over :meth:`add_tasks`."""
        self.add_tasks([task], worker_states, budget_rest)

    def expire_task(self, task_id: int) -> bool:
        """Repair after an expiry: drop the task from every row.

        Identical to :meth:`remove_task` (an expired task and a selected
        task leave the table the same way); returns whether any worker
        still held it, which rejection accounting reports.
        """
        present = task_id in self._task_workers
        self.remove_task(task_id)
        return present

    def reanchor_worker(self, worker: Worker, route_tasks: Sequence,
                        tasks_by_id: dict[int, SensingTask],
                        current_incentive: float, budget_rest: float,
                        min_position: int) -> int:
        """Repair after time passes: advance a worker's committed anchor.

        Only entries the new anchor invalidates — recorded insertion
        position before ``min_position``, or no recorded position — are
        re-swept (one batched anchored call); the rest are provably
        identical to an anchored rescan and keep their values.  An entry
        that loses every anchored position is dropped; a task absent from
        the row cannot re-enter (the feasible position set only shrinks as
        the anchor advances).  Returns the number of entries re-swept.
        """
        row = self._table.get(worker.worker_id)
        if not row:
            return 0
        stale_ids = [task_id for task_id, entry in row.items()
                     if entry.position is None
                     or entry.position < min_position]
        if not stale_ids:
            return 0
        stale = [tasks_by_id[task_id] for task_id in stale_ids]
        results = self._insertion_results(worker, route_tasks, stale,
                                          min_position)
        for task, result in zip(stale, results):
            entry = self._entry_from_result(worker, result,
                                            current_incentive, budget_rest)
            if entry is None:
                self._drop_entry(worker.worker_id, task.task_id)
            else:
                row[task.task_id] = entry  # in-place: row order preserved
        return len(stale_ids)

    def add_worker(self, worker: Worker, tasks: Sequence[SensingTask],
                   budget_rest: float, min_position: int = 0) -> bool:
        """Repair after a late worker arrival: build its row from scratch.

        Plans the worker's base route (recording its base travel time with
        the incentive model), then sweeps every current task against it.
        The row is appended, so ``workers_with_candidates()`` order stays
        the arrival order.  Returns False — with an empty committed row —
        when the worker cannot even complete their own trip.
        """
        base = self.planner.base_route(worker)
        self.incentives.set_base_rtt(worker, base.route_travel_time)
        self._commit_row(worker.worker_id, {})
        if not base.feasible:
            return False
        base_tasks = base.route.tasks if base.route is not None else ()
        results = self._insertion_results(worker, base_tasks, list(tasks),
                                          min_position)
        for task, result in zip(tasks, results):
            entry = self._entry_from_result(worker, result, 0.0, budget_rest)
            if entry is not None:
                self._add_entry(worker.worker_id, task.task_id, entry)
        return True

    def rebuild(self, worker_states: Iterable[tuple],
                tasks: Sequence[SensingTask], budget_rest: float) -> None:
        """Fresh anchored build over the current task pool.

        The from-scratch reference the incremental repair path is tested
        against (and the dynamic env's ``repair=False`` mode): every
        worker's row is recomputed with one anchored sweep over the whole
        pool.  ``worker_states`` yields ``(worker, route_tasks, incentive,
        min_position)``; a ``route_tasks`` of None marks a stranded worker
        (infeasible own trip), whose row stays empty.
        """
        worker_states = list(worker_states)
        tasks = list(tasks)
        self._table = {worker.worker_id: {}
                       for worker, _, _, _ in worker_states}
        self._task_workers = {}
        self._nonempty = set()
        self._workers_cache = None
        for worker, route_tasks, incentive, min_position in worker_states:
            if route_tasks is None:
                continue
            row: dict[int, CandidateEntry] = {}
            results = self._insertion_results(worker, route_tasks, tasks,
                                              min_position)
            for task, result in zip(tasks, results):
                entry = self._entry_from_result(worker, result, incentive,
                                                budget_rest)
                if entry is not None:
                    row[task.task_id] = entry
            self._commit_row(worker.worker_id, row)

    def prune_over_budget(self, budget_rest: float) -> None:
        """Drop entries whose marginal cost no longer fits the budget.

        Needed after *any* selection: spending budget on worker A can make
        a previously feasible pair of worker B unaffordable.
        """
        for worker_id, row in self._table.items():
            doomed = [t for t, e in row.items()
                      if e.delta_incentive > budget_rest]
            for task_id in doomed:
                self._drop_entry(worker_id, task_id)

    # ------------------------------------------------------------------ #
    def get(self, worker_id: int, task_id: int) -> CandidateEntry | None:
        return self._table.get(worker_id, {}).get(task_id)

    def worker_candidates(self, worker_id: int) -> dict[int, CandidateEntry]:
        return self._table.get(worker_id, {})

    def workers_with_candidates(self) -> list[int]:
        """Worker ids with at least one candidate, in table order.

        Rebuilt only when a row transitions between empty and non-empty
        (rare), so repeated calls within a selection step are O(1).
        """
        cache = self._workers_cache
        if cache is None:
            cache = [w for w in self._table if w in self._nonempty]
            self._workers_cache = cache
        return cache

    def candidate_task_ids(self) -> set[int]:
        return set(self._task_workers)

    def num_candidate_tasks(self) -> int:
        """Distinct tasks still assignable somewhere (O(1))."""
        return len(self._task_workers)

    @property
    def empty(self) -> bool:
        return not self._task_workers

    def num_pairs(self) -> int:
        return sum(len(row) for row in self._table.values())

    def __contains__(self, pair: tuple[int, int]) -> bool:
        worker_id, task_id = pair
        return task_id in self._table.get(worker_id, {})
