"""USMDW problem instances (paper Section II-B).

An instance bundles everything the problem statement fixes: the worker set,
the sensing-task set, the budget, the incentive rate, and the coverage
objective configuration.  :func:`make_sensing_grid_tasks` builds the
uniformly created sensing-task set of the paper's experiments (one task per
spatial cell and time slot, Section V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .coverage import CoverageModel
from .entities import SensingTask, Worker
from .errors import InvalidInstanceError
from .geometry import DEFAULT_SPEED, Grid

__all__ = ["USMDWInstance", "make_sensing_grid_tasks"]


def make_sensing_grid_tasks(grid: Grid, time_span: float, window_minutes: float,
                            service_time: float = 1.0,
                            density: float = 1.0,
                            rng: np.random.Generator | None = None,
                            start_id: int = 0) -> list[SensingTask]:
    """Uniformly create sensing tasks over the spatio-temporal range.

    One candidate task exists per (cell, slot); ``density`` in (0, 1]
    subsamples them uniformly at random (used to scale experiments down to
    CPU size while keeping the uniform spatio-temporal spread).
    """
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    num_slots = max(1, int(time_span // window_minutes))
    candidates = []
    for i in range(grid.nx):
        for j in range(grid.ny):
            center = grid.cell_center(i, j)
            for slot in range(num_slots):
                tw_start = slot * window_minutes
                tw_end = min(tw_start + window_minutes, time_span)
                if tw_end - tw_start < service_time:
                    continue
                candidates.append((center, tw_start, tw_end))
    if density < 1.0:
        if rng is None:
            rng = np.random.default_rng()
        keep = max(1, int(round(len(candidates) * density)))
        indices = sorted(rng.choice(len(candidates), size=keep, replace=False))
        candidates = [candidates[i] for i in indices]
    return [
        SensingTask(start_id + k, loc, tw_s, tw_e, service_time)
        for k, (loc, tw_s, tw_e) in enumerate(candidates)
    ]


@dataclass(frozen=True)
class USMDWInstance:
    """One Urban-Sensing-for-Multi-Destination-Workers problem.

    Attributes mirror the problem statement: sensing task set ``S``, budget
    ``B``, incentive rate ``mu``, worker set ``W``, plus the coverage model
    defining the objective ``phi``.
    """

    workers: tuple[Worker, ...]
    sensing_tasks: tuple[SensingTask, ...]
    budget: float
    mu: float
    coverage: CoverageModel
    speed: float = DEFAULT_SPEED
    name: str = "usmdw"
    _worker_index: dict[int, Worker] = field(init=False, repr=False, compare=False)
    _task_index: dict[int, SensingTask] = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        if not isinstance(self.workers, tuple):
            object.__setattr__(self, "workers", tuple(self.workers))
        if not isinstance(self.sensing_tasks, tuple):
            object.__setattr__(self, "sensing_tasks", tuple(self.sensing_tasks))
        self.validate()
        object.__setattr__(self, "_worker_index",
                           {w.worker_id: w for w in self.workers})
        object.__setattr__(self, "_task_index",
                           {s.task_id: s for s in self.sensing_tasks})

    def validate(self) -> None:
        """Raise :class:`InvalidInstanceError` on structural problems."""
        if self.budget < 0:
            raise InvalidInstanceError(f"budget must be >= 0, got {self.budget}")
        if self.mu <= 0:
            raise InvalidInstanceError(f"mu must be > 0, got {self.mu}")
        if self.speed <= 0:
            raise InvalidInstanceError(f"speed must be > 0, got {self.speed}")
        worker_ids = [w.worker_id for w in self.workers]
        if len(set(worker_ids)) != len(worker_ids):
            raise InvalidInstanceError("duplicate worker ids")
        task_ids = [s.task_id for s in self.sensing_tasks]
        if len(set(task_ids)) != len(task_ids):
            raise InvalidInstanceError("duplicate sensing task ids")
        region = self.coverage.grid.region
        for task in self.sensing_tasks:
            if not region.contains(task.location):
                raise InvalidInstanceError(
                    f"sensing task {task.task_id} at {task.location} lies "
                    f"outside the region {region}")
            if task.tw_end > self.coverage.time_span + 1e-9:
                raise InvalidInstanceError(
                    f"sensing task {task.task_id} window ends after the "
                    f"project time span {self.coverage.time_span}")

    # ------------------------------------------------------------------ #
    @property
    def num_workers(self) -> int:
        return len(self.workers)

    @property
    def num_sensing_tasks(self) -> int:
        return len(self.sensing_tasks)

    def worker(self, worker_id: int) -> Worker:
        return self._worker_index[worker_id]

    def sensing_task(self, task_id: int) -> SensingTask:
        return self._task_index[task_id]

    def describe(self) -> str:
        """One-line human-readable summary used by the experiment runner."""
        grid = self.coverage.grid
        return (f"{self.name}: |W|={self.num_workers} |S|={self.num_sensing_tasks} "
                f"B={self.budget:g} mu={self.mu:g} grid={grid.nx}x{grid.ny} "
                f"span={self.coverage.time_span:g}min alpha={self.coverage.alpha:g}")
