"""Solution container shared by SMORE and all baseline solvers.

A solution to a USMDW instance is a set of working routes — one per
recruited worker — plus the bookkeeping the evaluation needs: the set of
completed sensing tasks, the objective value, the budget spent, and the
wall-clock time the solver took.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .coverage import CoverageModel
from .entities import SensingTask, Worker
from .incentive import IncentiveModel
from .instance import USMDWInstance
from .perf import PerfCounters
from .route import WorkingRoute

__all__ = ["Solution"]


@dataclass
class Solution:
    """The output of an assignment solver on one instance."""

    instance: USMDWInstance
    routes: dict[int, WorkingRoute] = field(default_factory=dict)
    incentives: dict[int, float] = field(default_factory=dict)
    solver_name: str = "unknown"
    wall_time: float = 0.0
    #: Optional planner/cache/phase-timing accounting for solvers that
    #: report it (SMORE does; baselines may leave it None).
    perf: PerfCounters | None = None

    @property
    def completed_tasks(self) -> list[SensingTask]:
        tasks: list[SensingTask] = []
        for route in self.routes.values():
            tasks.extend(route.sensing_tasks)
        return tasks

    @property
    def num_completed(self) -> int:
        return len(self.completed_tasks)

    @property
    def objective(self) -> float:
        """Hierarchical entropy-based data coverage phi(S')."""
        return self.instance.coverage.phi(self.completed_tasks)

    @property
    def total_incentive(self) -> float:
        return sum(self.incentives.values())

    @property
    def budget_remaining(self) -> float:
        return self.instance.budget - self.total_incentive

    # ------------------------------------------------------------------ #
    def validate(self, incentive_model: IncentiveModel | None = None,
                 atol: float = 1e-6) -> list[str]:
        """Check every USMDW constraint; return a list of violations.

        Verified: (1) each route is time-feasible and covers the worker's
        mandatory travel tasks, (2) no sensing task is completed twice,
        (3) total incentive fits the budget, and — when an incentive model
        is supplied — (4) the recorded incentives match Definition 6.
        """
        problems: list[str] = []
        seen: set[int] = set()
        for worker_id, route in self.routes.items():
            worker = self.instance.worker(worker_id)
            if route.worker.worker_id != worker_id:
                problems.append(f"route stored under wrong worker {worker_id}")
            timing = route.simulate()
            if not timing.feasible:
                problems.append(f"worker {worker_id}: route violates time constraints")
            if not route.covers_all_travel_tasks():
                problems.append(f"worker {worker_id}: mandatory travel tasks missing")
            if timing.arrival_at_destination > worker.latest_arrival + atol:
                problems.append(f"worker {worker_id}: arrives after latest_arrival")
            for task in route.sensing_tasks:
                if task.task_id in seen:
                    problems.append(
                        f"sensing task {task.task_id} completed by multiple workers")
                seen.add(task.task_id)
        if self.total_incentive > self.instance.budget + atol:
            problems.append(
                f"budget exceeded: {self.total_incentive} > {self.instance.budget}")
        if incentive_model is not None:
            for worker_id, route in self.routes.items():
                expected = incentive_model.incentive(
                    self.instance.worker(worker_id), route.route_travel_time)
                recorded = self.incentives.get(worker_id, 0.0)
                if not math.isclose(expected, recorded, abs_tol=1e-4):
                    problems.append(
                        f"worker {worker_id}: incentive {recorded} != "
                        f"expected {expected}")
        return problems

    def is_valid(self, incentive_model: IncentiveModel | None = None) -> bool:
        return not self.validate(incentive_model)

    def to_dict(self) -> dict:
        """JSON-serialisable export: per-worker routes with stop timings.

        Intended for downstream consumers (dispatch apps, dashboards) that
        need the planned schedules without the library's object model.
        """
        workers = {}
        for worker_id, route in self.routes.items():
            timing = route.simulate()
            workers[str(worker_id)] = {
                "incentive": self.incentives.get(worker_id, 0.0),
                "departure": timing.departure,
                "arrival": timing.arrival_at_destination,
                "stops": [
                    {
                        "task_id": stop.task.task_id,
                        "kind": ("sensing" if isinstance(stop.task, SensingTask)
                                 else "travel"),
                        "x": stop.task.location.x,
                        "y": stop.task.location.y,
                        "arrival": stop.arrival,
                        "service_start": stop.service_start,
                        "finish": stop.finish,
                    }
                    for stop in timing.stops
                ],
            }
        payload = {
            "solver": self.solver_name,
            "objective": self.objective,
            "completed_tasks": sorted(t.task_id for t in self.completed_tasks),
            "total_incentive": self.total_incentive,
            "budget": self.instance.budget,
            "wall_time": self.wall_time,
            "workers": workers,
        }
        if self.perf is not None:
            payload["perf"] = self.perf.to_dict()
        return payload

    def summary(self) -> str:
        return (f"{self.solver_name}: phi={self.objective:.3f} "
                f"|S'|={self.num_completed} spent={self.total_incentive:.1f}"
                f"/{self.instance.budget:g} time={self.wall_time:.2f}s")
