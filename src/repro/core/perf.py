"""Performance counters shared by the solver, cache, and reporting layers.

One :class:`PerfCounters` instance travels with each solve: the selection
environment accounts planner calls and per-phase wall time (candidate
initialisation vs. iterative selection), a :class:`~repro.tsptw.cache.CachedPlanner`
contributes hit/miss/size statistics, and the experiment reporting layer
aggregates and prints them so regressions in the hot path are visible in
every benchmark run.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields

__all__ = ["PerfCounters"]


@dataclass
class PerfCounters:
    """Counters for one solve (or one aggregation of solves).

    ``planner_calls`` counts every TSPTW planning call issued;
    ``init_planner_calls`` is the subset spent on candidate-table
    initialisation (Algorithm 1 step 1).  With snapshot reuse the init
    portion is paid once per (instance, planner) no matter how many
    rollouts run.

    ``backend_calls`` counts true backend invocations, which can be far
    fewer than ``planner_calls``: a batched ``plan_many`` serves many
    logical plans with one backend call, and a cache hit serves one with
    none.  The distinction is exactly what the batched path optimises, so
    both are reported.
    """

    planner_calls: int = 0
    init_planner_calls: int = 0
    backend_calls: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_size: int = 0
    cache_evictions: int = 0
    init_time: float = 0.0
    selection_time: float = 0.0
    rollouts: int = 0

    # ------------------------------------------------------------------ #
    @property
    def cache_hit_rate(self) -> float:
        """Fraction of cache lookups served from memory (0 when unused)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def total_time(self) -> float:
        return self.init_time + self.selection_time

    # ------------------------------------------------------------------ #
    def merge(self, other: "PerfCounters") -> "PerfCounters":
        """Accumulate ``other`` into self (cache size keeps the maximum)."""
        self.planner_calls += other.planner_calls
        self.init_planner_calls += other.init_planner_calls
        self.backend_calls += other.backend_calls
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_size = max(self.cache_size, other.cache_size)
        self.cache_evictions += other.cache_evictions
        self.init_time += other.init_time
        self.selection_time += other.selection_time
        self.rollouts += other.rollouts
        return self

    def diff(self, baseline: "PerfCounters") -> "PerfCounters":
        """The delta accumulated since ``baseline`` (an earlier snapshot).

        Additive fields subtract; ``cache_size`` keeps the current value
        (it merges by maximum, so merging the delta into the baseline
        reproduces this snapshot).  Used to scope a long-lived planner
        cache's accounting to one solve — and to ship per-chunk cache
        activity back from fork-pool workers instead of losing it.
        """
        return PerfCounters(
            planner_calls=self.planner_calls - baseline.planner_calls,
            init_planner_calls=(self.init_planner_calls
                                - baseline.init_planner_calls),
            backend_calls=self.backend_calls - baseline.backend_calls,
            cache_hits=self.cache_hits - baseline.cache_hits,
            cache_misses=self.cache_misses - baseline.cache_misses,
            cache_size=self.cache_size,
            cache_evictions=self.cache_evictions - baseline.cache_evictions,
            init_time=self.init_time - baseline.init_time,
            selection_time=self.selection_time - baseline.selection_time,
            rollouts=self.rollouts - baseline.rollouts,
        )

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["cache_hit_rate"] = self.cache_hit_rate
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "PerfCounters":
        """Inverse of :meth:`to_dict` (derived/unknown keys are ignored)."""
        names = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in payload.items()
                      if key in names})

    def summary(self) -> str:
        parts = [f"planner_calls={self.planner_calls}"
                 f" (init {self.init_planner_calls})"]
        if self.backend_calls:
            parts.append(f"backend_calls={self.backend_calls}")
        if self.cache_hits or self.cache_misses:
            parts.append(f"cache_hit_rate={self.cache_hit_rate:.0%}"
                         f" size={self.cache_size}")
        parts.append(f"init={self.init_time:.3f}s"
                     f" select={self.selection_time:.3f}s")
        if self.rollouts:
            parts.append(f"rollouts={self.rollouts}")
        return " ".join(parts)
