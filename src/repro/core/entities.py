"""Domain entities of USMDW (paper Section II, Definitions 1-3).

* :class:`TravelTask` — a mandatory intermediate stop of a worker
  (Definition 1): a location plus the service time to complete it.
* :class:`SensingTask` — an urban sensing task (Definition 3): a location,
  an availability time window ``[tw_s, tw_e]`` and a sensing duration; a
  worker's sensing period must fall fully inside the window.
* :class:`Worker` — a multi-destination worker (Definition 2): origin,
  final destination, feasible departure/arrival times, and the set of
  mandatory travel tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .geometry import Location

__all__ = ["TravelTask", "SensingTask", "Worker"]


@dataclass(frozen=True, slots=True)
class TravelTask:
    """A mandatory travel task ``d = <l, tau>`` (Definition 1).

    Attributes
    ----------
    task_id:
        Unique identifier within an instance.
    location:
        Where the task is performed (``d.l``).
    service_time:
        Minutes required to complete the task (``d.tau``), e.g. 10 for a
        courier delivery, 20 for a tourist POI visit.
    """

    task_id: int
    location: Location
    service_time: float

    def __post_init__(self):
        if self.service_time < 0:
            raise ValueError(f"service_time must be >= 0, got {self.service_time}")


@dataclass(frozen=True, slots=True)
class SensingTask:
    """An urban sensing task ``s = <l, tw_s, tw_e, tau>`` (Definition 3).

    A worker arriving at time ``t`` can complete the task iff
    ``tw_s <= t`` (after waiting if early, waiting counts toward the route
    travel time) and ``t + tau <= tw_e``; equivalently the sensing period
    must fall fully inside the window.
    """

    task_id: int
    location: Location
    tw_start: float
    tw_end: float
    service_time: float

    def __post_init__(self):
        if self.service_time < 0:
            raise ValueError(f"service_time must be >= 0, got {self.service_time}")
        if self.tw_end - self.tw_start < self.service_time:
            raise ValueError(
                f"time window [{self.tw_start}, {self.tw_end}] shorter than "
                f"service time {self.service_time}")

    @property
    def latest_start(self) -> float:
        """Latest arrival time at which the task can still be completed."""
        return self.tw_end - self.service_time

    def can_start_at(self, t: float) -> bool:
        """Whether sensing started at time ``t`` finishes inside the window."""
        return self.tw_start <= t <= self.latest_start

    def earliest_completion(self, arrival: float) -> float | None:
        """Completion time if the worker arrives at ``arrival``; None if too late.

        Arriving before ``tw_start`` incurs waiting (Definition 5).
        """
        start = max(arrival, self.tw_start)
        if start > self.latest_start:
            return None
        return start + self.service_time


@dataclass(frozen=True, slots=True)
class Worker:
    """A multi-destination worker (Definition 2).

    ``w = <l_s, l_e, t_s_min, t_e_max, D>``: origin, final destination,
    earliest feasible departure, latest feasible arrival, and the set of
    mandatory travel tasks to complete en route.
    """

    worker_id: int
    origin: Location
    destination: Location
    earliest_departure: float
    latest_arrival: float
    travel_tasks: tuple[TravelTask, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if self.latest_arrival < self.earliest_departure:
            raise ValueError(
                f"latest_arrival {self.latest_arrival} before "
                f"earliest_departure {self.earliest_departure}")
        # Normalise to tuple so workers are hashable.
        if not isinstance(self.travel_tasks, tuple):
            object.__setattr__(self, "travel_tasks", tuple(self.travel_tasks))

    @property
    def time_budget(self) -> float:
        """Maximum route travel time: ``t_e_max - t_s_min``."""
        return self.latest_arrival - self.earliest_departure

    @property
    def num_travel_tasks(self) -> int:
        return len(self.travel_tasks)

    def all_locations(self) -> list[Location]:
        """Origin, travel-task locations and destination, in storage order."""
        return ([self.origin]
                + [task.location for task in self.travel_tasks]
                + [self.destination])
