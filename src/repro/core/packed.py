"""Packed-array view of a USMDW instance (the route-kernel substrate).

The object model (:mod:`repro.core.entities`) is convenient but slow to
traverse: every planner call re-reads ``Location`` attributes and recomputes
``math.hypot`` per hop.  :class:`PackedInstance` flattens an instance once
into contiguous float64 arrays — deduplicated location coordinates, sensing
task attributes (``tw_start``/``tw_end``/service/latest-start), sensing
flags — plus a lazily built per-instance travel-distance matrix that every
planner call shares.  The numpy route kernels in :mod:`repro.tsptw.kernels`
operate on these arrays.

Bit-identity contract: the distance matrix is built with ``math.hypot``
(never ``np.hypot``, which differs by 1 ulp on ~0.6% of inputs), with the
same argument orientation the object path uses, so kernel results and
object-path results see exactly the same floats.  ``math.hypot`` is
symmetric under argument order and sign, so one cached row serves both
travel directions.

The packed view is cached on the instance (:func:`packed_instance`) and the
lazily built rows live in plain numpy arrays, so fork-pool children inherit
the whole structure copy-on-write together with the candidate-table
snapshot.
"""

from __future__ import annotations

import math
import os
from collections import OrderedDict
from typing import Sequence

import numpy as np

from .entities import SensingTask, Worker
from .geometry import Location

__all__ = ["PackedInstance", "RaggedRows", "packed_instance",
           "DEFAULT_ROW_CACHE_BYTES", "PACKED_ARRAY_NAMES"]

#: Cap on the lazily built travel-matrix row cache, in bytes per packed
#: instance (overridable via ``REPRO_PACKED_ROW_BYTES``).  At the paper's
#: scale every row fits far under the cap, so nothing ever evicts; at
#: city scale (10k tasks -> ~10k locations, ~80 KB/row) an unbounded
#: cache approaches a gigabyte per instance, so rows recycle LRU instead.
DEFAULT_ROW_CACHE_BYTES = int(os.environ.get("REPRO_PACKED_ROW_BYTES",
                                             256 * 1024 * 1024))

#: The base arrays a packed instance can export for zero-copy sharing
#: (:meth:`PackedInstance.export_arrays`), in a stable order.
PACKED_ARRAY_NAMES = ("xs", "ys", "sensing_ids", "sensing_loc", "tw_start",
                      "tw_end", "service", "latest_start")


class RaggedRows:
    """Offsets over B variable-length rows packed into one flat axis.

    The cross-instance decode path concatenates per-instance embedding
    matrices along axis 0 and addresses them as ``offsets[i] + local``;
    :meth:`padded` materialises the ``(B, max_len)`` global-index matrix
    and padding mask that turn the ragged structure into one rectangular
    gather.
    """

    __slots__ = ("lengths", "offsets", "total", "max_len")

    def __init__(self, lengths: Sequence[int]):
        self.lengths = np.asarray(lengths, dtype=np.intp)
        if self.lengths.ndim != 1:
            raise ValueError("lengths must be one-dimensional")
        if self.lengths.size and int(self.lengths.min()) < 0:
            raise ValueError("lengths must be non-negative")
        self.offsets = np.zeros(self.lengths.size + 1, dtype=np.intp)
        np.cumsum(self.lengths, out=self.offsets[1:])
        self.total = int(self.offsets[-1])
        self.max_len = int(self.lengths.max()) if self.lengths.size else 0

    def __len__(self) -> int:
        return int(self.lengths.size)

    def padded(self, fill: int = 0) -> tuple[np.ndarray, np.ndarray]:
        """``(B, max_len)`` global indices plus a True-on-padding mask.

        Row ``i`` holds ``offsets[i] + j`` for ``j < lengths[i]`` and
        ``fill`` elsewhere.  Callers mask every downstream use of the
        filled tail, so any valid flat row index works as ``fill``.
        """
        cols = np.arange(self.max_len, dtype=np.intp)
        pad = cols[None, :] >= self.lengths[:, None]
        idx = self.offsets[:-1, None] + cols[None, :]
        idx[pad] = fill
        return idx, pad


class PackedInstance:
    """Contiguous-array representation of an instance's geometry and tasks.

    Locations are deduplicated (sensing tasks share grid-cell centers, so
    the unique-location count is typically far below worker-count x
    task-count); distances are materialised row-by-row on first use via
    ``math.hypot`` and cached under an LRU row budget
    (:data:`DEFAULT_ROW_CACHE_BYTES`) — small instances never evict, and
    eviction can only cost a rebuild, never change a float.
    """

    __slots__ = ("xs", "ys", "_locs", "_loc_index", "_rows",
                 "sensing_ids", "sensing_loc", "tw_start", "tw_end",
                 "service", "latest_start", "is_sensing", "_sensing_row",
                 "worker_locs", "_row_budget", "_row_builds",
                 "_row_evictions")

    def __init__(self, workers: Sequence[Worker],
                 sensing_tasks: Sequence[SensingTask],
                 row_cache_bytes: int | None = None):
        locs: list[Location] = []
        index: dict[Location, int] = {}

        def intern(loc: Location) -> int:
            i = index.get(loc)
            if i is None:
                i = len(locs)
                index[loc] = i
                locs.append(loc)
            return i

        # worker_id -> (origin idx, travel-task idx tuple, destination idx)
        self.worker_locs: dict[int, tuple[int, tuple[int, ...], int]] = {}
        for w in workers:
            origin = intern(w.origin)
            travel = tuple(intern(t.location) for t in w.travel_tasks)
            self.worker_locs[w.worker_id] = (origin, travel,
                                             intern(w.destination))

        n = len(sensing_tasks)
        self.sensing_ids = np.fromiter((s.task_id for s in sensing_tasks),
                                       dtype=np.int64, count=n)
        self.sensing_loc = np.fromiter(
            (intern(s.location) for s in sensing_tasks),
            dtype=np.intp, count=n)
        self.tw_start = np.fromiter((s.tw_start for s in sensing_tasks),
                                    dtype=np.float64, count=n)
        self.tw_end = np.fromiter((s.tw_end for s in sensing_tasks),
                                  dtype=np.float64, count=n)
        self.service = np.fromiter((s.service_time for s in sensing_tasks),
                                   dtype=np.float64, count=n)
        # Same expression as SensingTask.latest_start (tw_end - service).
        self.latest_start = np.fromiter(
            (s.tw_end - s.service_time for s in sensing_tasks),
            dtype=np.float64, count=n)
        self.is_sensing = np.ones(n, dtype=bool)
        self._sensing_row = {int(s.task_id): k
                             for k, s in enumerate(sensing_tasks)}

        self._locs = locs
        self._loc_index = index
        self.xs = np.fromiter((l.x for l in locs), dtype=np.float64,
                              count=len(locs))
        self.ys = np.fromiter((l.y for l in locs), dtype=np.float64,
                              count=len(locs))
        self._init_row_cache(row_cache_bytes)

    def _init_row_cache(self, row_cache_bytes: int | None) -> None:
        """Bound the lazy row cache by an LRU row budget.

        Eviction is free to be aggressive because no consumer retains a
        row as a live view — every caller copies out what it needs
        (fancy-indexing or ``fromiter``) — and a rebuilt row is the same
        ``math.hypot`` sequence over the same coordinates, so results
        stay bit-identical whatever the budget.
        """
        limit = (DEFAULT_ROW_CACHE_BYTES if row_cache_bytes is None
                 else row_cache_bytes)
        row_bytes = 8 * max(1, len(self._locs))
        self._row_budget = max(1, limit // row_bytes)
        self._rows: OrderedDict[int, np.ndarray] = OrderedDict()
        self._row_builds = 0
        self._row_evictions = 0

    # ------------------------------------------------------------------ #
    @property
    def num_locations(self) -> int:
        return len(self._locs)

    @property
    def num_cached_rows(self) -> int:
        return len(self._rows)

    @property
    def row_budget(self) -> int:
        """Maximum rows the LRU cache retains."""
        return self._row_budget

    @property
    def row_builds(self) -> int:
        """Rows materialised so far (rebuilds after eviction included)."""
        return self._row_builds

    @property
    def row_evictions(self) -> int:
        """Rows dropped by the LRU budget so far."""
        return self._row_evictions

    def nbytes(self) -> int:
        """Approximate memory of the packed arrays + cached matrix rows."""
        base = (self.xs.nbytes + self.ys.nbytes + self.tw_start.nbytes
                + self.tw_end.nbytes + self.service.nbytes
                + self.latest_start.nbytes + self.sensing_loc.nbytes)
        return base + sum(r.nbytes for r in self._rows.values())

    # ------------------------------------------------------------------ #
    def loc_id(self, location: Location) -> int:
        """Index of a known location, or -1 (callers fall back to hypot)."""
        return self._loc_index.get(location, -1)

    def sensing_row(self, task_id: int) -> int:
        """Packed array row of a sensing task id, or -1 when unknown."""
        return self._sensing_row.get(task_id, -1)

    def row(self, i: int) -> np.ndarray:
        """Distances (meters) from location ``i`` to every location.

        Built with ``math.hypot(x_j - x_i, y_j - y_i)`` — the exact
        expression and orientation of ``Location.distance_to`` and the
        insertion scan — so every consumer sees seed-identical floats.
        """
        rows = self._rows
        r = rows.get(i)
        if r is None:
            xi = self.xs[i]
            yi = self.ys[i]
            hypot = math.hypot
            r = np.fromiter(
                (hypot(x - xi, y - yi) for x, y in zip(self.xs, self.ys)),
                dtype=np.float64, count=len(self._locs))
            rows[i] = r
            self._row_builds += 1
            if len(rows) > self._row_budget:
                rows.popitem(last=False)
                self._row_evictions += 1
        else:
            rows.move_to_end(i)
        return r

    def distance(self, i: int, j: int) -> float:
        return float(self.row(i)[j])

    def distance_between(self, a: Location, b: Location) -> float:
        """Matrix-backed ``Location`` distance with hypot fallback.

        The fallback keeps the provider total (a stale binding or an
        ad-hoc location is slower, never wrong).
        """
        ia = self._loc_index.get(a)
        if ia is not None:
            ib = self._loc_index.get(b)
            if ib is not None:
                return float(self.row(ia)[ib])
        return math.hypot(b.x - a.x, b.y - a.y)

    # ------------------------------------------------------------------ #
    def export_arrays(self) -> dict[str, np.ndarray]:
        """The base arrays, keyed by :data:`PACKED_ARRAY_NAMES`.

        The zero-copy currency of the sharding pipeline: publishing these
        through shared memory and rebuilding with :meth:`from_arrays` in
        another process reproduces this packed view without pickling the
        payload.  Lazily built matrix rows are deliberately excluded —
        each process materialises (and LRU-bounds) its own.
        """
        return {name: getattr(self, name) for name in PACKED_ARRAY_NAMES}

    @classmethod
    def from_arrays(cls, workers: Sequence[Worker],
                    arrays: dict[str, np.ndarray],
                    row_cache_bytes: int | None = None) -> "PackedInstance":
        """Rebuild a packed view around pre-existing base arrays.

        ``arrays`` is an :meth:`export_arrays` set, typically shared-
        memory views in a pool worker.  Location objects are re-interned
        from the exact coordinate floats, so distances — ``math.hypot``
        over identical inputs — are bit-identical to the originating
        process.  ``workers`` may be any subset whose locations appear in
        the arrays (e.g. one shard's workers against the full instance's
        export).
        """
        self = object.__new__(cls)
        for name in PACKED_ARRAY_NAMES:
            setattr(self, name, arrays[name])
        locs = [Location(float(x), float(y))
                for x, y in zip(self.xs, self.ys)]
        index = {loc: i for i, loc in enumerate(locs)}
        self._locs = locs
        self._loc_index = index
        n = len(self.sensing_ids)
        self.is_sensing = np.ones(n, dtype=bool)
        self._sensing_row = {int(task_id): k
                             for k, task_id in enumerate(self.sensing_ids)}
        self.worker_locs = {}
        for w in workers:
            try:
                origin = index[w.origin]
                travel = tuple(index[t.location] for t in w.travel_tasks)
                dest = index[w.destination]
            except KeyError as exc:
                raise ValueError(
                    f"worker {w.worker_id} has a location missing from the "
                    "exported arrays") from exc
            self.worker_locs[w.worker_id] = (origin, travel, dest)
        self._init_row_cache(row_cache_bytes)
        return self


def packed_instance(instance) -> PackedInstance:
    """The instance's cached :class:`PackedInstance` (built on first use).

    Cached via ``object.__setattr__`` on the frozen dataclass, so every
    planner bound to the same instance — and every fork-pool child — shares
    one matrix.
    """
    cached = instance.__dict__.get("_packed")
    if cached is None:
        cached = PackedInstance(instance.workers, instance.sensing_tasks)
        object.__setattr__(instance, "_packed", cached)
    return cached
