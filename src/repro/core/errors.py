"""Exception hierarchy for the SMORE reproduction."""

__all__ = [
    "ReproError", "InvalidInstanceError", "InfeasibleRouteError",
    "BudgetExceededError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class InvalidInstanceError(ReproError):
    """A USMDW problem instance violates a structural constraint."""


class InfeasibleRouteError(ReproError):
    """No feasible working route exists for a requested task set."""


class BudgetExceededError(ReproError):
    """An assignment would exceed the remaining sensing budget."""
