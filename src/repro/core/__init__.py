"""``repro.core`` — USMDW problem domain.

Entities (workers, travel tasks, sensing tasks), geometry, working routes,
the hierarchical entropy-based coverage objective, incentives, and problem
instances, all following Section II of the paper.
"""

from .coverage import CoverageModel, CoverageState, spatial_pyramid
from .entities import SensingTask, TravelTask, Worker
from .errors import (
    BudgetExceededError,
    InfeasibleRouteError,
    InvalidInstanceError,
    ReproError,
)
from .geometry import DEFAULT_SPEED, Grid, Location, Region, euclidean, travel_time
from .incentive import IncentiveModel
from .instance import USMDWInstance, make_sensing_grid_tasks
from .packed import PackedInstance, RaggedRows, packed_instance
from .perf import PerfCounters
from .route import RouteStop, RouteTiming, WorkingRoute, simulate_route
from .solution import Solution

__all__ = [
    "Solution",
    "Location", "Region", "Grid", "euclidean", "travel_time", "DEFAULT_SPEED",
    "TravelTask", "SensingTask", "Worker",
    "WorkingRoute", "RouteStop", "RouteTiming", "simulate_route",
    "CoverageModel", "CoverageState", "spatial_pyramid",
    "IncentiveModel", "PerfCounters",
    "PackedInstance", "RaggedRows", "packed_instance",
    "USMDWInstance", "make_sensing_grid_tasks",
    "ReproError", "InvalidInstanceError", "InfeasibleRouteError",
    "BudgetExceededError",
]
