"""Spatial primitives: locations, regions, uniform grids, and travel time.

The paper assumes workers move at constant speed in free space, so travel
time is proportional to Euclidean distance (Section II-A, Definition 5).
Distances are in meters, times in minutes throughout the library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["Location", "Region", "Grid", "euclidean", "travel_time",
           "DEFAULT_SPEED"]

#: Worker movement speed from the paper's experimental setup (Section V-B):
#: 60 meters per minute.
DEFAULT_SPEED = 60.0


@dataclass(frozen=True, slots=True)
class Location:
    """A point in the plane, coordinates in meters."""

    x: float
    y: float

    def distance_to(self, other: "Location") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def travel_time_to(self, other: "Location", speed: float = DEFAULT_SPEED) -> float:
        """Minutes to reach ``other`` at constant ``speed`` (m/min)."""
        return self.distance_to(other) / speed

    def as_array(self) -> np.ndarray:
        return np.array([self.x, self.y])


def euclidean(a: Location, b: Location) -> float:
    """Euclidean distance between two locations, in meters."""
    return a.distance_to(b)


def travel_time(a: Location, b: Location, speed: float = DEFAULT_SPEED) -> float:
    """Travel time between two locations in minutes at ``speed`` m/min."""
    return a.travel_time_to(b, speed=speed)


@dataclass(frozen=True, slots=True)
class Region:
    """An axis-aligned rectangular region of interest, origin at (0, 0)."""

    width: float
    height: float

    def contains(self, location: Location) -> bool:
        return 0.0 <= location.x <= self.width and 0.0 <= location.y <= self.height

    def clamp(self, location: Location) -> Location:
        return Location(
            min(max(location.x, 0.0), self.width),
            min(max(location.y, 0.0), self.height),
        )

    @property
    def area(self) -> float:
        return self.width * self.height


@dataclass(frozen=True, slots=True)
class Grid:
    """A uniform ``nx x ny`` partition of a :class:`Region`.

    Cell indices are ``(i, j)`` with ``i`` along x in ``[0, nx)`` and ``j``
    along y in ``[0, ny)``.  The paper partitions Delivery into 10x12 and
    Tourism/LaDe into 10x10 grids (Section V-B).
    """

    region: Region
    nx: int
    ny: int

    def __post_init__(self):
        if self.nx <= 0 or self.ny <= 0:
            raise ValueError(f"grid dimensions must be positive, got {self.nx}x{self.ny}")

    @property
    def num_cells(self) -> int:
        return self.nx * self.ny

    @property
    def cell_width(self) -> float:
        return self.region.width / self.nx

    @property
    def cell_height(self) -> float:
        return self.region.height / self.ny

    def cell_of(self, location: Location) -> tuple[int, int]:
        """Return the ``(i, j)`` cell containing ``location`` (clamped)."""
        i = min(int(location.x / self.cell_width), self.nx - 1)
        j = min(int(location.y / self.cell_height), self.ny - 1)
        return max(i, 0), max(j, 0)

    def cell_index(self, location: Location) -> int:
        """Flat row-major index of the cell containing ``location``."""
        i, j = self.cell_of(location)
        return i * self.ny + j

    def cell_center(self, i: int, j: int) -> Location:
        """Center of cell ``(i, j)``."""
        if not (0 <= i < self.nx and 0 <= j < self.ny):
            raise IndexError(f"cell ({i}, {j}) outside {self.nx}x{self.ny} grid")
        return Location((i + 0.5) * self.cell_width, (j + 0.5) * self.cell_height)

    def all_cells(self) -> list[tuple[int, int]]:
        return [(i, j) for i in range(self.nx) for j in range(self.ny)]

    def coarsen(self, factor: int = 2) -> "Grid":
        """Return a grid with both dimensions divided by ``factor`` (min 1).

        Used to build the spatial pyramid for the hierarchical entropy.
        """
        return Grid(self.region, max(1, self.nx // factor), max(1, self.ny // factor))
