"""Hierarchical entropy-based data coverage (paper Definition 4, after [8]).

The sensing objective is ``phi(S') = alpha * E(S') + (1 - alpha) * log2|S'|``
where ``S'`` is the set of completed sensing tasks and ``E`` measures how
balanced the collected data is over the spatio-temporal landscape.

The paper does not restate the hierarchical entropy of Ji et al. [8]; we
reconstruct it as follows.  The region grid is repeatedly coarsened by a
factor of 2 (the 1x1 root, whose entropy is identically zero, is excluded);
at every spatial level the completed tasks are binned by cell and the
Shannon entropy (base 2) of that *spatial* histogram is computed.  A
separate temporal histogram over the sensing time slots yields the temporal
entropy.  ``E`` is the mean of the per-level spatial entropies and the
temporal entropy.

Binning space and time separately is essential: a collection that is
spatially clustered but temporally spread must still score low on balance
(this is precisely the skew the paper's case study, Figure 6, penalises),
which a joint (cell, slot) histogram would hide because distinct slots make
bins unique even in one cell.

:class:`CoverageState` maintains the histograms incrementally so that the
marginal gain ``delta_phi`` of a candidate task — needed by TASNet's
heuristic signals and by the greedy baselines at every step — costs
O(levels) instead of O(|S'|).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .entities import SensingTask
from .geometry import Grid

__all__ = ["CoverageModel", "CoverageState", "spatial_pyramid"]


def spatial_pyramid(grid: Grid) -> list[Grid]:
    """Grids from finest down to (but excluding) the 1x1 root.

    The root level carries no information (entropy 0 for any collection),
    so it is dropped unless the input grid itself is 1x1.
    """
    levels = [grid]
    current = grid
    while current.nx > 1 or current.ny > 1:
        current = current.coarsen(2)
        if current.nx > 1 or current.ny > 1:
            levels.append(current)
    return levels


# Histogram counts stay below the instance's task total (a few hundred),
# so n*log2(n) and log2(n) come from precomputed tables on the hot paths —
# candidate scoring evaluates entropy_after_add for every (rollout,
# candidate) pair each step.  Entries are built with the exact expressions
# they replace, so table hits are bit-identical to direct evaluation.
_LOG_TABLE = 4096
_CLOG2 = [0.0] + [n * math.log2(n) for n in range(1, _LOG_TABLE)]
_LOG2 = [0.0, 0.0] + [math.log2(n) for n in range(2, _LOG_TABLE)]
# Array views of the same tables for the vectorized gain path; elementwise
# float64 arithmetic on these matches the scalar expressions bit for bit.
_CLOG2_ARR = np.asarray(_CLOG2)
_LOG2_ARR = np.asarray(_LOG2)


def _entropy_from_stats(count_total: int, sum_clog: float) -> float:
    """Shannon entropy (bits) from N and sum of c*log2(c) over bins."""
    if count_total <= 1:
        return 0.0
    log_n = _LOG2[count_total] if count_total < _LOG_TABLE \
        else math.log2(count_total)
    return log_n - sum_clog / count_total


@dataclass(frozen=True)
class CoverageModel:
    """Configuration of the coverage objective for one sensing project.

    Parameters
    ----------
    grid:
        Finest spatial partition of the region (e.g. 10x12 for Delivery).
    time_span:
        Length of the sensing project in minutes (e.g. 240).
    slot_minutes:
        Temporal resolution for binning completed tasks (defaults to the
        sensing-task time-window length).
    alpha:
        Trade-off between balance (entropy) and amount (log2 count);
        0.5 by default, matching the paper.
    level_weighting:
        How per-level entropies combine into E.  The paper does not
        restate [8]'s exact combination, so the reconstruction exposes
        the plausible choices — ``"mean"`` (default; uniform over spatial
        levels + temporal), ``"capacity"`` (each histogram weighted by its
        information capacity log2(bins), emphasising fine levels), or
        ``"finest"`` (finest spatial level and temporal only).  The
        robustness of the paper's method ordering under all three is
        checked in ``benchmarks/test_ablation_entropy_weighting.py``.
    """

    grid: Grid
    time_span: float
    slot_minutes: float
    alpha: float = 0.5
    level_weighting: str = "mean"

    def __post_init__(self):
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.slot_minutes <= 0:
            raise ValueError("slot_minutes must be positive")
        if self.time_span <= 0:
            raise ValueError("time_span must be positive")
        if self.level_weighting not in ("mean", "capacity", "finest"):
            raise ValueError(
                f"unknown level_weighting {self.level_weighting!r}")
        # Task -> (per-level spatial bins, temporal slot).  Binning is a
        # pure function of the immutable task and grid, so one cache on
        # the model serves every CoverageState across all rollouts.
        object.__setattr__(self, "_bin_cache", {})

    @property
    def num_slots(self) -> int:
        return max(1, math.ceil(self.time_span / self.slot_minutes))

    def slot_of(self, task: SensingTask) -> int:
        """Temporal bin of a sensing task, from its window start."""
        slot = int(task.tw_start / self.slot_minutes)
        return min(max(slot, 0), self.num_slots - 1)

    def precompute_bins(self, tasks) -> None:
        """Bulk-fill the bin cache for ``tasks`` with vectorized binning.

        One numpy pass per pyramid level replaces per-task ``cell_index``
        calls on first touch; tasks already cached are skipped.  The
        arithmetic mirrors :meth:`Grid.cell_of` / :meth:`slot_of` exactly
        (same division, truncation toward zero, same clamp order), so the
        cached values are identical to the lazy path's.
        """
        cache = self._bin_cache
        todo = [t for t in tasks if t not in cache]
        if not todo:
            return
        count = len(todo)
        xs = np.fromiter((t.location.x for t in todo), dtype=np.float64,
                         count=count)
        ys = np.fromiter((t.location.y for t in todo), dtype=np.float64,
                         count=count)
        per_level = []
        for grid in spatial_pyramid(self.grid):
            i = np.minimum((xs / grid.cell_width).astype(np.int64),
                           grid.nx - 1)
            np.maximum(i, 0, out=i)
            j = np.minimum((ys / grid.cell_height).astype(np.int64),
                           grid.ny - 1)
            np.maximum(j, 0, out=j)
            per_level.append(i * grid.ny + j)
        tw = np.fromiter((t.tw_start for t in todo), dtype=np.float64,
                         count=count)
        slots = np.maximum((tw / self.slot_minutes).astype(np.int64), 0)
        np.minimum(slots, self.num_slots - 1, out=slots)
        for k, task in enumerate(todo):
            cache[task] = ([int(col[k]) for col in per_level],
                           int(slots[k]))

    def new_state(self) -> "CoverageState":
        return CoverageState(self)

    def phi(self, tasks) -> float:
        """Coverage of a completed-task collection (batch evaluation)."""
        state = self.new_state()
        for task in tasks:
            state.add(task)
        return state.phi()


class _Histogram:
    """A counting histogram over a fixed key range with O(1) entropy.

    Counts live in a dense integer array (bin spaces here — grid cells,
    time slots — are small and known up front), which lets the candidate
    scorers evaluate whole batches of hypothetical adds with one fancy
    index instead of per-key dictionary probes.
    """

    __slots__ = ("counts", "sum_clog", "total")

    def __init__(self, size: int):
        self.counts = np.zeros(size, dtype=np.int64)
        self.sum_clog = 0.0
        self.total = 0

    def add(self, key: int) -> None:
        old = int(self.counts[key])
        new = old + 1
        self.counts[key] = new
        if new < _LOG_TABLE:
            self.sum_clog += _CLOG2[new] - _CLOG2[old]
        else:
            self.sum_clog += new * math.log2(new) - old * math.log2(old)
        self.total += 1

    def remove(self, key: int) -> None:
        old = int(self.counts[key])
        if old <= 0:
            raise KeyError(f"bin {key} is empty")
        new = old - 1
        self.counts[key] = new
        if old < _LOG_TABLE:
            self.sum_clog -= _CLOG2[old] - _CLOG2[new]
        else:
            self.sum_clog -= old * math.log2(old) - new * math.log2(new)
        self.total -= 1

    def entropy(self) -> float:
        return _entropy_from_stats(self.total, self.sum_clog)

    def entropy_after_add(self, key: int) -> float:
        """Entropy the histogram would have after ``add(key)`` — without
        mutating, and bitwise identical to the add/entropy/remove
        round-trip (same update expression, no float residue)."""
        old = int(self.counts[key])
        new = old + 1
        if new < _LOG_TABLE:
            sum_clog = self.sum_clog + _CLOG2[new] - _CLOG2[old]
        else:
            sum_clog = self.sum_clog + new * math.log2(new) \
                - old * math.log2(old)
        return _entropy_from_stats(self.total + 1, sum_clog)

    def entropy_after_add_many(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`entropy_after_add` over a batch of keys.

        Elementwise table lookups and float64 arithmetic replay the
        scalar expressions exactly, so ``out[i]`` is bit-identical to
        ``entropy_after_add(keys[i])``.
        """
        old = self.counts[keys]
        new = old + 1
        if int(new.max(initial=0)) >= _LOG_TABLE:
            return np.array([self.entropy_after_add(int(k)) for k in keys])
        sum_clog = self.sum_clog + _CLOG2_ARR[new] - _CLOG2_ARR[old]
        total = self.total + 1
        if total <= 1:
            return np.zeros(len(keys))
        log_n = _LOG2[total] if total < _LOG_TABLE else math.log2(total)
        return log_n - sum_clog / total

    def copy(self) -> "_Histogram":
        twin = _Histogram(len(self.counts))
        twin.counts = self.counts.copy()
        twin.sum_clog = self.sum_clog
        twin.total = self.total
        return twin


class CoverageState:
    """Incrementally maintained coverage of a growing completed-task set.

    Supports ``add``, ``remove``, ``phi`` and the O(levels) marginal
    ``gain`` used as the reward signal ``r_t = phi(S'_{t+1}) - phi(S'_t)``
    of the selection MDP (Section IV-A).
    """

    def __init__(self, model: CoverageModel):
        self.model = model
        self._levels = spatial_pyramid(model.grid)
        self._spatial = [_Histogram(grid.num_cells) for grid in self._levels]
        self._temporal = _Histogram(model.num_slots)
        self._total = 0
        self._weights = self._level_weights()
        self._phi_cache: float | None = None

    def _level_weights(self) -> list[float]:
        """Weights over [spatial levels..., temporal], normalised to 1."""
        scheme = self.model.level_weighting
        if scheme == "mean":
            raw = [1.0] * (len(self._levels) + 1)
        elif scheme == "capacity":
            raw = [math.log2(max(grid.num_cells, 2)) for grid in self._levels]
            raw.append(math.log2(max(self.model.num_slots, 2)))
        else:  # "finest"
            raw = [0.0] * (len(self._levels) + 1)
            raw[0] = 1.0
            raw[-1] = 1.0
        total = sum(raw)
        return [w / total for w in raw]

    # ------------------------------------------------------------------ #
    @property
    def total(self) -> int:
        """Number of completed sensing tasks tracked."""
        return self._total

    def _bins(self, task: SensingTask) -> tuple[list[int], int]:
        """Cached (per-level spatial bins, temporal slot) of a task."""
        cache = self.model._bin_cache
        bins = cache.get(task)
        if bins is None:
            bins = ([grid.cell_index(task.location) for grid in self._levels],
                    self.model.slot_of(task))
            cache[task] = bins
        return bins

    def add(self, task: SensingTask) -> None:
        keys, slot = self._bins(task)
        for hist, key in zip(self._spatial, keys):
            hist.add(key)
        self._temporal.add(slot)
        self._total += 1
        self._phi_cache = None

    def remove(self, task: SensingTask) -> None:
        keys, slot = self._bins(task)
        for hist, key in zip(self._spatial, keys):
            hist.remove(key)
        self._temporal.remove(slot)
        self._total -= 1
        self._phi_cache = None

    # ------------------------------------------------------------------ #
    def entropy(self) -> float:
        """Hierarchical entropy E: weighted spatial levels + temporal."""
        terms = [hist.entropy() for hist in self._spatial]
        terms.append(self._temporal.entropy())
        return sum(w * t for w, t in zip(self._weights, terms))

    def spatial_entropies(self) -> list[float]:
        """Per-level spatial entropies, finest first (for diagnostics)."""
        return [hist.entropy() for hist in self._spatial]

    def temporal_entropy(self) -> float:
        return self._temporal.entropy()

    def phi(self) -> float:
        """Current coverage; phi(empty set) is defined as 0.

        Cached between mutations: candidate-scoring loops evaluate the
        marginal gain of every feasible task against one fixed state, so
        the "before" value is computed once per state, not per candidate.
        """
        if self._phi_cache is not None:
            return self._phi_cache
        if self._total == 0:
            value = 0.0
        else:
            alpha = self.model.alpha
            value = alpha * self.entropy() \
                + (1.0 - alpha) * math.log2(self._total)
        self._phi_cache = value
        return value

    def gain(self, task: SensingTask) -> float:
        """Marginal coverage gain of adding ``task`` (does not mutate).

        Computed analytically per histogram — the entropy each would have
        after the hypothetical add — instead of an add/phi/remove
        round-trip, so the hot candidate-scoring loops of the policies
        and baselines pay O(levels) dictionary lookups, no mutation, and
        no floating-point residue in the running ``sum_clog`` terms.
        """
        keys, slot = self._bins(task)
        terms = [hist.entropy_after_add(key)
                 for hist, key in zip(self._spatial, keys)]
        terms.append(self._temporal.entropy_after_add(slot))
        entropy_after = sum(w * t for w, t in zip(self._weights, terms))
        alpha = self.model.alpha
        n = self._total + 1
        log_n = _LOG2[n] if n < _LOG_TABLE else math.log2(n)
        phi_after = alpha * entropy_after + (1.0 - alpha) * log_n
        return phi_after - self.phi()

    def gain_many(self, tasks) -> np.ndarray:
        """Marginal gains of many candidate tasks at once (no mutation).

        One fancy-indexed :meth:`_Histogram.entropy_after_add_many` per
        level replaces the per-task scalar probes of :meth:`gain` — the
        decode loops score every feasible candidate of a worker against
        one fixed state each step.  The weighted accumulation runs in the
        same level order as the scalar path, so ``out[i]`` is
        bit-identical to ``gain(tasks[i])``.
        """
        tasks = list(tasks)
        if not tasks:
            return np.empty(0)
        bins = [self._bins(task) for task in tasks]
        keys = np.array([b[0] for b in bins], dtype=np.intp)  # (T, levels)
        slots = np.array([b[1] for b in bins], dtype=np.intp)
        entropy_after = None
        weights = self._weights
        for li, hist in enumerate(self._spatial):
            term = weights[li] * hist.entropy_after_add_many(keys[:, li])
            entropy_after = term if entropy_after is None \
                else entropy_after + term
        term = weights[-1] * self._temporal.entropy_after_add_many(slots)
        entropy_after = term if entropy_after is None \
            else entropy_after + term
        alpha = self.model.alpha
        n = self._total + 1
        log_n = _LOG2[n] if n < _LOG_TABLE else math.log2(n)
        return alpha * entropy_after + (1.0 - alpha) * log_n - self.phi()

    def copy(self) -> "CoverageState":
        clone = CoverageState(self.model)
        clone._spatial = [hist.copy() for hist in self._spatial]
        clone._temporal = self._temporal.copy()
        clone._total = self._total
        clone._phi_cache = self._phi_cache
        return clone
