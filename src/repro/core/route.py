"""Working routes and their simulation (paper Definition 5).

A :class:`WorkingRoute` is the traveling sequence of a worker:
``origin -> ta_1 -> ... -> ta_k -> destination`` where each ``ta_i`` is a
travel task or an assigned sensing task.  :func:`simulate_route` replays the
route forward in time — travel at constant speed, wait for sensing windows,
service each task — producing per-stop arrival/start/finish times, the
route travel time ``rtt`` and feasibility with respect to both the task
time windows and the worker's latest-arrival constraint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .entities import SensingTask, TravelTask, Worker
from .geometry import DEFAULT_SPEED, travel_time

__all__ = ["RouteStop", "RouteTiming", "WorkingRoute", "simulate_route"]

Task = TravelTask | SensingTask


@dataclass(frozen=True, slots=True)
class RouteStop:
    """Timing record for one task visit along a route."""

    task: Task
    arrival: float
    service_start: float
    finish: float

    @property
    def waiting_time(self) -> float:
        return self.service_start - self.arrival


@dataclass(frozen=True, slots=True)
class RouteTiming:
    """Result of simulating a route forward in time."""

    stops: tuple[RouteStop, ...]
    departure: float
    arrival_at_destination: float
    feasible: bool
    violated_at: int | None = None  # index of first violating stop, if any

    @property
    def route_travel_time(self) -> float:
        """``rtt`` of Definition 5: elapsed time origin -> destination."""
        return self.arrival_at_destination - self.departure

    @property
    def total_waiting_time(self) -> float:
        return sum(stop.waiting_time for stop in self.stops)

    @property
    def total_service_time(self) -> float:
        return sum(stop.finish - stop.service_start for stop in self.stops)


@dataclass(frozen=True)
class WorkingRoute:
    """A worker's route: the ordered tasks between origin and destination."""

    worker: Worker
    tasks: tuple[Task, ...] = field(default_factory=tuple)
    speed: float = DEFAULT_SPEED

    def __post_init__(self):
        if not isinstance(self.tasks, tuple):
            object.__setattr__(self, "tasks", tuple(self.tasks))

    @property
    def sensing_tasks(self) -> tuple[SensingTask, ...]:
        return tuple(t for t in self.tasks if isinstance(t, SensingTask))

    @property
    def travel_tasks(self) -> tuple[TravelTask, ...]:
        return tuple(t for t in self.tasks if isinstance(t, TravelTask))

    def covers_all_travel_tasks(self) -> bool:
        """Whether every mandatory travel task of the worker appears."""
        present = {t.task_id for t in self.travel_tasks}
        return all(d.task_id in present for d in self.worker.travel_tasks)

    def simulate(self) -> RouteTiming:
        return simulate_route(self.worker, self.tasks, speed=self.speed)

    @property
    def route_travel_time(self) -> float:
        return self.simulate().route_travel_time

    @property
    def feasible(self) -> bool:
        timing = self.simulate()
        return timing.feasible and self.covers_all_travel_tasks()

    def with_task_inserted(self, task: Task, position: int) -> "WorkingRoute":
        """Return a new route with ``task`` inserted before index ``position``."""
        tasks = self.tasks[:position] + (task,) + self.tasks[position:]
        return WorkingRoute(self.worker, tasks, speed=self.speed)

    def without_task(self, task: Task) -> "WorkingRoute":
        tasks = tuple(t for t in self.tasks if t is not task)
        return WorkingRoute(self.worker, tasks, speed=self.speed)


def simulate_route(worker: Worker, tasks: tuple[Task, ...] | list[Task],
                   speed: float = DEFAULT_SPEED,
                   departure: float | None = None) -> RouteTiming:
    """Replay ``tasks`` in order, starting from the worker's origin.

    The worker departs at ``departure`` (default: ``earliest_departure``),
    travels at constant ``speed``, waits when arriving before a sensing
    window opens, and services each task.  The route is infeasible when a
    sensing task cannot start inside its window or the final arrival
    exceeds ``worker.latest_arrival``; simulation still completes so the
    caller can inspect where the violation occurred.
    """
    clock = worker.earliest_departure if departure is None else departure
    start = clock
    position = worker.origin
    stops: list[RouteStop] = []
    feasible = True
    violated_at: int | None = None

    for index, task in enumerate(tasks):
        clock += travel_time(position, task.location, speed=speed)
        arrival = clock
        if isinstance(task, SensingTask):
            service_start = max(arrival, task.tw_start)
            if service_start > task.latest_start and feasible:
                feasible = False
                violated_at = index
        else:
            service_start = arrival
        finish = service_start + task.service_time
        stops.append(RouteStop(task, arrival, service_start, finish))
        clock = finish
        position = task.location

    clock += travel_time(position, worker.destination, speed=speed)
    if clock > worker.latest_arrival + 1e-9 and feasible:
        feasible = False
        violated_at = len(tasks)

    return RouteTiming(tuple(stops), start, clock, feasible, violated_at)
