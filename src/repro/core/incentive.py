"""Worker incentives (paper Definition 6).

The incentive paid to a worker is proportional to the *additional* time cost
sensing imposes on them::

    in_R = mu * (rtt_R - rtt_TSP(l_s, l_e, D))

where ``rtt_TSP`` is the travel time of the worker's original route — the
optimal tour through only their mandatory travel tasks.  The base route per
worker is computed once (by any :mod:`repro.tsptw` planner) and cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .entities import Worker

__all__ = ["IncentiveModel"]


@dataclass
class IncentiveModel:
    """Computes incentives given the per-time-unit rate ``mu``.

    Parameters
    ----------
    mu:
        Incentive per minute of extra time (paper default: 1).
    base_rtt_fn:
        Callable returning the worker's original (sensing-free) route
        travel time; results are cached per worker id.
    """

    mu: float = 1.0
    base_rtt_fn: Callable[[Worker], float] | None = None
    _base_cache: dict[int, float] = field(default_factory=dict)

    def set_base_rtt(self, worker: Worker, rtt: float) -> None:
        """Pre-seed the cached original route travel time for ``worker``."""
        self._base_cache[worker.worker_id] = rtt

    def base_rtt(self, worker: Worker) -> float:
        """Original route travel time ``rtt_TSP(l_s, l_e, D)`` for ``worker``."""
        cached = self._base_cache.get(worker.worker_id)
        if cached is not None:
            return cached
        if self.base_rtt_fn is None:
            raise ValueError(
                f"no base route travel time for worker {worker.worker_id} and "
                "no base_rtt_fn configured")
        rtt = self.base_rtt_fn(worker)
        self._base_cache[worker.worker_id] = rtt
        return rtt

    def incentive(self, worker: Worker, route_travel_time: float) -> float:
        """Incentive owed for a working route with the given ``rtt``.

        Never negative: a route faster than the worker's own optimum (which
        can only happen through approximation error in the base solver) is
        clamped to zero pay rather than charging the worker.
        """
        return max(0.0, self.mu * (route_travel_time - self.base_rtt(worker)))
