"""SMORE reproduction: Urban Sensing for Multi-Destination Workers via
Deep Reinforcement Learning (ICDE 2024).

Subpackages
-----------
``repro.nn``
    From-scratch numpy neural-network library (autograd, attention, Adam).
``repro.core``
    USMDW problem domain: entities, routes, coverage objective, instances.
``repro.tsptw``
    Working-route planners: exact DP, insertion heuristic, RL-based GPN.
``repro.smore``
    The paper's contribution: candidate initialisation, the selection MDP,
    TASNet, and REINFORCE training.
``repro.baselines``
    RN, TVPG, TCPG, MSA, MSAGI and JDRL comparison methods.
``repro.datasets``
    Seeded synthetic Delivery / Tourism / LaDe generators.
``repro.experiments``
    Harness regenerating every table and figure of the paper.
``repro.parallel``
    Deterministic process-pool fan-out for rollouts and experiment grids,
    plus the long-lived zero-copy ``PersistentPool``.
``repro.shard``
    City-scale spatial sharding: partition → per-shard solve → boundary
    repair and merge, preserving the unsharded invariants.
``repro.obs``
    Run telemetry: hierarchical timer spans, a counter/gauge metrics
    registry, and JSONL trace files (propagated across the fork pool).
"""

from . import nn  # noqa: F401  (import order: nn has no repro deps)
from . import core, obs, parallel, tsptw  # noqa: F401
from . import baselines, datasets, smore  # noqa: F401
from . import experiments, shard  # noqa: F401

__version__ = "1.0.0"

__all__ = ["nn", "core", "tsptw", "smore", "baselines", "datasets",
           "experiments", "parallel", "shard", "obs", "__version__"]
