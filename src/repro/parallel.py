"""Process-pool fan-out for rollouts, evaluation grids, and benchmarks.

SMORE's hot loops — sample-and-select-best inference, the experiment
method grid, and trainer evaluation — are embarrassingly parallel over
items that share large read-only state (instances, trained policies,
candidate-table snapshots).  :func:`parallel_map` runs them across a
``fork``-based process pool so that shared state is inherited copy-on-write
instead of pickled, while keeping three guarantees:

* **Determinism** — per-item RNGs are derived from one root seed via
  :func:`numpy.random.SeedSequence.spawn`, so results are bit-identical
  whether items run serially, in any pool size, or in any schedule.
* **Graceful fallback** — with ``workers <= 1``, a single item, a platform
  without ``fork`` (e.g. Windows/macOS spawn-only configurations), or when
  already inside a pool worker (pool workers are daemonic and cannot fork
  again), the map degrades to an ordinary serial loop with the *same*
  per-item seeds.
* **Chunking** — items are dispatched in contiguous chunks to amortise IPC
  overhead; ``chunksize`` is derived from the item count when not given.

Only the item index is sent to workers; the function, items, and seed
sequences are inherited through the fork, so closures over unpicklable
state (policies, planners, environments) work transparently.  Item
*results* must be picklable.

Two further guarantees:

* **Failures propagate** — an exception raised by ``fn`` inside a worker
  re-raises in the parent (with the worker traceback attached by
  ``multiprocessing``).  Only *pool construction* failures fall back to
  the serial path; a failing ``fn`` is never silently re-executed.
* **Telemetry propagates** — each worker item runs under
  :func:`repro.obs.capture_child`, and its counter/span/event snapshot is
  shipped back with the result and merged in item order
  (:func:`repro.obs.absorb`), so a traced parallel run reports the same
  counters as the serial run.  An installed op profiler's delta and an
  installed SLO tracker's rolling-window delta
  (:func:`repro.obs.slo.install`) ride the same snapshot, so windowed
  rejection rates survive the fork boundary too.  With all telemetry
  disabled the snapshots are ``None`` and cost nothing.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from . import obs

__all__ = ["parallel_map", "derive_seeds", "derive_rngs", "fork_available",
           "default_workers"]

T = TypeVar("T")
R = TypeVar("R")

#: State inherited by fork workers; only ever populated around a pool run.
_FORK_STATE: dict = {}

#: Set inside pool workers so nested parallel_map calls degrade to serial.
_IN_WORKER = False


def fork_available() -> bool:
    """True when ``fork``-start process pools can be used on this platform."""
    return (os.name == "posix"
            and "fork" in multiprocessing.get_all_start_methods())


def default_workers() -> int:
    """A sensible pool size: the CPU count (at least 1)."""
    return max(1, os.cpu_count() or 1)


def derive_seeds(seed: int | None, n: int) -> list[np.random.SeedSequence]:
    """``n`` independent child seed sequences of one root seed.

    The derivation is order-stable: item ``i`` always receives the same
    child sequence for a given root, which is what makes parallel and
    serial execution bit-identical.
    """
    return list(np.random.SeedSequence(seed).spawn(n))


def derive_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """``n`` independent, deterministically derived generators."""
    return [np.random.default_rng(s) for s in derive_seeds(seed, n)]


def _default_chunksize(num_items: int, workers: int) -> int:
    chunks_per_worker = 4
    return max(1, num_items // (workers * chunks_per_worker))


def _run_item(index: int):
    """Pool worker entry point: everything else arrives via the fork.

    Returns ``(result, telemetry_snapshot)``: worker-side counters and
    spans would otherwise die with the child process, so each item ships
    its delta back for the parent to merge (``None`` when tracing is off).
    """
    global _IN_WORKER
    _IN_WORKER = True
    fn = _FORK_STATE["fn"]
    item = _FORK_STATE["items"][index]
    seeds = _FORK_STATE["seeds"]
    with obs.capture_child() as telemetry:
        if seeds is None:
            result = fn(item)
        else:
            result = fn(item, np.random.default_rng(seeds[index]))
    return result, telemetry.snapshot


def parallel_map(fn: Callable[..., R], items: Iterable[T],
                 workers: int | None = None,
                 seed: int | None = None,
                 chunksize: int | None = None,
                 use_seeds: bool = False) -> list[R]:
    """Map ``fn`` over ``items``, optionally across a fork process pool.

    Parameters
    ----------
    fn:
        Called as ``fn(item)`` — or ``fn(item, rng)`` when seeding is
        enabled — in an arbitrary process.  May close over unpicklable
        state; the closure is inherited through the fork.
    items:
        Work items (materialised once; order defines result order).
    workers:
        Pool size.  ``None`` or ``<= 1`` runs serially in-process.
    seed:
        Root seed for per-item RNG derivation.  Passing a seed (or setting
        ``use_seeds``) switches to the two-argument ``fn(item, rng)`` form;
        ``seed=None`` with ``use_seeds=True`` derives from OS entropy.
    chunksize:
        Items per pool task; derived from the item count when omitted.

    Returns results in item order.  Serial and parallel execution produce
    identical results for deterministic ``fn``.
    """
    items = list(items)
    seeds = derive_seeds(seed, len(items)) if (use_seeds or seed is not None) \
        else None
    if not items:
        return []

    run_parallel = (workers is not None and workers > 1 and len(items) > 1
                    and not _IN_WORKER and fork_available())
    if run_parallel:
        workers = min(workers, len(items))
        _FORK_STATE.update(fn=fn, items=items, seeds=seeds)
        try:
            # Only pool *construction* may fall back to the serial path
            # (fork can fail under memory pressure; daemonic pool workers
            # cannot fork again).  Exceptions raised by ``fn`` inside a
            # worker propagate out of ``pool.map`` untouched — retrying
            # them serially would duplicate side effects and mask the
            # failure.
            try:
                ctx = multiprocessing.get_context("fork")
                pool = ctx.Pool(processes=workers)
            except (OSError, AssertionError):
                pool = None  # fall through to the serial path below
            if pool is not None:
                with pool:
                    pairs = pool.map(
                        _run_item, range(len(items)),
                        chunksize=chunksize or _default_chunksize(len(items),
                                                                  workers))
                results = []
                for result, telemetry in pairs:
                    obs.absorb(telemetry)  # item order -> deterministic
                    results.append(result)
                return results
        finally:
            _FORK_STATE.clear()

    if seeds is None:
        return [fn(item) for item in items]
    return [fn(item, np.random.default_rng(s))
            for item, s in zip(items, seeds)]
