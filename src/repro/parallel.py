"""Process-pool fan-out for rollouts, evaluation grids, and benchmarks.

SMORE's hot loops — sample-and-select-best inference, the experiment
method grid, and trainer evaluation — are embarrassingly parallel over
items that share large read-only state (instances, trained policies,
candidate-table snapshots).  :func:`parallel_map` runs them across a
``fork``-based process pool so that shared state is inherited copy-on-write
instead of pickled, while keeping three guarantees:

* **Determinism** — per-item RNGs are derived from one root seed via
  :func:`numpy.random.SeedSequence.spawn`, so results are bit-identical
  whether items run serially, in any pool size, or in any schedule.
* **Graceful fallback** — with ``workers <= 1``, a single item, a platform
  without ``fork`` (e.g. Windows/macOS spawn-only configurations), or when
  already inside a pool worker (pool workers are daemonic and cannot fork
  again), the map degrades to an ordinary serial loop with the *same*
  per-item seeds.
* **Chunking** — items are dispatched in contiguous chunks to amortise IPC
  overhead; ``chunksize`` is derived from the item count when not given.

Only the item index is sent to workers; the function, items, and seed
sequences are inherited through the fork, so closures over unpicklable
state (policies, planners, environments) work transparently.  Item
*results* must be picklable.

Two further guarantees:

* **Failures propagate** — an exception raised by ``fn`` inside a worker
  re-raises in the parent (with the worker traceback attached by
  ``multiprocessing``).  Only *pool construction* failures fall back to
  the serial path; a failing ``fn`` is never silently re-executed.
* **Telemetry propagates** — each worker item runs under
  :func:`repro.obs.capture_child`, and its counter/span/event snapshot is
  shipped back with the result and merged in item order
  (:func:`repro.obs.absorb`), so a traced parallel run reports the same
  counters as the serial run.  An installed op profiler's delta and an
  installed SLO tracker's rolling-window delta
  (:func:`repro.obs.slo.install`) ride the same snapshot, so windowed
  rejection rates survive the fork boundary too.  With all telemetry
  disabled the snapshots are ``None`` and cost nothing.

On top of the per-call fan-out, :class:`PersistentPool` keeps a fork pool
*resident* across calls: workers are forked once and fed work chunks over
pipes, so repeated maps (shard solves, benchmark sweeps, serving loops)
skip the per-call fork/teardown.  Large read-only arrays are published to
the resident workers zero-copy through ``multiprocessing.shared_memory``
(:meth:`PersistentPool.share_arrays` / :func:`shared_arrays`), with plain
fork copy-on-write inheritance as the fallback for state that exists
before the pool starts.  The pool preserves ``parallel_map``'s contract —
identical per-item seed derivation, telemetry snapshots absorbed in item
order, exceptions propagated — and adds explicit worker-crash detection:
a chunk lost to a dying worker raises :class:`WorkerCrashError` and is
never silently re-executed.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import time
import traceback
import weakref
from collections import deque
from multiprocessing import connection
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from . import obs

__all__ = ["parallel_map", "derive_seeds", "derive_rngs", "fork_available",
           "default_workers", "PersistentPool", "WorkerCrashError",
           "SharedArrays", "shared_arrays"]

T = TypeVar("T")
R = TypeVar("R")

#: State inherited by fork workers; only ever populated around a pool run.
_FORK_STATE: dict = {}

#: Set inside pool workers so nested parallel_map calls degrade to serial.
_IN_WORKER = False


def fork_available() -> bool:
    """True when ``fork``-start process pools can be used on this platform."""
    return (os.name == "posix"
            and "fork" in multiprocessing.get_all_start_methods())


def default_workers() -> int:
    """A sensible pool size: the CPUs this process may run on (at least 1).

    Containers and CI runners routinely pin a process to a slice of the
    host — ``os.cpu_count()`` still reports the host total there, so the
    affinity mask is consulted first where the platform exposes it.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:
            pass
    return max(1, os.cpu_count() or 1)


def derive_seeds(seed: int | None, n: int) -> list[np.random.SeedSequence]:
    """``n`` independent child seed sequences of one root seed.

    The derivation is order-stable: item ``i`` always receives the same
    child sequence for a given root, which is what makes parallel and
    serial execution bit-identical.
    """
    return list(np.random.SeedSequence(seed).spawn(n))


def derive_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """``n`` independent, deterministically derived generators."""
    return [np.random.default_rng(s) for s in derive_seeds(seed, n)]


def _default_chunksize(num_items: int, workers: int) -> int:
    chunks_per_worker = 4
    return max(1, num_items // (workers * chunks_per_worker))


def _run_item(index: int):
    """Pool worker entry point: everything else arrives via the fork.

    Returns ``(result, telemetry_snapshot)``: worker-side counters and
    spans would otherwise die with the child process, so each item ships
    its delta back for the parent to merge (``None`` when tracing is off).
    """
    global _IN_WORKER
    _IN_WORKER = True
    fn = _FORK_STATE["fn"]
    item = _FORK_STATE["items"][index]
    seeds = _FORK_STATE["seeds"]
    with obs.capture_child() as telemetry:
        if seeds is None:
            result = fn(item)
        else:
            result = fn(item, np.random.default_rng(seeds[index]))
    return result, telemetry.snapshot


def parallel_map(fn: Callable[..., R], items: Iterable[T],
                 workers: int | None = None,
                 seed: int | None = None,
                 chunksize: int | None = None,
                 use_seeds: bool = False) -> list[R]:
    """Map ``fn`` over ``items``, optionally across a fork process pool.

    Parameters
    ----------
    fn:
        Called as ``fn(item)`` — or ``fn(item, rng)`` when seeding is
        enabled — in an arbitrary process.  May close over unpicklable
        state; the closure is inherited through the fork.
    items:
        Work items (materialised once; order defines result order).
    workers:
        Pool size.  ``None`` or ``<= 1`` runs serially in-process.
    seed:
        Root seed for per-item RNG derivation.  Passing a seed (or setting
        ``use_seeds``) switches to the two-argument ``fn(item, rng)`` form;
        ``seed=None`` with ``use_seeds=True`` derives from OS entropy.
    chunksize:
        Items per pool task; derived from the item count when omitted.

    Returns results in item order.  Serial and parallel execution produce
    identical results for deterministic ``fn``.
    """
    items = list(items)
    seeds = derive_seeds(seed, len(items)) if (use_seeds or seed is not None) \
        else None
    if not items:
        return []

    run_parallel = (workers is not None and workers > 1 and len(items) > 1
                    and not _IN_WORKER and fork_available())
    if run_parallel:
        workers = min(workers, len(items))
        _FORK_STATE.update(fn=fn, items=items, seeds=seeds)
        try:
            # Only pool *construction* may fall back to the serial path
            # (fork can fail under memory pressure; daemonic pool workers
            # cannot fork again).  Exceptions raised by ``fn`` inside a
            # worker propagate out of ``pool.map`` untouched — retrying
            # them serially would duplicate side effects and mask the
            # failure.
            try:
                ctx = multiprocessing.get_context("fork")
                pool = ctx.Pool(processes=workers)
            except (OSError, AssertionError):
                pool = None  # fall through to the serial path below
            if pool is not None:
                with pool:
                    pairs = pool.map(
                        _run_item, range(len(items)),
                        chunksize=chunksize or _default_chunksize(len(items),
                                                                  workers))
                results = []
                for result, telemetry in pairs:
                    obs.absorb(telemetry)  # item order -> deterministic
                    results.append(result)
                return results
        finally:
            _FORK_STATE.clear()

    if seeds is None:
        return [fn(item) for item in items]
    return [fn(item, np.random.default_rng(s))
            for item, s in zip(items, seeds)]


# ---------------------------------------------------------------------- #
# Zero-copy shared arrays
# ---------------------------------------------------------------------- #
#: Shared-array sets visible in *this* process.  Workers attach shared-
#: memory blocks into ``_WORKER_SHARED``; the parent (and the serial
#: fallback path) reads ``_PARENT_SHARED``.
_WORKER_SHARED: dict[str, dict[str, np.ndarray]] = {}
_PARENT_SHARED: dict[str, dict[str, np.ndarray]] = {}


def _shm_module():
    try:
        from multiprocessing import shared_memory
    except ImportError:
        return None
    return shared_memory


def shared_arrays(key: str) -> dict[str, np.ndarray] | None:
    """The array set published under ``key``, or None when not visible.

    Inside a :class:`PersistentPool` worker this resolves to the attached
    shared-memory views; in the parent (or on the serial fallback path) it
    resolves to the arrays handed to :meth:`PersistentPool.share_arrays`.
    Callers must treat the arrays as read-only and be prepared for None —
    e.g. a worker forked before the share on a platform without
    ``multiprocessing.shared_memory`` — by rebuilding locally.
    """
    found = _WORKER_SHARED.get(key)
    if found is not None:
        return found
    return _PARENT_SHARED.get(key)


class SharedArrays:
    """A named set of numpy arrays packed into one shared-memory block.

    The block layout (per-array offset/shape/dtype) travels as a small
    picklable ``spec``; any process attaches with :meth:`attach` and gets
    ndarray views straight into the shared pages — no copy, no pickling
    of the array payload.
    """

    __slots__ = ("arrays", "spec", "nbytes", "_shm", "_owner")

    def __init__(self, arrays: dict[str, np.ndarray]):
        shm_mod = _shm_module()
        if shm_mod is None:
            raise RuntimeError("multiprocessing.shared_memory unavailable")
        normalised = {name: np.ascontiguousarray(a)
                      for name, a in arrays.items()}
        layout: dict[str, tuple[int, tuple, str]] = {}
        total = 0
        for name, arr in normalised.items():
            total = -(-total // 64) * 64  # 64-byte aligned offsets
            layout[name] = (total, tuple(arr.shape), arr.dtype.str)
            total += arr.nbytes
        self._shm = shm_mod.SharedMemory(create=True, size=max(1, total))
        self._owner = True
        views: dict[str, np.ndarray] = {}
        for name, arr in normalised.items():
            offset, shape, dtype = layout[name]
            view = np.ndarray(shape, dtype=np.dtype(dtype),
                              buffer=self._shm.buf, offset=offset)
            view[...] = arr
            views[name] = view
        self.arrays = views
        self.nbytes = total
        self.spec = {"name": self._shm.name, "layout": layout,
                     "nbytes": total}

    @classmethod
    def attach(cls, spec: dict) -> "SharedArrays":
        shm_mod = _shm_module()
        shm = shm_mod.SharedMemory(name=spec["name"], create=False)
        self = object.__new__(cls)
        self._shm = shm
        self._owner = False
        self.arrays = {
            name: np.ndarray(shape, dtype=np.dtype(dtype),
                             buffer=shm.buf, offset=offset)
            for name, (offset, shape, dtype) in spec["layout"].items()
        }
        self.spec = spec
        self.nbytes = spec["nbytes"]
        return self

    def close(self) -> None:
        """Drop this process's mapping (the block itself survives)."""
        self.arrays = {}
        try:
            self._shm.close()
        except BufferError:
            # A view escaped and still pins the buffer; process exit will
            # release the mapping.
            pass

    def unlink(self) -> None:
        """Destroy the block (creator only; call after :meth:`close`)."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass


# ---------------------------------------------------------------------- #
# Persistent worker pool
# ---------------------------------------------------------------------- #
class WorkerCrashError(RuntimeError):
    """A pool worker died mid-chunk (segfault, ``os._exit``, OOM kill).

    Distinct from an exception *raised by* ``fn`` (which propagates as
    itself): a crash leaves no result and no diagnosis, so the pool
    surfaces it explicitly instead of silently re-executing the lost
    items — re-execution would duplicate side effects and mask the crash.
    """


def _pool_worker_main(conn, registry: dict, shared_specs: dict) -> None:
    """Resident worker loop: attach shares, then serve chunks until stop."""
    global _IN_WORKER
    _IN_WORKER = True
    attached: list[SharedArrays] = []

    def attach(key: str, spec: dict) -> None:
        block = SharedArrays.attach(spec)
        _WORKER_SHARED[key] = block.arrays
        attached.append(block)

    for key, spec in shared_specs.items():
        attach(key, spec)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        except Exception as exc:
            # A chunk that fails to unpickle (e.g. a function defined in
            # an unimportable __main__) is a caller error, not a reason
            # for the worker to die: report and keep serving.
            note = traceback.format_exc()
            try:
                pickle.dumps(exc)
            except Exception:
                exc = RuntimeError(f"undecodable pool message: {exc!r}")
            conn.send(("error", -1, -1, exc, note, 0.0))
            continue
        kind = msg[0]
        if kind == "stop":
            break
        if kind == "share":
            _, key, spec = msg
            attach(key, spec)
            conn.send(("shared", key))
            continue
        # ("chunk", call_id, start, fn_spec, payload, seeds)
        _, call_id, start, fn_spec, payload, seeds = msg
        began = time.perf_counter()
        try:
            fn = registry[fn_spec[1]] if fn_spec[0] == "name" else fn_spec[1]
            pairs = []
            for offset, item in enumerate(payload):
                with obs.capture_child() as telemetry:
                    if seeds is None:
                        result = fn(item)
                    else:
                        result = fn(item,
                                    np.random.default_rng(seeds[offset]))
                pairs.append((result, telemetry.snapshot))
        except Exception as exc:
            elapsed = time.perf_counter() - began
            note = traceback.format_exc()
            try:
                pickle.dumps(exc)
            except Exception:
                exc = RuntimeError(f"unpicklable worker exception: {exc!r}")
            conn.send(("error", call_id, start, exc, note, elapsed))
        else:
            elapsed = time.perf_counter() - began
            conn.send(("done", call_id, start, pairs, elapsed))
    _WORKER_SHARED.clear()
    for block in attached:
        block.close()
    conn.close()


class PersistentPool:
    """A long-lived fork worker pool with zero-copy shared state.

    Workers are forked once (lazily, on the first parallel map) and stay
    resident: subsequent maps only ship work chunks and results over
    pipes.  Three ways to get state to the workers, cheapest first:

    * **fork inheritance** — anything reachable when the pool starts
      (including functions attached via :meth:`register`, which may close
      over unpicklable state) is inherited copy-on-write;
    * **shared memory** — :meth:`share_arrays` publishes numpy arrays
      through one ``multiprocessing.shared_memory`` block, visible to
      already-running workers zero-copy (:func:`shared_arrays`);
    * **pickling** — map items (and, after start, unregistered functions)
      travel over the pipe and must be picklable.

    Semantics mirror :func:`parallel_map`: per-item seeds derived from one
    root (bit-identical serial/parallel), results in item order, telemetry
    snapshots absorbed in item order, worker exceptions re-raised in the
    parent.  Additionally a worker that *dies* mid-chunk raises
    :class:`WorkerCrashError` — lost items are reported, never silently
    re-executed.  ``workers <= 1``, a single item, a fork-less platform,
    or a nested call from inside a pool worker all degrade to the serial
    path with the same per-item seeds.
    """

    _ACTIVE: "weakref.WeakSet[PersistentPool]" = weakref.WeakSet()

    def __init__(self, workers: int | None = None,
                 chunksize: int | None = None):
        self.workers = max(1, int(workers if workers is not None
                                  else default_workers()))
        self._chunksize = chunksize
        self._registry: dict[str, Callable] = {}
        self._procs: list = []
        self._conns: list = []
        self._proc_of: dict = {}
        self._shared_blocks: dict[str, SharedArrays] = {}
        self._shared_specs: dict[str, dict] = {}
        self._shared_keys: set[str] = set()
        self._started = False
        self._closed = False
        self._owner_pid: int | None = None
        self._call_seq = 0
        PersistentPool._ACTIVE.add(self)

    # -------------------------------------------------------------- #
    @property
    def started(self) -> bool:
        return self._started

    @property
    def closed(self) -> bool:
        return self._closed

    def pids(self) -> list[int]:
        """PIDs of the resident workers (empty before start)."""
        return [proc.pid for proc in self._procs]

    @classmethod
    def active_pools(cls) -> list["PersistentPool"]:
        """Started, unclosed pools owned by this process (leak checks)."""
        pid = os.getpid()
        return [pool for pool in cls._ACTIVE
                if pool._started and not pool._closed
                and pool._owner_pid == pid]

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- #
    def register(self, name: str, fn: Callable) -> None:
        """Attach ``fn`` under ``name`` before the pool starts.

        Registered functions reach workers through the fork, so they may
        close over arbitrary unpicklable state; maps then refer to them
        by name.  After start the registry is frozen — the workers'
        copies were fixed at fork time.
        """
        if self._started:
            raise RuntimeError(
                "register() must run before the pool starts; resident "
                "workers inherited the registry at fork time")
        self._registry[name] = fn

    def share_arrays(self, key: str, arrays: dict[str, np.ndarray]) -> bool:
        """Publish ``arrays`` to the pool under ``key``; True when workers
        will see them zero-copy.

        Before start the arrays are staged (shared-memory block created
        eagerly when the platform supports it, plain fork inheritance
        otherwise); after start they are pushed to every resident worker,
        which requires ``multiprocessing.shared_memory``.  The parent-side
        view under :func:`shared_arrays` is the shared block itself, so
        parent writes before a map are visible to workers without any
        copy.  Only call between maps, never concurrently with one.
        """
        arrays = {name: np.asarray(a) for name, a in arrays.items()}
        self._shared_keys.add(key)
        _PARENT_SHARED[key] = arrays
        spec = None
        if _shm_module() is not None:
            block = SharedArrays(arrays)
            old = self._shared_blocks.pop(key, None)
            if old is not None:
                old.close()
                old.unlink()
            self._shared_blocks[key] = block
            self._shared_specs[key] = block.spec
            _PARENT_SHARED[key] = block.arrays
            spec = block.spec
            obs.gauge("pool.shared_bytes",
                      sum(b.nbytes for b in self._shared_blocks.values()))
        if not self._started:
            return True
        if spec is None:
            return False  # resident workers cannot see a post-fork share
        for conn in self._conns:
            conn.send(("share", key, spec))
        for conn in self._conns:
            ack = conn.recv()
            if ack != ("shared", key):
                raise RuntimeError(f"unexpected share ack {ack!r}")
        return True

    # -------------------------------------------------------------- #
    def start(self) -> bool:
        """Fork the resident workers; True when the pool is running.

        Idempotent.  Returns False — leaving every map on the serial
        path — when fork is unavailable or construction fails (the same
        construction-only fallback :func:`parallel_map` makes).
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        if self._started:
            return True
        if not fork_available() or _IN_WORKER:
            return False
        ctx = multiprocessing.get_context("fork")
        try:
            for index in range(self.workers):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_pool_worker_main,
                    args=(child_conn, self._registry,
                          dict(self._shared_specs)),
                    daemon=True, name=f"repro-pool-{index}")
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
                self._proc_of[parent_conn] = proc
        except (OSError, AssertionError):
            self._teardown_processes()
            return False
        self._started = True
        self._owner_pid = os.getpid()
        obs.count("pool.starts")
        obs.gauge("pool.workers", self.workers)
        return True

    def map(self, fn: Callable[..., R] | str, items: Iterable[T],
            seed: int | None = None, use_seeds: bool = False,
            chunksize: int | None = None) -> list[R]:
        """Map ``fn`` over ``items`` on the resident workers.

        ``fn`` is a callable or the name of a :meth:`register`-ed
        function.  Seeding follows :func:`parallel_map`: a ``seed`` (or
        ``use_seeds``) switches to the two-argument ``fn(item, rng)``
        form with the identical per-item derivation.  Items and results
        travel over pipes and must be picklable; a callable ``fn`` must
        be picklable too once the pool is already running (the map that
        *starts* the pool hands it to workers through the fork).
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        items = list(items)
        seeds = derive_seeds(seed, len(items)) \
            if (use_seeds or seed is not None) else None
        if not items:
            return []
        parallel = (self.workers > 1 and len(items) > 1 and not _IN_WORKER
                    and fork_available())
        fn_spec = None
        if parallel and not self._started:
            fn_spec = self._stage_for_start(fn)
            parallel = self.start()
        elif parallel:
            fn_spec = self._resolve_spec(fn)
        if not parallel:
            return self._serial(fn, items, seeds)
        return self._dispatch(fn_spec, items, seeds,
                              chunksize or self._chunksize)

    def close(self, timeout: float = 5.0) -> None:
        """Stop the workers and release shared blocks (idempotent).

        A forked child inheriting this object must not tear down its
        parent's pool, so close() is a no-op outside the owning process.
        """
        if self._closed:
            return
        if self._started and self._owner_pid != os.getpid():
            return
        self._closed = True
        if self._started:
            for conn in self._conns:
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            self._teardown_processes(timeout=timeout)
        self._release_shared()
        self._started = False
        PersistentPool._ACTIVE.discard(self)

    def _release_shared(self) -> None:
        for key in self._shared_keys:
            _PARENT_SHARED.pop(key, None)
        for block in self._shared_blocks.values():
            block.close()
            block.unlink()
        self._shared_blocks.clear()
        self._shared_specs.clear()

    # -------------------------------------------------------------- #
    def _teardown_processes(self, timeout: float = 5.0) -> None:
        for proc in self._procs:
            proc.join(timeout=timeout)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._procs.clear()
        self._conns.clear()
        self._proc_of.clear()

    def _stage_for_start(self, fn) -> tuple:
        """fn spec for the map that starts the pool (fork-inheritable)."""
        if isinstance(fn, str):
            if fn not in self._registry:
                raise KeyError(f"no registered pool function {fn!r}")
            return ("name", fn)
        name = f"__map_{self._call_seq}__"
        self._registry[name] = fn
        return ("name", name)

    def _resolve_spec(self, fn) -> tuple:
        if isinstance(fn, str):
            if fn not in self._registry:
                raise KeyError(f"no registered pool function {fn!r}")
            return ("name", fn)
        try:
            pickle.dumps(fn)
        except Exception as exc:
            raise TypeError(
                "callable is not picklable and the pool is already "
                "running; register() it before start so workers inherit "
                "it through the fork") from exc
        return ("fn", fn)

    def _serial(self, fn, items, seeds) -> list:
        if isinstance(fn, str):
            fn = self._registry[fn]
        if seeds is None:
            return [fn(item) for item in items]
        return [fn(item, np.random.default_rng(s))
                for item, s in zip(items, seeds)]

    def _dispatch(self, fn_spec, items, seeds, chunksize) -> list:
        call_id = self._call_seq
        self._call_seq += 1
        n = len(items)
        size = chunksize or _default_chunksize(n, min(self.workers, n))
        pending = deque(range(0, n, size))
        out: list = [None] * n
        errors: list[tuple[int, BaseException, str]] = []
        crashes: list[tuple[int, int, object]] = []
        busy: dict = {}
        busy_time = 0.0
        began = time.perf_counter()

        def send_next(conn) -> None:
            start = pending.popleft()
            payload = items[start:start + size]
            seed_slice = None if seeds is None else seeds[start:start + size]
            conn.send(("chunk", call_id, start, fn_spec, payload, seed_slice))
            busy[conn] = (start, len(payload))

        for conn in self._conns:
            if not pending:
                break
            send_next(conn)
        while busy:
            ready = connection.wait(list(busy), timeout=5.0)
            if not ready:
                for conn in list(busy):
                    if not self._proc_of[conn].is_alive():
                        start, count = busy.pop(conn)
                        crashes.append((start, count,
                                        self._proc_of[conn].exitcode))
                continue
            for conn in ready:
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    start, count = busy.pop(conn)
                    self._proc_of[conn].join(timeout=1.0)
                    crashes.append((start, count,
                                    self._proc_of[conn].exitcode))
                    continue
                start, count = busy.pop(conn)
                if msg[0] == "done":
                    _, _, msg_start, pairs, elapsed = msg
                    out[msg_start:msg_start + len(pairs)] = pairs
                    busy_time += elapsed
                else:
                    _, _, msg_start, exc, note, elapsed = msg
                    errors.append((msg_start, exc, note))
                    busy_time += elapsed
                # Dynamic load balancing: the first worker to finish gets
                # the next chunk.  Results reassemble by index, so the
                # schedule cannot affect the output.  After a failure no
                # new work goes out; in-flight chunks still drain.
                if pending and not errors and not crashes:
                    send_next(conn)

        wall = time.perf_counter() - began
        obs.count("pool.maps")
        obs.count("pool.items", n)
        if wall > 0:
            obs.gauge("pool.utilization",
                      busy_time / (wall * len(self._conns)))
        if crashes:
            lost = ", ".join(f"items {s}..{s + c - 1} (exit {code})"
                             for s, c, code in sorted(crashes))
            never_ran = sum(len(items[s:s + size]) for s in pending)
            self._closed = True
            self._teardown_processes(timeout=1.0)
            self._release_shared()
            PersistentPool._ACTIVE.discard(self)
            raise WorkerCrashError(
                f"pool worker died mid-chunk: {lost}; {never_ran} queued "
                "items were never dispatched; nothing was re-executed")
        if errors:
            errors.sort(key=lambda e: e[0])
            _, exc, note = errors[0]
            exc.add_note("(raised in a PersistentPool worker)\n" + note)
            raise exc
        results = []
        for result, telemetry in out:
            obs.absorb(telemetry)  # item order -> deterministic
            results.append(result)
        return results


@atexit.register
def _close_active_pools() -> None:
    for pool in list(PersistentPool._ACTIVE):
        try:
            pool.close(timeout=1.0)
        except Exception:
            pass
