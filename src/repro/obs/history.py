"""Training-curve container shared by every trainer.

``TrainingHistory`` is a ``dict[str, list[float]]`` (so existing
``history["reward"]`` indexing keeps working) with the conveniences the
examples and ablation benchmarks assert against: :meth:`record` appends
one epoch's metrics across several series at once, :meth:`last` and
:meth:`series` read them back safely, and :meth:`summary` renders a
one-line first->last digest per curve.

Series are ragged by design — e.g. ``critic_loss`` only grows when the
critic baseline is active, ``eval`` only when validation runs — so
consumers should index by name, not assume aligned lengths.

Histories persist as JSONL (:meth:`TrainingHistory.save` /
:meth:`TrainingHistory.load`): one ``{"series": name, "values": [...]}``
object per line, series in sorted order — so training curves survive the
process and diff cleanly next to ``--trace`` / ``--profile`` files.
"""

from __future__ import annotations

import json

__all__ = ["TrainingHistory"]


class TrainingHistory(dict):
    """Named metric series accumulated over training iterations."""

    def record(self, **metrics: float) -> None:
        """Append one value per named series (series created on demand)."""
        for name, value in metrics.items():
            self.setdefault(name, []).append(float(value))

    def series(self, name: str) -> list[float]:
        """The named curve ([] when never recorded)."""
        return self.get(name, [])

    def last(self, name: str, default: float | None = None) -> float | None:
        values = self.get(name)
        if not values:
            return default
        return values[-1]

    def to_dict(self) -> dict[str, list[float]]:
        return {name: list(values) for name, values in self.items()}

    def save(self, path) -> None:
        """Write the history as JSONL: one series per line, sorted.

        Empty series are kept — a curve that never recorded (e.g.
        ``critic_loss`` without the critic baseline) round-trips as
        itself rather than disappearing.
        """
        with open(path, "w") as handle:
            for name in sorted(self):
                record = {"series": name,
                          "values": [float(v) for v in self[name]]}
                handle.write(json.dumps(record, sort_keys=True) + "\n")

    @classmethod
    def load(cls, path) -> "TrainingHistory":
        """Read a history written by :meth:`save`."""
        history = cls()
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                history[record["series"]] = [float(v)
                                             for v in record["values"]]
        return history

    def summary(self) -> str:
        """One line per non-empty series: count and first -> last values."""
        lines = []
        for name in sorted(self):
            values = self[name]
            if not values:
                continue
            lines.append(f"{name}: n={len(values)} "
                         f"first={values[0]:.4f} last={values[-1]:.4f}")
        return "\n".join(lines)
