"""Counter/gauge/timing registry behind the tracing layer.

A :class:`MetricsRegistry` is the numeric half of ``repro.obs``: named
**counters** (monotone sums), **gauges** (merged by maximum) and
**timings** (wall-clock sums plus span call counts).  The split encodes
the determinism contract the solver relies on:

* ``counters`` must be *schedule-invariant* — a traced run records the
  same counter values whether rollouts execute serially, batched, or
  across a fork pool, so regression tests can compare them bit-for-bit.
* ``gauges`` merge by ``max`` (commutative and associative), so they are
  also schedule-invariant for quantities like "largest cache observed".
* ``timings`` hold wall-clock measurements and per-schedule span counts;
  they are explicitly *excluded* from the bit-identity contract.

The registry subsumes :class:`~repro.core.perf.PerfCounters`: every solve's
final counters can be absorbed via :meth:`record_perf`, and a registry
carrying the ``perf.*`` names can be projected back with :meth:`to_perf` —
round-tripping is covered by tests.  Snapshots (:meth:`snapshot` /
:meth:`diff` / :meth:`merge_snapshot`) are plain picklable dicts, which is
what lets :mod:`repro.parallel` ship worker-side telemetry back to the
parent process with each result.
"""

from __future__ import annotations

from ..core.perf import PerfCounters

__all__ = ["MetricsRegistry", "PERF_COUNTER_NAMES", "PERF_TIMING_NAMES",
           "PERF_GAUGE_NAMES"]

#: PerfCounters fields that are schedule-invariant -> ``counters``.
PERF_COUNTER_NAMES = ("planner_calls", "init_planner_calls", "backend_calls",
                      "cache_hits", "cache_misses", "cache_evictions",
                      "rollouts")
#: PerfCounters wall-clock fields -> ``timings``.
PERF_TIMING_NAMES = ("init_time", "selection_time")
#: PerfCounters fields merged by maximum -> ``gauges``.
PERF_GAUGE_NAMES = ("cache_size",)


class MetricsRegistry:
    """Named counters, gauges and timings with deterministic merging."""

    __slots__ = ("counters", "gauges", "timings")

    def __init__(self):
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.timings: dict[str, float] = {}

    # ------------------------------------------------------------------ #
    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Raise gauge ``name`` to ``value`` if larger (max-merge)."""
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = value

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate wall-clock ``seconds`` under timing ``name``."""
        self.timings[name] = self.timings.get(name, 0.0) + seconds

    # ------------------------------------------------------------------ #
    def record_perf(self, perf: PerfCounters, prefix: str = "perf.") -> None:
        """Absorb a :class:`PerfCounters` under ``prefix``-qualified names."""
        for field in PERF_COUNTER_NAMES:
            value = getattr(perf, field)
            if value:
                self.inc(prefix + field, value)
        for field in PERF_TIMING_NAMES:
            value = getattr(perf, field)
            if value:
                self.add_time(prefix + field, value)
        for field in PERF_GAUGE_NAMES:
            value = getattr(perf, field)
            if value:
                self.gauge(prefix + field, value)

    def to_perf(self, prefix: str = "perf.") -> PerfCounters:
        """Project the ``prefix``-qualified names back to a PerfCounters."""
        payload: dict[str, float] = {}
        for field in PERF_COUNTER_NAMES:
            payload[field] = self.counters.get(prefix + field, 0)
        for field in PERF_TIMING_NAMES:
            payload[field] = self.timings.get(prefix + field, 0.0)
        for field in PERF_GAUGE_NAMES:
            payload[field] = self.gauges.get(prefix + field, 0)
        return PerfCounters.from_dict(payload)

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Picklable copy of the full registry state."""
        return {"counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "timings": dict(self.timings)}

    def diff(self, baseline: dict) -> dict:
        """The delta accumulated since ``baseline`` (a prior snapshot).

        Counters and timings subtract (zero deltas are dropped); gauges
        keep their current value — max-merging the delta into the baseline
        then reproduces this registry exactly.
        """
        counters = {}
        for name, value in self.counters.items():
            delta = value - baseline["counters"].get(name, 0)
            if delta:
                counters[name] = delta
        timings = {}
        for name, value in self.timings.items():
            delta = value - baseline["timings"].get(name, 0.0)
            if delta:
                timings[name] = delta
        return {"counters": counters, "gauges": dict(self.gauges),
                "timings": timings}

    def merge_snapshot(self, payload: dict) -> None:
        """Merge a snapshot/delta: counters and timings sum, gauges max."""
        for name, value in payload.get("counters", {}).items():
            self.inc(name, value)
        for name, value in payload.get("gauges", {}).items():
            self.gauge(name, value)
        for name, value in payload.get("timings", {}).items():
            self.add_time(name, value)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        self.merge_snapshot(other.snapshot())
        return self

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.timings.clear()

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return self.snapshot()

    def span_summary(self) -> list[tuple[str, int, float]]:
        """(span path, call count, total seconds) rows from the timings.

        Spans record ``span.<path>.time`` / ``span.<path>.count`` pairs;
        rows come back sorted by path for stable rendering.
        """
        rows = []
        for name, total in sorted(self.timings.items()):
            if not (name.startswith("span.") and name.endswith(".time")):
                continue
            path = name[len("span."):-len(".time")]
            count = int(self.timings.get(f"span.{path}.count", 0))
            rows.append((path, count, total))
        return rows

    def profile_summary(self) -> list[tuple[str, int, float, float]]:
        """(op name, calls, total seconds, total FLOPs) rows.

        An :class:`~repro.obs.profile.OpProfiler` publishes
        ``profile.<op>.time`` / ``.calls`` / ``.flops`` into ``timings``
        (wall-clock territory) plus a ``profile.peak_live_bytes`` gauge;
        this reads the per-op rows back, sorted by name.
        """
        rows = []
        for name, total in sorted(self.timings.items()):
            if not (name.startswith("profile.") and name.endswith(".time")):
                continue
            op = name[len("profile."):-len(".time")]
            calls = int(self.timings.get(f"profile.{op}.calls", 0))
            flops = self.timings.get(f"profile.{op}.flops", 0.0)
            rows.append((op, calls, total, flops))
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MetricsRegistry(counters={len(self.counters)}, "
                f"gauges={len(self.gauges)}, timings={len(self.timings)})")
