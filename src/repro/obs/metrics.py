"""Counter/gauge/timing registry behind the tracing layer.

A :class:`MetricsRegistry` is the numeric half of ``repro.obs``: named
**counters** (monotone sums), **gauges** (merged by maximum), **timings**
(wall-clock sums plus span call counts) and **histograms**
(bounded-reservoir value distributions with quantile queries).  The split
encodes the determinism contract the solver relies on:

* ``counters`` must be *schedule-invariant* — a traced run records the
  same counter values whether rollouts execute serially, batched, or
  across a fork pool, so regression tests can compare them bit-for-bit.
* ``gauges`` merge by ``max`` (commutative and associative), so they are
  also schedule-invariant for quantities like "largest cache observed".
* ``timings`` hold wall-clock measurements and per-schedule span counts;
  they are explicitly *excluded* from the bit-identity contract.
* ``histograms`` record observation streams (latencies, batch sizes) in
  a bounded *truncating* reservoir — the first ``capacity`` values are
  kept verbatim plus exact count/total/min/max.  Append-only storage is
  what makes :meth:`diff` as simple as a counter subtraction (ship the
  values observed since the baseline) and :meth:`merge_snapshot`
  deterministic when children are absorbed in item order; quantiles are
  exact until the reservoir fills and first-``capacity``-sample
  estimates after.

The registry subsumes :class:`~repro.core.perf.PerfCounters`: every solve's
final counters can be absorbed via :meth:`record_perf`, and a registry
carrying the ``perf.*`` names can be projected back with :meth:`to_perf` —
round-tripping is covered by tests.  Snapshots (:meth:`snapshot` /
:meth:`diff` / :meth:`merge_snapshot`) are plain picklable dicts, which is
what lets :mod:`repro.parallel` ship worker-side telemetry back to the
parent process with each result.
"""

from __future__ import annotations

import math
import threading

from ..core.perf import PerfCounters

__all__ = ["Histogram", "MetricsRegistry", "DEFAULT_HISTOGRAM_CAPACITY",
           "METRICS_SCHEMA_VERSION",
           "PERF_COUNTER_NAMES", "PERF_TIMING_NAMES", "PERF_GAUGE_NAMES"]

#: Reservoir size for histograms created through :meth:`MetricsRegistry.observe`.
DEFAULT_HISTOGRAM_CAPACITY = 4096

#: Version stamped into every metrics JSONL record (serving stats files,
#: trace-file headers).  Bump when a field is renamed/removed so offline
#: consumers (the dashboard, scrapers) can reject files they misread.
METRICS_SCHEMA_VERSION = 1


class Histogram:
    """Bounded-reservoir value distribution with quantile queries.

    Keeps exact ``count`` / ``total`` / ``min`` / ``max`` forever and the
    first ``capacity`` observed values verbatim.  Quantiles interpolate
    over the stored values, so they are exact while ``count <=
    capacity`` and first-sample estimates after — the serving smoke and
    bench workloads stay well inside the default reservoir.  Storage is
    append-only, which gives the same delta/merge algebra as counters:
    a delta is "the values appended since the baseline" and merging a
    delta is appending, so fork-pool children absorbed in item order
    reproduce the serial registry exactly while everything fits.

    When merged state *overflows* the reservoir, the histogram switches
    to a **weighted quantile sketch**: the sorted union is compacted to
    ``capacity`` equal-mass representatives (evenly spaced weighted
    order statistics).  Each compaction adds at most ``1/capacity`` of
    the represented mass in rank error, so quantiles stay bounded-error
    under arbitrarily many merges in any order — unlike the historical
    keep-the-first-values truncation, whose error was unbounded once the
    tail diverged from the head.  ``weights`` is ``None`` for a pure
    observe-side reservoir (the exact regime) and materialises only when
    a merge leaves the append-only world.
    """

    __slots__ = ("capacity", "count", "total", "min", "max", "values",
                 "weights", "compactions")

    def __init__(self, capacity: int = DEFAULT_HISTOGRAM_CAPACITY):
        if capacity < 1:
            raise ValueError(f"histogram capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.values: list[float] = []
        #: Per-value mass; ``None`` while the reservoir is exact.
        self.weights: list[float] | None = None
        #: How many times the reservoir was rewritten (sorted/compacted).
        #: The append-only delta algebra is valid only between states with
        #: the same compaction count.
        self.compactions = 0

    # ------------------------------------------------------------------ #
    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self.values) < self.capacity:
            self.values.append(value)
            if self.weights is not None:
                self.weights.append(1.0)

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile over the stored reservoir.

        Raises ``ValueError`` on an empty histogram or ``q`` outside
        ``[0, 1]``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.values:
            raise ValueError("quantile of an empty histogram")
        if self.weights is None:
            ordered = sorted(self.values)
            pos = q * (len(ordered) - 1)
            lo = int(pos)
            hi = min(lo + 1, len(ordered) - 1)
            frac = pos - lo
            return ordered[lo] * (1.0 - frac) + ordered[hi] * frac
        # Weighted: interpolate between the mass midpoints of the sorted
        # representatives (reduces to the unweighted rule when all
        # weights are equal).
        pairs = sorted(zip(self.values, self.weights))
        target = q * sum(w for _, w in pairs)
        cum = 0.0
        prev_mid = prev_val = None
        for value, weight in pairs:
            mid = cum + weight / 2.0
            if target <= mid:
                if prev_mid is None or mid <= prev_mid:
                    return value
                frac = (target - prev_mid) / (mid - prev_mid)
                return prev_val + frac * (value - prev_val)
            prev_mid, prev_val = mid, value
            cum += weight
        return pairs[-1][0]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        """count/mean/min/max plus the p50/p95/p99 the serving layer reports."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count, "mean": self.mean,
            "min": self.min, "max": self.max,
            "p50": self.quantile(0.50), "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    # ------------------------------------------------------------------ #
    def state(self) -> dict:
        """Picklable full state (the snapshot currency)."""
        state = {"capacity": self.capacity, "count": self.count,
                 "total": self.total, "min": self.min, "max": self.max,
                 "values": list(self.values)}
        if self.weights is not None:
            state["weights"] = list(self.weights)
        if self.compactions:
            state["compactions"] = self.compactions
        return state

    def delta_since(self, baseline: dict | None) -> dict | None:
        """Observations accumulated since ``baseline`` (a prior state).

        ``None`` baseline means the histogram is new — the whole state is
        the delta.  Returns ``None`` when nothing was observed since.
        The tail-slice delta is exact only while the reservoir stayed
        append-only since the baseline; across a compaction the delta
        degrades to count/total/min/max with no stored values (quantile
        mass stays at the last compaction — still bounded error).
        """
        if baseline is None:
            return self.state() if self.count else None
        new_count = self.count - baseline["count"]
        if not new_count:
            return None
        delta = {"capacity": self.capacity, "count": new_count,
                 "total": self.total - baseline["total"],
                 "min": self.min, "max": self.max}
        if (self.weights is None and "weights" not in baseline
                and self.compactions == baseline.get("compactions", 0)):
            delta["values"] = list(self.values[len(baseline["values"]):])
        else:
            delta["values"] = []
        return delta

    @staticmethod
    def _compact(pairs: list[tuple[float, float]],
                 capacity: int) -> tuple[list[float], list[float]]:
        """Evenly spaced weighted order statistics of ``pairs`` (sorted
        by value): ``capacity`` equal-mass representatives."""
        total = sum(weight for _, weight in pairs)
        step = total / capacity
        values, cum, j = [], 0.0, 0
        for i in range(capacity):
            target = (i + 0.5) * step
            while j < len(pairs) - 1 and cum + pairs[j][1] < target:
                cum += pairs[j][1]
                j += 1
            values.append(pairs[j][0])
        return values, [step] * capacity

    def merge_state(self, payload: dict) -> None:
        """Merge a state/delta: counts and totals sum, min/max widen.

        While both sides are exact reservoirs and the union fits, values
        simply extend (bit-exact, order preserved — the fork-pool
        item-order contract).  Past capacity the union is compacted to a
        weighted sketch (see the class docstring)."""
        self.count += payload["count"]
        self.total += payload["total"]
        if payload["min"] < self.min:
            self.min = payload["min"]
        if payload["max"] > self.max:
            self.max = payload["max"]
        their_values = payload["values"]
        their_weights = payload.get("weights")
        if (self.weights is None and their_weights is None
                and len(self.values) + len(their_values) <= self.capacity):
            self.values.extend(their_values)
            return
        if not their_values:
            return
        mine_w = (self.weights if self.weights is not None
                  else [1.0] * len(self.values))
        theirs_w = (list(their_weights) if their_weights is not None
                    else [1.0] * len(their_values))
        pairs = sorted(zip(self.values + list(their_values),
                           mine_w + theirs_w))
        if len(pairs) > self.capacity:
            self.values, self.weights = self._compact(pairs, self.capacity)
        else:
            self.values = [value for value, _ in pairs]
            self.weights = [weight for _, weight in pairs]
        self.compactions += 1

    @classmethod
    def from_state(cls, payload: dict) -> "Histogram":
        hist = cls(payload.get("capacity", DEFAULT_HISTOGRAM_CAPACITY))
        hist.merge_state(payload)
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram(count={self.count}, mean={self.mean:.4g}, "
                f"stored={len(self.values)}/{self.capacity})")

#: PerfCounters fields that are schedule-invariant -> ``counters``.
PERF_COUNTER_NAMES = ("planner_calls", "init_planner_calls", "backend_calls",
                      "cache_hits", "cache_misses", "cache_evictions",
                      "rollouts")
#: PerfCounters wall-clock fields -> ``timings``.
PERF_TIMING_NAMES = ("init_time", "selection_time")
#: PerfCounters fields merged by maximum -> ``gauges``.
PERF_GAUGE_NAMES = ("cache_size",)


class MetricsRegistry:
    """Named counters, gauges, timings and histograms with deterministic
    merging.

    Mutation is **thread-safe**: one internal re-entrant lock serialises
    every write (``inc``/``gauge``/``add_time``/``observe``/
    ``merge_snapshot``) and every composite read (``snapshot``/``diff``/
    summaries), so the serving layer's event-loop thread and engine
    worker thread can share one registry without losing increments.
    The lock is re-entrant because ``merge_snapshot`` and
    ``record_perf`` compose the primitive writers.
    """

    __slots__ = ("counters", "gauges", "timings", "histograms", "_lock")

    def __init__(self):
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.timings: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Raise gauge ``name`` to ``value`` if larger (max-merge)."""
        with self._lock:
            current = self.gauges.get(name)
            if current is None or value > current:
                self.gauges[name] = value

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate wall-clock ``seconds`` under timing ``name``."""
        with self._lock:
            self.timings[name] = self.timings.get(name, 0.0) + seconds

    def observe(self, name: str, value: float,
                capacity: int = DEFAULT_HISTOGRAM_CAPACITY) -> None:
        """Record ``value`` into histogram ``name`` (created on first use)."""
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram(capacity)
            hist.observe(value)

    def quantile(self, name: str, q: float) -> float:
        """Quantile ``q`` of histogram ``name``; KeyError when absent."""
        with self._lock:
            return self.histograms[name].quantile(q)

    def histogram_summary(self, name: str) -> dict:
        """count/mean/min/max/p50/p95/p99 of histogram ``name`` (or
        ``{"count": 0}`` when it was never observed)."""
        with self._lock:
            hist = self.histograms.get(name)
            return hist.summary() if hist is not None else {"count": 0}

    # ------------------------------------------------------------------ #
    def record_perf(self, perf: PerfCounters, prefix: str = "perf.") -> None:
        """Absorb a :class:`PerfCounters` under ``prefix``-qualified names."""
        for field in PERF_COUNTER_NAMES:
            value = getattr(perf, field)
            if value:
                self.inc(prefix + field, value)
        for field in PERF_TIMING_NAMES:
            value = getattr(perf, field)
            if value:
                self.add_time(prefix + field, value)
        for field in PERF_GAUGE_NAMES:
            value = getattr(perf, field)
            if value:
                self.gauge(prefix + field, value)

    def to_perf(self, prefix: str = "perf.") -> PerfCounters:
        """Project the ``prefix``-qualified names back to a PerfCounters."""
        payload: dict[str, float] = {}
        for field in PERF_COUNTER_NAMES:
            payload[field] = self.counters.get(prefix + field, 0)
        for field in PERF_TIMING_NAMES:
            payload[field] = self.timings.get(prefix + field, 0.0)
        for field in PERF_GAUGE_NAMES:
            payload[field] = self.gauges.get(prefix + field, 0)
        return PerfCounters.from_dict(payload)

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Picklable copy of the full registry state."""
        with self._lock:
            state = {"counters": dict(self.counters),
                     "gauges": dict(self.gauges),
                     "timings": dict(self.timings)}
            if self.histograms:
                state["histograms"] = {
                    name: hist.state()
                    for name, hist in self.histograms.items()}
            return state

    def diff(self, baseline: dict) -> dict:
        """The delta accumulated since ``baseline`` (a prior snapshot).

        Counters and timings subtract (zero deltas are dropped); gauges
        keep their current value — max-merging the delta into the baseline
        then reproduces this registry exactly.
        """
        with self._lock:
            counters = {}
            for name, value in self.counters.items():
                delta = value - baseline["counters"].get(name, 0)
                if delta:
                    counters[name] = delta
            timings = {}
            for name, value in self.timings.items():
                delta = value - baseline["timings"].get(name, 0.0)
                if delta:
                    timings[name] = delta
            delta = {"counters": counters, "gauges": dict(self.gauges),
                     "timings": timings}
            baseline_hists = baseline.get("histograms", {})
            histograms = {}
            for name, hist in self.histograms.items():
                hist_delta = hist.delta_since(baseline_hists.get(name))
                if hist_delta is not None:
                    histograms[name] = hist_delta
            if histograms:
                delta["histograms"] = histograms
            return delta

    def merge_snapshot(self, payload: dict) -> None:
        """Merge a snapshot/delta: counters and timings sum, gauges max,
        histogram deltas append."""
        with self._lock:
            for name, value in payload.get("counters", {}).items():
                self.inc(name, value)
            for name, value in payload.get("gauges", {}).items():
                self.gauge(name, value)
            for name, value in payload.get("timings", {}).items():
                self.add_time(name, value)
            for name, state in payload.get("histograms", {}).items():
                hist = self.histograms.get(name)
                if hist is None:
                    self.histograms[name] = Histogram.from_state(state)
                else:
                    hist.merge_state(state)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        self.merge_snapshot(other.snapshot())
        return self

    def clear(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.timings.clear()
            self.histograms.clear()

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return self.snapshot()

    def span_summary(self) -> list[tuple[str, int, float]]:
        """(span path, call count, total seconds) rows from the timings.

        Spans record ``span.<path>.time`` / ``span.<path>.count`` pairs;
        rows come back sorted by path for stable rendering.
        """
        rows = []
        for name, total in sorted(self.timings.items()):
            if not (name.startswith("span.") and name.endswith(".time")):
                continue
            path = name[len("span."):-len(".time")]
            count = int(self.timings.get(f"span.{path}.count", 0))
            rows.append((path, count, total))
        return rows

    def profile_summary(self) -> list[tuple[str, int, float, float]]:
        """(op name, calls, total seconds, total FLOPs) rows.

        An :class:`~repro.obs.profile.OpProfiler` publishes
        ``profile.<op>.time`` / ``.calls`` / ``.flops`` into ``timings``
        (wall-clock territory) plus a ``profile.peak_live_bytes`` gauge;
        this reads the per-op rows back, sorted by name.
        """
        rows = []
        for name, total in sorted(self.timings.items()):
            if not (name.startswith("profile.") and name.endswith(".time")):
                continue
            op = name[len("profile."):-len(".time")]
            calls = int(self.timings.get(f"profile.{op}.calls", 0))
            flops = self.timings.get(f"profile.{op}.flops", 0.0)
            rows.append((op, calls, total, flops))
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MetricsRegistry(counters={len(self.counters)}, "
                f"gauges={len(self.gauges)}, timings={len(self.timings)}, "
                f"histograms={len(self.histograms)})")
