"""Rolling-window SLO tracking: windowed percentiles, error budgets, alerts.

The :class:`~repro.obs.metrics.Histogram` family answers "what happened
over the whole run"; an operator asks "what is happening *now*".
:class:`SloTracker` answers that with **time-bucketed rolling windows**:
observations land in the bucket of their timestamp, buckets older than
the window are dropped, and percentiles/error rates are computed over
whatever the window currently holds.  On top of the windows sit
**objectives** (:class:`SloConfig`): windowed latency-percentile targets
and an error budget (the fraction of requests in the window that may
fail).  Every breach and recovery is emitted into the trace stream as a
``slo.alert`` / ``slo.clear`` event, so an active
:func:`~repro.obs.trace.tracing` context captures the exact moment a
deployment went out of budget — alongside the spans that explain why.

Clocks are explicit: every mutating call accepts ``now`` so the serving
layer can pass :func:`time.monotonic` timestamps while the dynamic
scenario passes simulation time (event epochs).  Omitting ``now`` uses
the tracker's ``clock`` (monotonic by default).

Fork-pool propagation mirrors the op profiler: :func:`install` registers
a tracker as the process-current one, ``obs.capture_child`` snapshots it
around each worker item, and the parent merges the **window delta** back
in item order — so a ``solve_dynamic(workers=4)`` run reports the same
windowed rejection rate as the serial run (wall-clock bucket contents
aside, which are never part of the bit-identity contract).
"""

from __future__ import annotations

import time

from .trace import event as _trace_event

__all__ = ["SloConfig", "SloTracker", "RollingWindow", "RollingCounter",
           "FAILURE_KINDS", "install", "current_slo_tracker"]

#: Outcome kinds counted against the error budget.  ``shed_deadline`` /
#: ``overload`` / ``error`` come from the serving layer; ``rejected`` is
#: the dynamic scenario's task-rejection outcome.
FAILURE_KINDS = ("shed_deadline", "overload", "error", "rejected")


class RollingWindow:
    """Time-bucketed rolling reservoir of float observations.

    The window ``[now - window_s, now]`` is covered by ``num_buckets``
    fixed-width buckets keyed by integer epoch ``floor(t / bucket_s)``.
    Observations append to their epoch's bucket; any read or write at
    time ``now`` first drops buckets that fell out of the window.
    Within a bucket storage is append-only, which is what makes the
    child-side delta (values appended since a baseline) well defined.
    """

    __slots__ = ("window_s", "num_buckets", "bucket_s", "_buckets")

    def __init__(self, window_s: float = 60.0, num_buckets: int = 12):
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self.window_s = float(window_s)
        self.num_buckets = num_buckets
        self.bucket_s = self.window_s / num_buckets
        self._buckets: dict[int, list[float]] = {}

    # ------------------------------------------------------------------ #
    def _epoch(self, now: float) -> int:
        return int(now // self.bucket_s)

    def _prune(self, now: float) -> None:
        floor = self._epoch(now) - self.num_buckets + 1
        for epoch in [e for e in self._buckets if e < floor]:
            del self._buckets[epoch]

    def observe(self, value: float, now: float) -> None:
        self._prune(now)
        self._buckets.setdefault(self._epoch(now), []).append(float(value))

    def values(self, now: float) -> list[float]:
        """Every observation still inside the window, bucket order."""
        self._prune(now)
        out: list[float] = []
        for epoch in sorted(self._buckets):
            out.extend(self._buckets[epoch])
        return out

    def count(self, now: float) -> int:
        self._prune(now)
        return sum(len(v) for v in self._buckets.values())

    def percentile(self, q: float, now: float) -> float | None:
        """Linear-interpolated windowed quantile; None on an empty window."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        ordered = sorted(self.values(now))
        if not ordered:
            return None
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    # -- snapshot/delta/merge (fork-pool currency) --------------------- #
    def state(self) -> dict:
        return {e: list(v) for e, v in self._buckets.items()}

    def delta_since(self, baseline: dict) -> dict:
        """Values appended since ``baseline`` (a prior :meth:`state`).

        Buckets are append-only, so the delta of a shared epoch is a tail
        slice; epochs the baseline never saw ship whole.  Epochs pruned
        since the baseline are gone from both sides and contribute
        nothing.
        """
        delta = {}
        for epoch, values in self._buckets.items():
            seen = len(baseline.get(epoch, ()))
            if len(values) > seen:
                delta[epoch] = list(values[seen:])
        return delta

    def merge_state(self, payload: dict) -> None:
        for epoch, values in payload.items():
            self._buckets.setdefault(int(epoch), []).extend(values)


class RollingCounter:
    """Time-bucketed named counters (the outcome half of the window)."""

    __slots__ = ("window_s", "num_buckets", "bucket_s", "_buckets")

    def __init__(self, window_s: float = 60.0, num_buckets: int = 12):
        self.window_s = float(window_s)
        self.num_buckets = num_buckets
        self.bucket_s = self.window_s / num_buckets
        self._buckets: dict[int, dict[str, int]] = {}

    def _prune(self, now: float) -> None:
        floor = int(now // self.bucket_s) - self.num_buckets + 1
        for epoch in [e for e in self._buckets if e < floor]:
            del self._buckets[epoch]

    def inc(self, name: str, now: float, value: int = 1) -> None:
        self._prune(now)
        bucket = self._buckets.setdefault(int(now // self.bucket_s), {})
        bucket[name] = bucket.get(name, 0) + value

    def totals(self, now: float) -> dict[str, int]:
        self._prune(now)
        out: dict[str, int] = {}
        for bucket in self._buckets.values():
            for name, value in bucket.items():
                out[name] = out.get(name, 0) + value
        return out

    def state(self) -> dict:
        return {e: dict(v) for e, v in self._buckets.items()}

    def delta_since(self, baseline: dict) -> dict:
        delta = {}
        for epoch, bucket in self._buckets.items():
            base = baseline.get(epoch, {})
            changed = {name: value - base.get(name, 0)
                       for name, value in bucket.items()
                       if value - base.get(name, 0)}
            if changed:
                delta[epoch] = changed
        return delta

    def merge_state(self, payload: dict) -> None:
        for epoch, bucket in payload.items():
            mine = self._buckets.setdefault(int(epoch), {})
            for name, value in bucket.items():
                mine[name] = mine.get(name, 0) + value


class SloConfig:
    """Objectives evaluated over the rolling window.

    ``latency_p95_ms`` / ``latency_p99_ms`` are windowed percentile
    targets (``None`` disables one); ``error_budget`` is the failure
    fraction the window may hold before the availability objective
    breaches.  ``min_requests`` suppresses alerts on windows too small to
    be statistically meaningful; ``check_interval_s`` throttles objective
    evaluation (every record still lands in the window — only the alert
    scan is rate-limited).
    """

    __slots__ = ("name", "window_s", "num_buckets", "latency_p95_ms",
                 "latency_p99_ms", "error_budget", "min_requests",
                 "check_interval_s")

    def __init__(self, name: str = "serve", window_s: float = 60.0,
                 num_buckets: int = 12,
                 latency_p95_ms: float | None = None,
                 latency_p99_ms: float | None = None,
                 error_budget: float = 0.01,
                 min_requests: int = 10,
                 check_interval_s: float = 1.0):
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        if not 0.0 <= error_budget <= 1.0:
            raise ValueError(
                f"error_budget must be in [0, 1], got {error_budget}")
        self.name = name
        self.window_s = float(window_s)
        self.num_buckets = num_buckets
        self.latency_p95_ms = latency_p95_ms
        self.latency_p99_ms = latency_p99_ms
        self.error_budget = error_budget
        self.min_requests = min_requests
        self.check_interval_s = check_interval_s


class SloTracker:
    """Windowed request-outcome accounting with threshold-crossing alerts.

    ``record("ok", latency_ms=...)`` / ``record("shed_deadline")`` feed
    the window; :meth:`report` reads it back (windowed percentiles,
    error rate, budget usage, objective verdicts); breaches emit
    ``slo.alert`` events through :mod:`repro.obs` the moment an objective
    crosses its threshold, and ``slo.clear`` when it recovers.
    """

    def __init__(self, config: SloConfig | None = None, clock=time.monotonic):
        self.config = config or SloConfig()
        self.clock = clock
        cfg = self.config
        self.latency = RollingWindow(cfg.window_s, cfg.num_buckets)
        self.outcomes = RollingCounter(cfg.window_s, cfg.num_buckets)
        #: Lifetime totals (never pruned): {"ok": n, "<failure kind>": n}.
        self.totals: dict[str, int] = {}
        #: Objective name -> alert payload, for currently breached ones.
        self.active_alerts: dict[str, dict] = {}
        #: Count of breach transitions over the tracker's lifetime.
        self.alerts_fired = 0
        self._last_check = -float("inf")

    # ------------------------------------------------------------------ #
    def record(self, outcome: str, latency_ms: float | None = None,
               now: float | None = None, check: bool = True) -> None:
        """Record one request outcome (and optionally its latency)."""
        if outcome != "ok" and outcome not in FAILURE_KINDS:
            raise ValueError(f"unknown outcome {outcome!r}; expected 'ok' "
                             f"or one of {FAILURE_KINDS}")
        if now is None:
            now = self.clock()
        self.outcomes.inc(outcome, now)
        self.totals[outcome] = self.totals.get(outcome, 0) + 1
        if latency_ms is not None:
            self.latency.observe(latency_ms, now)
        if check:
            self.maybe_check(now)

    def observe_latency(self, latency_ms: float,
                        now: float | None = None) -> None:
        """Feed the latency window without an outcome (e.g. the dynamic
        loop's per-epoch repair latency, whose outcomes are per task)."""
        self.latency.observe(latency_ms, self.clock() if now is None else now)

    # ------------------------------------------------------------------ #
    def _objectives(self, now: float) -> dict[str, dict]:
        cfg = self.config
        counts = self.outcomes.totals(now)
        requests = sum(counts.values())
        failures = sum(counts.get(kind, 0) for kind in FAILURE_KINDS)
        error_rate = failures / requests if requests else 0.0
        objectives: dict[str, dict] = {}
        if cfg.error_budget < 1.0:
            objectives["error_budget"] = {
                "target": cfg.error_budget, "value": error_rate,
                "ok": (error_rate <= cfg.error_budget
                       or requests < cfg.min_requests)}
        for attr, q in (("latency_p95_ms", 0.95), ("latency_p99_ms", 0.99)):
            target = getattr(cfg, attr)
            if target is None:
                continue
            value = self.latency.percentile(q, now)
            ok = (value is None or value <= target
                  or self.latency.count(now) < cfg.min_requests)
            objectives[attr] = {"target": target, "value": value, "ok": ok}
        return objectives

    def maybe_check(self, now: float) -> None:
        if now - self._last_check >= self.config.check_interval_s:
            self.check(now)

    def check(self, now: float | None = None) -> dict[str, dict]:
        """Evaluate every objective; emit alert/clear transition events."""
        if now is None:
            now = self.clock()
        self._last_check = now
        objectives = self._objectives(now)
        for name, verdict in objectives.items():
            breached = not verdict["ok"]
            was_breached = name in self.active_alerts
            if breached and not was_breached:
                payload = {"slo": self.config.name, "objective": name,
                           "value": verdict["value"],
                           "target": verdict["target"], "at": now}
                self.active_alerts[name] = payload
                self.alerts_fired += 1
                _trace_event("slo.alert", **payload)
            elif not breached and was_breached:
                del self.active_alerts[name]
                _trace_event("slo.clear", slo=self.config.name,
                             objective=name, value=verdict["value"],
                             target=verdict["target"], at=now)
        return objectives

    # ------------------------------------------------------------------ #
    def report(self, now: float | None = None) -> dict:
        """The windowed SLO summary (also the dashboard's SLO panel)."""
        if now is None:
            now = self.clock()
        counts = self.outcomes.totals(now)
        requests = sum(counts.values())
        failures = {kind: counts.get(kind, 0) for kind in FAILURE_KINDS
                    if counts.get(kind, 0)}
        failed = sum(failures.values())
        error_rate = failed / requests if requests else 0.0
        budget = self.config.error_budget
        latency = {"count": self.latency.count(now)}
        for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            value = self.latency.percentile(q, now)
            if value is not None:
                latency[label] = value
        return {
            "name": self.config.name,
            "window_s": self.config.window_s,
            "requests": requests,
            "ok": counts.get("ok", 0),
            "failures": failures,
            "error_rate": error_rate,
            "error_budget": budget,
            "budget_used": (error_rate / budget) if budget > 0 else
                           (0.0 if error_rate == 0 else float("inf")),
            "latency_ms": latency,
            "objectives": self._objectives(now),
            "alerts_active": sorted(self.active_alerts),
            "alerts_fired": self.alerts_fired,
            "totals": dict(self.totals),
        }

    # -- fork-pool currency -------------------------------------------- #
    def snapshot(self) -> dict:
        """Picklable full window state (the child-side baseline)."""
        return {"latency": self.latency.state(),
                "outcomes": self.outcomes.state(),
                "totals": dict(self.totals)}

    def diff(self, baseline: dict) -> dict:
        """Window contents accumulated since ``baseline``."""
        totals = {}
        for name, value in self.totals.items():
            delta = value - baseline["totals"].get(name, 0)
            if delta:
                totals[name] = delta
        return {"latency": self.latency.delta_since(baseline["latency"]),
                "outcomes": self.outcomes.delta_since(baseline["outcomes"]),
                "totals": totals}

    def merge(self, delta: dict) -> None:
        """Parent-side merge of one child item's window delta."""
        self.latency.merge_state(delta["latency"])
        self.outcomes.merge_state(delta["outcomes"])
        for name, value in delta["totals"].items():
            self.totals[name] = self.totals.get(name, 0) + value


# --------------------------------------------------------------------- #
# Process-current tracker (fork-pool propagation hook)
# --------------------------------------------------------------------- #
_CURRENT: SloTracker | None = None


def current_slo_tracker() -> SloTracker | None:
    """The installed tracker, if any (``obs.capture_child`` reads this)."""
    return _CURRENT


class install:
    """``with slo.install(tracker): ...`` — register the process-current
    tracker so fork-pool children's window deltas merge back into it."""

    def __init__(self, tracker: SloTracker):
        self.tracker = tracker
        self._previous: SloTracker | None = None

    def __enter__(self) -> SloTracker:
        global _CURRENT
        self._previous = _CURRENT
        _CURRENT = self.tracker
        return self.tracker

    def __exit__(self, exc_type, exc, tb) -> None:
        global _CURRENT
        _CURRENT = self._previous
