"""Hierarchical timer spans and the JSONL event sink.

One module-level *current tracer* serves the whole process.  By default it
is :data:`NULL_TRACER`, whose every operation is a no-op — instrumentation
points (``obs.span``, ``obs.count``, ``obs.event``) cost one attribute
lookup and one empty call, so the hot path pays nothing measurable when
tracing is off (the ``BENCH_PR3`` artefact pins this below 2% of a solver
smoke run).  :func:`tracing` installs a live :class:`Tracer` for the
duration of a ``with`` block; ``python -m repro.experiments ... --trace
out.jsonl`` does the same for a whole CLI run.

Trace-file schema (one JSON object per line, ``sort_keys`` for stable
field order):

* ``{"seq", "type": "span", "name", "path", "dur", ...attrs}`` — emitted
  when a span closes; ``path`` is the ``/``-joined ancestry, ``dur`` in
  seconds.  Every close also feeds ``span.<path>.time`` / ``.count``
  timing aggregates in the tracer's :class:`MetricsRegistry`.
* ``{"seq", "type": "event", "name", ...fields}`` — point events (e.g.
  one per training iteration).
* ``{"seq", "type": "metrics", "counters", "gauges", "timings"}`` — the
  final registry summary, written when the tracing context exits.

``seq`` is a parent-assigned logical sequence number: events produced
inside fork-pool workers are buffered child-side, shipped back with each
item result, and re-emitted by the parent in item order — so the trace
file's ordering is deterministic no matter how the pool schedules work.
Counter values are schedule-invariant by construction (see
:mod:`repro.obs.metrics`); wall-clock fields (``dur``, timings) are not.
"""

from __future__ import annotations

import json
import time

from .metrics import METRICS_SCHEMA_VERSION, MetricsRegistry

__all__ = ["Tracer", "NullTracer", "NULL_TRACER", "JsonlSink", "ListSink",
           "NullSink", "tracing", "get_tracer", "set_tracer", "span",
           "count", "gauge", "add_time", "observe", "event", "record_perf",
           "current_metrics", "capture_child", "absorb"]


# --------------------------------------------------------------------- #
# Sinks
# --------------------------------------------------------------------- #
class NullSink:
    """Swallows every record."""

    def emit(self, record: dict) -> None:
        pass

    def close(self) -> None:
        pass


class ListSink:
    """Collects records in memory (tests, child-side buffering)."""

    def __init__(self):
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


class JsonlSink:
    """Appends one JSON object per record to a file.

    The first line is a ``{"type": "trace_header"}`` record stamping the
    schema version and a monotonic-clock origin — downstream consumers
    reject files written by an incompatible schema instead of silently
    misreading them, and can express later wall-clock fields relative to
    a clock that never jumps backwards.
    """

    def __init__(self, path):
        self.path = path
        self._file = open(path, "w")
        self.emit({"type": "trace_header",
                   "schema_version": METRICS_SCHEMA_VERSION,
                   "ts_monotonic": time.monotonic(),
                   "created_unix": time.time()})

    def emit(self, record: dict) -> None:
        self._file.write(json.dumps(record, sort_keys=True) + "\n")

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()


# --------------------------------------------------------------------- #
# Spans
# --------------------------------------------------------------------- #
class _Span:
    """Context manager for one timed span (created by :meth:`Tracer.span`)."""

    __slots__ = ("_tracer", "name", "attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        self._tracer._stack.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        tracer = self._tracer
        path = "/".join(tracer._stack)
        tracer._stack.pop()
        tracer.metrics.add_time(f"span.{path}.time", elapsed)
        tracer.metrics.add_time(f"span.{path}.count", 1)
        record = {"type": "span", "name": self.name, "path": path,
                  "dur": round(elapsed, 9)}
        if self.attrs:
            record.update(self.attrs)
        tracer._emit(record)


class _NullSpan:
    """Shared reusable no-op span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


# --------------------------------------------------------------------- #
# Tracers
# --------------------------------------------------------------------- #
class Tracer:
    """Live tracer: spans + counters into a registry, records into a sink."""

    enabled = True

    def __init__(self, sink=None, metrics: MetricsRegistry | None = None):
        self.sink = sink if sink is not None else NullSink()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._stack: list[str] = []
        self._seq = 0

    # -- record plumbing ------------------------------------------------ #
    def _emit(self, record: dict) -> None:
        record["seq"] = self._seq
        self._seq += 1
        self.sink.emit(record)

    # -- instrumentation points ----------------------------------------- #
    def span(self, name: str, **attrs) -> _Span:
        return _Span(self, name, attrs)

    def event(self, name: str, **fields) -> None:
        record = {"type": "event", "name": name}
        record.update(fields)
        self._emit(record)

    def count(self, name: str, value: float = 1) -> None:
        self.metrics.inc(name, value)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name, value)

    def add_time(self, name: str, seconds: float) -> None:
        self.metrics.add_time(name, seconds)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def record_perf(self, perf, prefix: str = "perf.") -> None:
        self.metrics.record_perf(perf, prefix=prefix)

    # -- lifecycle ------------------------------------------------------ #
    def emit_metrics(self) -> None:
        """Write the registry summary as a ``metrics`` record."""
        record = {"type": "metrics"}
        record.update(self.metrics.snapshot())
        self._emit(record)

    def close(self) -> None:
        self.sink.close()


class NullTracer(Tracer):
    """The disabled tracer: every operation is a no-op."""

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **fields) -> None:
        pass

    def count(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def add_time(self, name: str, seconds: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def record_perf(self, perf, prefix: str = "perf.") -> None:
        pass

    def emit_metrics(self) -> None:
        pass


NULL_TRACER = NullTracer()

_TRACER: Tracer = NULL_TRACER


# --------------------------------------------------------------------- #
# Module-level current-tracer API
# --------------------------------------------------------------------- #
def get_tracer() -> Tracer:
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as current; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def current_metrics() -> MetricsRegistry:
    """The current tracer's registry (empty and inert when disabled)."""
    return _TRACER.metrics


class tracing:
    """``with tracing("out.jsonl") as tracer:`` — scoped live tracing.

    ``path=None`` enables metrics/span accounting without a trace file
    (useful in tests).  On exit the final ``metrics`` record is written,
    the sink is closed, and the previous tracer is restored.
    """

    def __init__(self, path=None, sink=None):
        if sink is None:
            sink = JsonlSink(path) if path is not None else NullSink()
        self.tracer = Tracer(sink)
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            self.tracer.emit_metrics()
            self.tracer.close()
        finally:
            set_tracer(self._previous)


def span(name: str, **attrs):
    return _TRACER.span(name, **attrs)


def event(name: str, **fields) -> None:
    _TRACER.event(name, **fields)


def count(name: str, value: float = 1) -> None:
    _TRACER.count(name, value)


def gauge(name: str, value: float) -> None:
    _TRACER.gauge(name, value)


def add_time(name: str, seconds: float) -> None:
    _TRACER.add_time(name, seconds)


def observe(name: str, value: float) -> None:
    _TRACER.observe(name, value)


def record_perf(perf, prefix: str = "perf.") -> None:
    _TRACER.record_perf(perf, prefix=prefix)


# --------------------------------------------------------------------- #
# Fork-pool propagation
# --------------------------------------------------------------------- #
def _profiler_hook():
    """The installed tensor hook, if it is a capturable profiler.

    Lazy import: ``trace`` must stay importable without pulling the nn
    stack (obs.metrics <- obs.trace is the bottom of the obs layer).
    Duck-typed on ``snapshot``/``diff``/``merge`` rather than the
    concrete :class:`~repro.obs.profile.OpProfiler` for the same reason.
    """
    from ..nn.tensor import get_tensor_hook

    hook = get_tensor_hook()
    if hook.enabled and hasattr(hook, "snapshot"):
        return hook
    return None


def _slo_hook():
    """The installed SLO tracker, if any (lazy import, same reason)."""
    from .slo import current_slo_tracker

    return current_slo_tracker()


class capture_child:
    """Worker-side telemetry capture around one fork-pool item.

    Inside a ``fork`` child the tracer (inherited copy-on-write) would
    otherwise accumulate counters and stream events that die with the
    process.  ``with capture_child() as cap:`` redirects events to an
    in-memory buffer and marks a metrics baseline; ``cap.snapshot`` is a
    picklable payload — the metrics *delta* plus the buffered records —
    to ship back with the item result.  When an op profiler is installed
    (:func:`repro.obs.profile.profiling`) its delta rides along under a
    ``"profile"`` key, tracer or no tracer.  ``None`` when both are off,
    so the disabled path adds no measurable cost or IPC volume.
    """

    __slots__ = ("snapshot", "_baseline", "_buffer", "_saved_sink",
                 "_profiler", "_profile_baseline", "_slo", "_slo_baseline")

    def __enter__(self) -> "capture_child":
        self.snapshot = None
        self._profiler = _profiler_hook()
        if self._profiler is not None:
            self._profile_baseline = self._profiler.snapshot()
        self._slo = _slo_hook()
        if self._slo is not None:
            self._slo_baseline = self._slo.snapshot()
        if not _TRACER.enabled:
            self._buffer = None
            return self
        self._baseline = _TRACER.metrics.snapshot()
        self._buffer = ListSink()
        self._saved_sink = _TRACER.sink
        _TRACER.sink = self._buffer
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        payload = {}
        if self._profiler is not None:
            payload["profile"] = self._profiler.diff(self._profile_baseline)
        if self._slo is not None:
            payload["slo"] = self._slo.diff(self._slo_baseline)
        if self._buffer is not None:
            _TRACER.sink = self._saved_sink
            payload["metrics"] = _TRACER.metrics.diff(self._baseline)
            payload["events"] = self._buffer.records
        if payload:
            self.snapshot = payload


def absorb(snapshot: dict | None) -> None:
    """Parent-side merge of one worker item's telemetry snapshot.

    Counters/timings sum and gauges max into the current registry; the
    worker's buffered records are re-emitted through the parent's sink
    with freshly assigned ``seq`` numbers; a ``"profile"`` delta merges
    into the installed op profiler (counts/seconds/FLOPs sum, the
    peak-bytes watermark maxes).  Callers must absorb snapshots in item
    order — that is what makes the merged registry and the trace file
    deterministic under any pool schedule.
    """
    if snapshot is None:
        return
    profile_delta = snapshot.get("profile")
    if profile_delta is not None:
        profiler = _profiler_hook()
        if profiler is not None:
            profiler.merge(profile_delta)
    slo_delta = snapshot.get("slo")
    if slo_delta is not None:
        tracker = _slo_hook()
        if tracker is not None:
            tracker.merge(slo_delta)
    if not _TRACER.enabled or "metrics" not in snapshot:
        return
    _TRACER.metrics.merge_snapshot(snapshot["metrics"])
    for record in snapshot["events"]:
        _TRACER._emit(record)
