"""Deterministic flight recorder: journal admitted requests, replay them.

When a served answer looks wrong the first question is "what exactly did
the service decode?".  The :class:`FlightRecorder` answers it with an
append-only JSONL **journal** of every admitted request — instance
reference, decode mode, seed, sample count, arrival order — plus each
request's outcome and a **solution digest** (a stable hash of routes,
incentives and objective).  Because every decode mode the service offers
is deterministic given its inputs (greedy decoding by construction,
sampled decoding via its per-request seed), the journal is a complete
reproduction recipe: :func:`replay_journal` re-executes the workload
request by request and diffs fresh digests against the recorded ones —
``python -m repro.serve replay journal.jsonl`` is the CLI wrapper.

Journal schema (one JSON object per line, ``sort_keys``):

* ``{"type": "header", "schema_version", "workload", ...}`` — written at
  open; ``workload`` is the caller-supplied spec that rebuilds the
  instance pool and solver (the serve CLI records its generator args).
* ``{"type": "request", "req", "instance", "greedy", "seed",
  "num_samples", "timeout"}`` — one per admitted request, in arrival
  order; ``instance`` is the pool index from
  :meth:`FlightRecorder.register_instances` (−1 for unregistered
  instances, which replay skips).
* ``{"type": "outcome", "req", "outcome", "digest", "latency_ms"}`` —
  terminal state of one request (``digest`` only for ``ok``).
* ``{"type": "end", "requests", "outcomes"}`` — the footer.  Its
  presence is the completeness mark: a journal without it was truncated
  (the recording process died before :meth:`close`).

Every record is flushed as it is written, so even a crash journal is
valid JSONL up to its last complete line.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field

__all__ = ["FlightRecorder", "JournalError", "Journal", "ReplayReport",
           "solution_digest", "read_journal", "replay_journal",
           "JOURNAL_SCHEMA_VERSION"]

JOURNAL_SCHEMA_VERSION = 1


class JournalError(ValueError):
    """A journal file is malformed, truncated, or unreplayable."""


def solution_digest(solution) -> str:
    """Stable content hash of one solution (routes, incentives, objective).

    Floats are hashed via ``float.hex`` so the digest distinguishes
    answers that differ in the last ulp — "bit-identical" is the claim
    replay checks, not "approximately equal".
    """
    payload = {
        "routes": sorted(
            (worker_id, [task.task_id for task in route.tasks])
            for worker_id, route in solution.routes.items()),
        "incentives": sorted(
            (worker_id, float(value).hex())
            for worker_id, value in solution.incentives.items()),
        "objective": float(solution.objective).hex(),
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class FlightRecorder:
    """Append-only JSONL journal of admitted requests and their outcomes."""

    def __init__(self, path, workload: dict | None = None):
        self.path = path
        self._file = open(path, "w", encoding="utf-8")
        self._index: dict[int, int] = {}
        self.requests = 0
        self.outcomes = 0
        self._emit({"type": "header",
                    "schema_version": JOURNAL_SCHEMA_VERSION,
                    "created_unix": time.time(),
                    "workload": workload or {}})

    # ------------------------------------------------------------------ #
    def _emit(self, record: dict) -> None:
        if self._file.closed:
            raise JournalError("flight recorder already closed")
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()

    def register_instances(self, instances) -> None:
        """Declare the instance pool; requests journal the pool index."""
        for i, instance in enumerate(instances):
            self._index[id(instance)] = i

    def instance_ref(self, instance) -> int:
        """Pool index of ``instance`` (−1 when unregistered)."""
        return self._index.get(id(instance), -1)

    # ------------------------------------------------------------------ #
    def record_request(self, request_id: int, instance, greedy: bool,
                       seed: int | None, num_samples: int,
                       timeout: float | None = None) -> None:
        self.requests += 1
        self._emit({"type": "request", "req": request_id,
                    "instance": self.instance_ref(instance),
                    "greedy": bool(greedy), "seed": seed,
                    "num_samples": num_samples, "timeout": timeout})

    def record_outcome(self, request_id: int, outcome: str,
                       digest: str | None = None,
                       latency_ms: float | None = None) -> None:
        self.outcomes += 1
        self._emit({"type": "outcome", "req": request_id,
                    "outcome": outcome, "digest": digest,
                    "latency_ms": latency_ms})

    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._file.closed

    def close(self) -> None:
        """Write the footer and close; idempotent."""
        if self._file.closed:
            return
        self._emit({"type": "end", "requests": self.requests,
                    "outcomes": self.outcomes})
        self._file.close()


# --------------------------------------------------------------------- #
# Reading + replay
# --------------------------------------------------------------------- #
@dataclass
class Journal:
    """A parsed journal: header, requests in arrival order, outcomes."""

    header: dict
    requests: list[dict]
    outcomes: dict[int, dict]
    complete: bool

    @property
    def workload(self) -> dict:
        return self.header.get("workload", {})


def read_journal(path) -> Journal:
    """Parse a journal file; raises :class:`JournalError` when malformed.

    A missing footer leaves ``complete=False`` (the journal is usable for
    forensics but the recording run did not shut down cleanly).  A final
    line that is not valid JSON — a write cut off mid-record — raises:
    the flush-per-record discipline makes that state unreachable short of
    filesystem corruption, so it is worth failing loudly over.
    """
    header = None
    requests: list[dict] = []
    outcomes: dict[int, dict] = {}
    complete = False
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise JournalError(
                    f"{path}:{lineno}: truncated or corrupt record "
                    f"({exc.msg})") from exc
            kind = record.get("type")
            if kind == "header":
                header = record
            elif kind == "request":
                requests.append(record)
            elif kind == "outcome":
                outcomes[record["req"]] = record
            elif kind == "end":
                complete = True
    if header is None:
        raise JournalError(f"{path}: no header record")
    if header.get("schema_version") != JOURNAL_SCHEMA_VERSION:
        raise JournalError(
            f"{path}: journal schema {header.get('schema_version')} != "
            f"supported {JOURNAL_SCHEMA_VERSION}")
    return Journal(header=header, requests=requests, outcomes=outcomes,
                   complete=complete)


@dataclass
class ReplayReport:
    """Outcome of re-executing a journal against fresh solver state."""

    total: int
    replayed: int = 0
    matched: int = 0
    mismatches: list[dict] = field(default_factory=list)
    skipped: int = 0

    @property
    def ok(self) -> bool:
        return not self.mismatches and self.replayed == self.matched

    def render(self) -> str:
        lines = [f"replay: {self.matched}/{self.replayed} digests "
                 f"bit-identical ({self.skipped} skipped) "
                 f"[{'OK' if self.ok else 'MISMATCH'}]"]
        for miss in self.mismatches:
            lines.append(f"  req {miss['req']}: recorded {miss['want']:.16}… "
                         f"got {miss['got']:.16}…")
        return "\n".join(lines)


def replay_journal(journal: Journal, engine, instances) -> ReplayReport:
    """Re-execute every journaled request; diff digests.

    ``engine`` is a fresh :class:`~repro.serve.engine.WarmEngine` built
    from the journal's workload spec, ``instances`` the rebuilt pool the
    journal's ``instance`` indices point into.  Requests replay
    sequentially in arrival order — batching never changes an answer
    (the serving layer's core invariant), so the sequential replay is
    digest-identical to whatever coalescing the live run used.  Requests
    without an ``ok`` outcome (shed, failed, unregistered instance) are
    skipped: the journal records that they produced no solution.
    """
    import numpy as np

    report = ReplayReport(total=len(journal.requests))
    for request in journal.requests:
        outcome = journal.outcomes.get(request["req"])
        idx = request["instance"]
        if (outcome is None or outcome.get("outcome") != "ok"
                or outcome.get("digest") is None
                or not 0 <= idx < len(instances)):
            report.skipped += 1
            continue
        batch = engine.open_batch(max_size=1)
        seed = request.get("seed")
        rng = np.random.default_rng(seed) if seed is not None else None
        ticket = batch.admit(instances[idx], greedy=request["greedy"],
                             rng=rng, num_samples=request["num_samples"])
        solution = engine.execute(batch)[ticket]
        digest = solution_digest(solution)
        report.replayed += 1
        if digest == outcome["digest"]:
            report.matched += 1
        else:
            report.mismatches.append({"req": request["req"],
                                      "want": outcome["digest"],
                                      "got": digest})
    return report
