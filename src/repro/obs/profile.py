"""Op-level profiler for the ``repro.nn`` autograd engine.

Where :mod:`repro.obs.trace` sees the solver at *span* granularity
(solve / select / init), this module instruments the tensor layer itself:
every differentiable op in :mod:`repro.nn.ops` is wrapped (see
``instrument_op`` in ``nn/tensor.py``), the backward walk in
``Tensor.backward`` times each closure it fires, and tensor construction
reports live-byte allocation.  All of it funnels through the
:class:`~repro.nn.tensor.TensorHook` protocol — when no profiler is
installed the shared null hook makes each instrumentation point one
global read plus one attribute check, with zero allocation (the
``BENCH_PR4`` artefact pins this below 2% of a solver smoke run).

An installed :class:`OpProfiler` records, per named op:

* forward / backward call counts and wall seconds (*inclusive* per op,
  *self* time per stack path — composite ops like ``masked_mean`` nest
  their constituent ``where``/``sum``/``div`` frames);
* estimated FLOPs and bytes moved, from the cost models in
  :mod:`repro.nn.flops` (matmul exact up to the 2·M·N·K convention,
  elementwise/softmax per-element, backward charged at 2x forward);
* a live-tensor-bytes watermark (``peak_live_bytes``) tracked across
  graph retention and release via weakref finalizers.

Three surfaces:

* :func:`profiling` — ``with profiling("out.jsonl") as prof:`` installs
  the hook for a block, optionally writes the JSONL profile, and
  publishes ``profile.*`` aggregates into the current tracer's
  :class:`~repro.obs.metrics.MetricsRegistry` (timings + a peak-bytes
  gauge — wall-clock data, outside the bit-identity contract).
* :meth:`OpProfiler.collapsed` — collapsed-stack (flamegraph.pl) export:
  one ``path;to;op <self-microseconds>`` line per observed stack.
* ``python -m repro.obs.profile`` — profiles a smoke solve and/or
  training workload and prints the per-op summary table.

Fork-pool propagation mirrors PR 3's telemetry: ``obs.capture_child``
snapshots the profiler around each worker item, the payload travels back
with the result, and the parent merges deltas in item order (counts,
seconds, FLOPs and bytes sum; ``peak_live_bytes`` max-merges — each
child's watermark is its own address space).

Named regions (``profile.scope("epoch")``) wrap non-tensor work — env
stepping, planner calls — so a profiled run can attribute wall time it
would otherwise lose; the ``BENCH_PR4`` regression asserts the residual
unaccounted bucket of a paper-scale TASNet epoch stays under 5%.

Profile-file schema (one JSON object per line, ``sort_keys``):

* ``{"type": "op", "name", "kind", "fwd_calls", "fwd_seconds",
  "bwd_calls", "bwd_seconds", "flops", "bwd_flops", "nbytes",
  "bwd_bytes"}`` — one per recorded op / scope / custom region.
* ``{"type": "stack", "path", "count", "self_seconds"}`` — one per
  observed call stack (the collapsed-stack rows).
* ``{"type": "memory", "peak_live_bytes", "live_bytes"}``.
* ``{"type": "summary", "total_seconds", "total_flops", "total_bytes"}``.
"""

from __future__ import annotations

import json
import time

from ..nn import flops as flops_mod
from ..nn.tensor import TensorHook, get_tensor_hook, set_tensor_hook
from .trace import get_tracer

__all__ = ["OpStat", "OpProfiler", "profiling", "scope",
           "render_profile", "render_stacks"]


class OpStat:
    """Accumulated per-op totals (one per op name in ``OpProfiler.ops``)."""

    __slots__ = ("kind", "fwd_calls", "fwd_seconds", "bwd_calls",
                 "bwd_seconds", "flops", "bwd_flops", "nbytes", "bwd_bytes")

    def __init__(self, kind: str = "op"):
        self.kind = kind          # "op" | "scope" | "custom"
        self.fwd_calls = 0
        self.fwd_seconds = 0.0
        self.bwd_calls = 0
        self.bwd_seconds = 0.0
        self.flops = 0
        self.bwd_flops = 0
        self.nbytes = 0
        self.bwd_bytes = 0

    # -- derived ------------------------------------------------------- #
    @property
    def calls(self) -> int:
        return self.fwd_calls + self.bwd_calls

    @property
    def seconds(self) -> float:
        return self.fwd_seconds + self.bwd_seconds

    @property
    def total_flops(self) -> int:
        return self.flops + self.bwd_flops

    @property
    def total_bytes(self) -> int:
        return self.nbytes + self.bwd_bytes

    def to_dict(self) -> dict:
        return {"kind": self.kind,
                "fwd_calls": self.fwd_calls, "fwd_seconds": self.fwd_seconds,
                "bwd_calls": self.bwd_calls, "bwd_seconds": self.bwd_seconds,
                "flops": self.flops, "bwd_flops": self.bwd_flops,
                "nbytes": self.nbytes, "bwd_bytes": self.bwd_bytes}

    def _merge_row(self, row: list) -> None:
        (self.fwd_calls, self.fwd_seconds, self.bwd_calls, self.bwd_seconds,
         self.flops, self.bwd_flops, self.nbytes, self.bwd_bytes) = (
            self.fwd_calls + row[1], self.fwd_seconds + row[2],
            self.bwd_calls + row[3], self.bwd_seconds + row[4],
            self.flops + row[5], self.bwd_flops + row[6],
            self.nbytes + row[7], self.bwd_bytes + row[8])

    def _row(self) -> list:
        """Picklable snapshot row (kind first, then the 8 accumulators)."""
        return [self.kind, self.fwd_calls, self.fwd_seconds, self.bwd_calls,
                self.bwd_seconds, self.flops, self.bwd_flops, self.nbytes,
                self.bwd_bytes]


class OpProfiler(TensorHook):
    """A live :class:`TensorHook` accumulating op stats and stack samples."""

    enabled = True
    __slots__ = ("ops", "stacks", "_frames", "live_bytes", "peak_live_bytes")

    def __init__(self):
        self.ops: dict[str, OpStat] = {}
        #: ``";"``-joined stack path -> [sample count, self seconds].
        self.stacks: dict[str, list] = {}
        # Open frames: [name, child seconds, full path].
        self._frames: list[list] = []
        self.live_bytes = 0
        self.peak_live_bytes = 0

    # -- internals ----------------------------------------------------- #
    def _stat(self, name: str, kind: str) -> OpStat:
        stat = self.ops.get(name)
        if stat is None:
            stat = self.ops[name] = OpStat(kind)
        return stat

    def _close_frame(self, name: str, seconds: float) -> str:
        """Pop ``name``'s frame, charge its self time, return its path."""
        frames = self._frames
        if frames and frames[-1][0] == name:
            _, child_seconds, path = frames.pop()
        else:  # unmatched (hook installed mid-op); degrade gracefully
            child_seconds, path = 0.0, name
        if frames:
            frames[-1][1] += seconds
        self._add_sample(path, seconds - child_seconds)
        return path

    def _add_sample(self, path: str, self_seconds: float) -> None:
        entry = self.stacks.get(path)
        if entry is None:
            entry = self.stacks[path] = [0, 0.0]
        entry[0] += 1
        if self_seconds > 0.0:  # timer jitter can push self time negative
            entry[1] += self_seconds

    def _leaf_sample(self, name: str, seconds: float) -> None:
        """Record a closed leaf (backward closure / custom region)."""
        frames = self._frames
        if frames:
            frames[-1][1] += seconds
            path = frames[-1][2] + ";" + name
        else:
            path = name
        self._add_sample(path, seconds)

    # -- TensorHook protocol ------------------------------------------- #
    def begin(self, name: str) -> None:
        frames = self._frames
        path = frames[-1][2] + ";" + name if frames else name
        frames.append([name, 0.0, path])

    def forward(self, name: str, seconds: float, args, out) -> None:
        self._close_frame(name, seconds)
        stat = self._stat(name, "op")
        stat.fwd_calls += 1
        stat.fwd_seconds += seconds
        op_flops, op_bytes = flops_mod.estimate(name, args, out)
        stat.flops += op_flops
        stat.nbytes += op_bytes

    def end(self, name: str, seconds: float) -> None:
        self._close_frame(name, seconds)
        stat = self._stat(name, "scope")
        stat.fwd_calls += 1
        stat.fwd_seconds += seconds

    def backward(self, name: str, seconds: float, node) -> None:
        self._leaf_sample(name, seconds)
        stat = self._stat(name, "op")
        stat.bwd_calls += 1
        stat.bwd_seconds += seconds
        op_flops, op_bytes = flops_mod.estimate_backward(name, node)
        stat.bwd_flops += op_flops
        stat.bwd_bytes += op_bytes

    def custom(self, name: str, seconds: float, flops: int = 0,
               nbytes: int = 0) -> None:
        self._leaf_sample(name, seconds)
        stat = self._stat(name, "custom")
        stat.fwd_calls += 1
        stat.fwd_seconds += seconds
        stat.flops += flops
        stat.nbytes += nbytes

    def alloc(self, nbytes: int) -> None:
        self.live_bytes += nbytes
        if self.live_bytes > self.peak_live_bytes:
            self.peak_live_bytes = self.live_bytes

    def release(self, nbytes: int) -> None:
        self.live_bytes -= nbytes

    # -- aggregate views ----------------------------------------------- #
    def total_seconds(self) -> float:
        return sum(stat.seconds for stat in self.ops.values()
                   if stat.kind != "scope")

    def total_flops(self) -> int:
        return sum(stat.total_flops for stat in self.ops.values())

    def total_bytes(self) -> int:
        return sum(stat.total_bytes for stat in self.ops.values())

    def self_seconds(self, path: str) -> float:
        """Self time accumulated at exactly stack path ``path``."""
        entry = self.stacks.get(path)
        return entry[1] if entry else 0.0

    def collapsed(self) -> str:
        """Collapsed-stack export: ``a;b;c <self-microseconds>`` lines.

        Feed straight to ``flamegraph.pl`` (or any FlameGraph-format
        viewer); sample values are integer microseconds of self time.
        """
        lines = []
        for path in sorted(self.stacks):
            micros = int(round(self.stacks[path][1] * 1e6))
            if micros > 0:
                lines.append(f"{path} {micros}")
        return "\n".join(lines)

    # -- fork-pool propagation ----------------------------------------- #
    def snapshot(self) -> dict:
        """Picklable copy of the accumulated state."""
        return {"ops": {name: stat._row()
                        for name, stat in self.ops.items()},
                "stacks": {path: list(entry)
                           for path, entry in self.stacks.items()},
                "peak_live_bytes": self.peak_live_bytes}

    def diff(self, baseline: dict) -> dict:
        """Delta accumulated since ``baseline`` (a prior snapshot).

        Counts/seconds/FLOPs/bytes subtract; ``peak_live_bytes`` keeps
        the current watermark (max-merging reproduces this profiler).
        """
        base_ops = baseline["ops"]
        ops = {}
        for name, stat in self.ops.items():
            row = stat._row()
            base = base_ops.get(name)
            if base is not None:
                row = [row[0]] + [current - prior
                                  for current, prior in zip(row[1:], base[1:])]
            if any(row[1:]):
                ops[name] = row
        base_stacks = baseline["stacks"]
        stacks = {}
        for path, entry in self.stacks.items():
            base = base_stacks.get(path, (0, 0.0))
            count, seconds = entry[0] - base[0], entry[1] - base[1]
            if count or seconds:
                stacks[path] = [count, seconds]
        return {"ops": ops, "stacks": stacks,
                "peak_live_bytes": self.peak_live_bytes}

    def merge(self, payload: dict) -> None:
        """Merge a snapshot/delta: accumulators sum, the watermark maxes."""
        for name, row in payload.get("ops", {}).items():
            stat = self.ops.get(name)
            if stat is None:
                stat = self.ops[name] = OpStat(row[0])
            stat._merge_row(row)
        for path, (count, seconds) in payload.get("stacks", {}).items():
            entry = self.stacks.get(path)
            if entry is None:
                entry = self.stacks[path] = [0, 0.0]
            entry[0] += count
            entry[1] += seconds
        peak = payload.get("peak_live_bytes", 0)
        if peak > self.peak_live_bytes:
            self.peak_live_bytes = peak

    # -- metrics / file output ----------------------------------------- #
    def publish(self, metrics) -> None:
        """Fold aggregates into a :class:`MetricsRegistry`.

        Everything lands in ``timings`` (wall-clock territory, outside
        the schedule-invariance contract — batched decode changes op
        call counts and padded FLOP totals) except the peak-bytes
        watermark, which is a max-merged gauge.
        """
        for name, stat in self.ops.items():
            metrics.add_time(f"profile.{name}.time", stat.seconds)
            metrics.add_time(f"profile.{name}.calls", stat.calls)
            if stat.total_flops:
                metrics.add_time(f"profile.{name}.flops", stat.total_flops)
        if self.peak_live_bytes:
            metrics.gauge("profile.peak_live_bytes", self.peak_live_bytes)

    def records(self):
        """The profile-file records (see the module docstring schema)."""
        for name in sorted(self.ops):
            record = {"type": "op", "name": name}
            record.update(self.ops[name].to_dict())
            yield record
        for path in sorted(self.stacks):
            count, seconds = self.stacks[path]
            yield {"type": "stack", "path": path, "count": count,
                   "self_seconds": round(seconds, 9)}
        yield {"type": "memory", "peak_live_bytes": self.peak_live_bytes,
               "live_bytes": self.live_bytes}
        yield {"type": "summary", "total_seconds": round(self.total_seconds(), 9),
               "total_flops": self.total_flops(),
               "total_bytes": self.total_bytes()}

    def write(self, path) -> None:
        """Write the JSONL profile to ``path``."""
        with open(path, "w") as handle:
            for record in self.records():
                handle.write(json.dumps(record, sort_keys=True) + "\n")


# --------------------------------------------------------------------- #
# Named regions
# --------------------------------------------------------------------- #
class _Scope:
    """Times one named region through the active hook."""

    __slots__ = ("name", "_hook", "_start")

    def __init__(self, name: str, hook: TensorHook):
        self.name = name
        self._hook = hook

    def __enter__(self) -> "_Scope":
        self._hook.begin(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._hook.end(self.name, time.perf_counter() - self._start)


class _NullScope:
    """Shared reusable no-op scope."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SCOPE = _NullScope()


def scope(name: str):
    """``with profile.scope("epoch"): ...`` — a named profiler region.

    Nests in the op stack like any frame, so tensor ops executed inside
    attribute their inclusive time to it; the region's *self* time is
    whatever its body spent outside recorded ops (planner calls, env
    bookkeeping, numpy glue).  Returns a shared no-op when no profiler
    hook is installed — the disabled path allocates nothing.
    """
    hook = get_tensor_hook()
    if not hook.enabled:
        return _NULL_SCOPE
    return _Scope(name, hook)


# --------------------------------------------------------------------- #
# Scoped installation
# --------------------------------------------------------------------- #
class profiling:
    """``with profiling("out.jsonl") as prof:`` — scoped op profiling.

    Installs ``profiler`` (a fresh :class:`OpProfiler` by default) as the
    process-wide tensor hook for the block.  On exit the previous hook is
    restored, aggregates are published into the current tracer's metrics
    registry (when tracing is live), and — if ``path`` was given — the
    JSONL profile is written.  ``collapsed_path`` additionally writes the
    collapsed-stack file for flamegraph tooling.
    """

    def __init__(self, path=None, profiler: OpProfiler | None = None,
                 collapsed_path=None):
        self.profiler = profiler if profiler is not None else OpProfiler()
        self.path = path
        self.collapsed_path = collapsed_path
        self._previous: TensorHook | None = None

    def __enter__(self) -> OpProfiler:
        self._previous = set_tensor_hook(self.profiler)
        return self.profiler

    def __exit__(self, exc_type, exc, tb) -> None:
        set_tensor_hook(self._previous)
        tracer = get_tracer()
        if tracer.enabled:
            self.profiler.publish(tracer.metrics)
        if self.path is not None:
            self.profiler.write(self.path)
        if self.collapsed_path is not None:
            with open(self.collapsed_path, "w") as handle:
                collapsed = self.profiler.collapsed()
                if collapsed:
                    handle.write(collapsed + "\n")


# --------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------- #
def _format_count(value: float) -> str:
    """Human scale: 1234 -> '1.2k', 2.5e9 -> '2.5G'."""
    for threshold, suffix in ((1e12, "T"), (1e9, "G"), (1e6, "M"),
                              (1e3, "k")):
        if abs(value) >= threshold:
            return f"{value / threshold:.1f}{suffix}"
    return f"{value:g}"


def render_profile(profiler: OpProfiler, limit: int = 20) -> str:
    """Per-op summary table, ops sorted by total wall seconds."""
    rows = sorted(profiler.ops.items(),
                  key=lambda item: item[1].seconds, reverse=True)
    total = profiler.total_seconds()
    lines = ["Op profile (top by wall time)", "=" * 78,
             f"{'op':<24} {'kind':<6} {'calls':>9} {'fwd s':>9} "
             f"{'bwd s':>9} {'flops':>8} {'bytes':>8}"]
    for name, stat in rows[:limit]:
        lines.append(f"{name:<24} {stat.kind:<6} {stat.calls:>9} "
                     f"{stat.fwd_seconds:>9.4f} {stat.bwd_seconds:>9.4f} "
                     f"{_format_count(stat.total_flops):>8} "
                     f"{_format_count(stat.total_bytes):>8}")
    if len(rows) > limit:
        rest = sum(stat.seconds for _, stat in rows[limit:]
                   if stat.kind != "scope")
        lines.append(f"{'(other)':<24} {'':<6} {'':>9} {rest:>9.4f}")
    lines.append("-" * 78)
    lines.append(f"total op time {total:.4f}s   "
                 f"flops {_format_count(profiler.total_flops())}   "
                 f"bytes {_format_count(profiler.total_bytes())}   "
                 f"peak live {_format_count(profiler.peak_live_bytes)}B")
    return "\n".join(lines)


def render_stacks(profiler: OpProfiler, limit: int = 15) -> str:
    """Top stack paths by self time (the flamegraph's widest boxes)."""
    rows = sorted(profiler.stacks.items(),
                  key=lambda item: item[1][1], reverse=True)
    lines = ["Hot stacks (self time)", "=" * 78]
    for path, (count, seconds) in rows[:limit]:
        lines.append(f"{seconds:>9.4f}s {count:>8}x  {path}")
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
def _make_policy(args):
    import numpy as np

    from ..smore.policy import TASNetPolicy
    from ..smore.tasnet import TASNet, TASNetConfig

    config = TASNetConfig(d_model=args.d_model, num_heads=args.num_heads)
    net = TASNet(config, grid_nx=10, grid_ny=12,
                 rng=np.random.default_rng(args.seed))
    return TASNetPolicy(net)


def _solve_workload(args, profiler: OpProfiler) -> None:
    """Profile a batched TASNet solve on one generated instance."""
    import numpy as np

    from ..datasets import generate_instances
    from ..smore.solver import SMORESolver
    from ..tsptw import InsertionSolver

    instance = generate_instances(args.dataset, 1, seed=args.seed)[0]
    planner = InsertionSolver(use_kernels=not args.no_kernels)
    solver = SMORESolver(planner, _make_policy(args))
    with profiling(profiler=profiler):
        with scope("workload.solve"):
            solver.solve(instance, greedy=False,
                         rng=np.random.default_rng(args.seed),
                         num_samples=args.samples)


def _train_workload(args, profiler: OpProfiler) -> None:
    """Profile REINFORCE training iterations on generated instances."""
    from ..datasets import generate_instances
    from ..smore.train import TASNetTrainer, TrainingConfig
    from ..tsptw import InsertionSolver

    instances = generate_instances(args.dataset, 2, seed=args.seed)
    trainer = TASNetTrainer(
        _make_policy(args), InsertionSolver(),
        TrainingConfig(iterations=args.epochs, batch_size=1,
                       seed=args.seed))
    with profiling(profiler=profiler):
        with scope("workload.train"):
            trainer.train(instances)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.obs.profile",
        description="Profile a smoke solve/training run at op granularity.")
    parser.add_argument("workload", choices=["solve", "train"],
                        help="what to profile")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSONL profile to PATH")
    parser.add_argument("--collapsed", default=None, metavar="PATH",
                        help="write collapsed stacks (flamegraph.pl "
                             "format) to PATH")
    parser.add_argument("--dataset", default="delivery")
    parser.add_argument("--seed", type=int, default=100)
    parser.add_argument("--samples", type=int, default=4,
                        help="solve: rollouts per solve")
    parser.add_argument("--no-kernels", action="store_true",
                        help="solve: loop the object-path planner instead "
                             "of the packed route kernels (for before/"
                             "after profile comparisons)")
    parser.add_argument("--epochs", type=int, default=2,
                        help="train: REINFORCE epochs")
    parser.add_argument("--d-model", type=int, default=32)
    parser.add_argument("--num-heads", type=int, default=4)
    parser.add_argument("--top", type=int, default=20,
                        help="rows in the summary table")
    args = parser.parse_args(argv)

    profiler = OpProfiler()
    if args.workload == "solve":
        _solve_workload(args, profiler)
    else:
        _train_workload(args, profiler)

    print(render_profile(profiler, limit=args.top))
    print()
    print(render_stacks(profiler))
    if args.out:
        profiler.write(args.out)
        print(f"\nProfile written to {args.out}")
    if args.collapsed:
        with open(args.collapsed, "w") as handle:
            collapsed = profiler.collapsed()
            if collapsed:
                handle.write(collapsed + "\n")
        print(f"Collapsed stacks written to {args.collapsed}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
