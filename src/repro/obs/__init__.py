"""``repro.obs`` — run telemetry: timer spans, metrics, JSONL traces.

The observability layer the solver, trainer, cache and experiment runner
report into.  Three pieces:

* :class:`MetricsRegistry` — named counters (schedule-invariant sums),
  gauges (max-merged) and timings (wall clock); subsumes and extends
  :class:`~repro.core.perf.PerfCounters`.
* :class:`Tracer` / :func:`tracing` — hierarchical timer spans
  (``with obs.span("init"): ...``), point events, and a JSONL sink.
  The default tracer is a no-op; instrumentation costs nothing when off.
* :func:`capture_child` / :func:`absorb` — fork-pool propagation: worker
  telemetry is snapshotted per item, shipped back with the result, and
  merged deterministically in item order by :func:`repro.parallel.parallel_map`.
* :class:`OpProfiler` / :func:`profiling` (:mod:`repro.obs.profile`) —
  op-level autograd profiling below the span layer: per-op call counts,
  wall time, estimated FLOPs/bytes, live-tensor peak memory, and
  collapsed-stack (flamegraph) export.  ``python -m repro.obs.profile``
  profiles a smoke workload from the command line.
* :class:`SloTracker` (:mod:`repro.obs.slo`) — rolling-window SLO
  accounting: time-bucketed p50/p95/p99, error budgets, and
  threshold-crossing ``slo.alert`` events into the trace stream.
* :class:`FlightRecorder` / :func:`replay_journal`
  (:mod:`repro.obs.recorder`) — deterministic request journaling with
  bit-identical replay (``python -m repro.serve replay journal.jsonl``).
* :func:`render_openmetrics` (:mod:`repro.obs.openmetrics`) — the
  registry as a Prometheus-scrapable text exposition; the companion
  live terminal dashboard is ``python -m repro.obs.dashboard``.

Typical use::

    from repro import obs

    with obs.tracing("run.jsonl") as tracer:
        solution = solver.solve(instance, num_samples=8, workers=4)
    print(tracer.metrics.counters["solve.planner_calls"])

See ``docs/architecture.md`` ("Observability") for the span tree, metric
names and the trace-file schema.
"""

from . import profile
from .history import TrainingHistory
from .metrics import (
    DEFAULT_HISTOGRAM_CAPACITY,
    METRICS_SCHEMA_VERSION,
    PERF_COUNTER_NAMES,
    PERF_GAUGE_NAMES,
    PERF_TIMING_NAMES,
    Histogram,
    MetricsRegistry,
)
from .openmetrics import render_openmetrics, write_openmetrics
from .profile import OpProfiler, OpStat, profiling, render_profile
from .recorder import (
    FlightRecorder,
    Journal,
    JournalError,
    ReplayReport,
    read_journal,
    replay_journal,
    solution_digest,
)
from .slo import SloConfig, SloTracker, current_slo_tracker
from .trace import (
    NULL_TRACER,
    JsonlSink,
    ListSink,
    NullSink,
    NullTracer,
    Tracer,
    absorb,
    add_time,
    capture_child,
    count,
    current_metrics,
    event,
    gauge,
    get_tracer,
    observe,
    record_perf,
    set_tracer,
    span,
    tracing,
)

__all__ = [
    "MetricsRegistry", "Histogram", "DEFAULT_HISTOGRAM_CAPACITY",
    "METRICS_SCHEMA_VERSION",
    "TrainingHistory",
    "SloConfig", "SloTracker", "current_slo_tracker",
    "FlightRecorder", "Journal", "JournalError", "ReplayReport",
    "read_journal", "replay_journal", "solution_digest",
    "render_openmetrics", "write_openmetrics",
    "OpProfiler", "OpStat", "profiling", "render_profile", "profile",
    "PERF_COUNTER_NAMES", "PERF_TIMING_NAMES", "PERF_GAUGE_NAMES",
    "Tracer", "NullTracer", "NULL_TRACER",
    "JsonlSink", "ListSink", "NullSink",
    "tracing", "get_tracer", "set_tracer", "current_metrics",
    "span", "count", "gauge", "add_time", "observe", "event", "record_perf",
    "capture_child", "absorb",
]
