"""OpenMetrics/Prometheus text exposition for a :class:`MetricsRegistry`.

Maps the registry's four families onto the OpenMetrics text format any
Prometheus-compatible scraper ingests:

* counters   -> ``<prefix><name>_total``   (``# TYPE ... counter``)
* gauges     -> ``<prefix><name>``         (``# TYPE ... gauge``)
* timings    -> ``<prefix><name>_seconds_total`` (counter; wall clock
  accumulates monotonically, which is exactly a Prometheus counter)
* histograms -> ``# TYPE ... summary``: ``{quantile="0.5|0.95|0.99"}``
  sample lines plus ``_count`` / ``_sum``

Metric names are sanitised to the ``[a-zA-Z_:][a-zA-Z0-9_:]*`` grammar
(every other character becomes ``_``); the rendered text ends with the
``# EOF`` terminator the OpenMetrics spec requires.  The exporter is a
pure function over a snapshot — wire it behind any HTTP handler, or dump
it next to the metrics JSONL (``python -m repro.serve --openmetrics``).
"""

from __future__ import annotations

import re

from .metrics import MetricsRegistry

__all__ = ["render_openmetrics", "write_openmetrics", "sanitize_metric_name"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_QUANTILES = ((0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99"))


def sanitize_metric_name(name: str, prefix: str = "") -> str:
    """``serve.latency_ms`` -> ``<prefix>serve_latency_ms``."""
    name = _NAME_RE.sub("_", prefix + name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _format(value: float) -> str:
    """Float formatting per the exposition format (ints stay bare)."""
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def render_openmetrics(registry: MetricsRegistry,
                       prefix: str = "repro_") -> str:
    """The registry as one OpenMetrics exposition payload."""
    lines: list[str] = []

    for name in sorted(registry.counters):
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_format(registry.counters[name])}")

    for name in sorted(registry.gauges):
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format(registry.gauges[name])}")

    for name in sorted(registry.timings):
        metric = sanitize_metric_name(name, prefix) + "_seconds"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_format(registry.timings[name])}")

    for name in sorted(registry.histograms):
        metric = sanitize_metric_name(name, prefix)
        hist = registry.histograms[name]
        lines.append(f"# TYPE {metric} summary")
        if hist.count:
            for q, label in _QUANTILES:
                lines.append(f'{metric}{{quantile="{label}"}} '
                             f"{_format(hist.quantile(q))}")
        lines.append(f"{metric}_count {_format(hist.count)}")
        lines.append(f"{metric}_sum {_format(hist.total)}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(registry: MetricsRegistry, path,
                      prefix: str = "repro_") -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_openmetrics(registry, prefix=prefix))
