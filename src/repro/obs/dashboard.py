"""Live terminal ops dashboard over the serving metrics JSONL.

``python -m repro.obs.dashboard serve_metrics.jsonl`` tails the JSONL
file :meth:`~repro.serve.service.SolverService.write_metrics_jsonl`
appends to and redraws a single-screen summary every ``--interval``
seconds: request/response totals and sustained req/s, latency
percentiles (the rolling SLO window when the service carries a tracker,
the lifetime histogram otherwise), queue depth, shed/overload/error
rates, micro-batch width, per-stage wait attribution, and the engine's
cache hit rates.  Active SLO alerts render in their own panel.

The renderer is a pure function over the latest ``serving_stats``
record (:func:`render_dashboard`), so tests and the CI smoke target can
exercise it without a TTY: ``--frames 1 --no-clear`` prints one frame
and exits.  Records whose ``schema_version`` is newer than this reader
are rejected loudly rather than misread.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .metrics import METRICS_SCHEMA_VERSION

__all__ = ["render_dashboard", "tail_stats", "main"]

_CLEAR = "\x1b[2J\x1b[H"


def tail_stats(path, state: dict | None = None) -> dict | None:
    """The newest ``serving_stats`` record in ``path`` (None when absent).

    ``state`` (a mutable dict) carries the read offset across calls so
    repeated tailing is O(new bytes), not O(file).
    """
    state = state if state is not None else {}
    offset = state.get("offset", 0)
    latest = state.get("latest")
    try:
        with open(path, "r", encoding="utf-8") as fh:
            fh.seek(offset)
            for line in fh:
                if not line.endswith("\n"):
                    break                    # partial write; retry next tick
                offset += len(line.encode("utf-8"))
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                version = record.get("schema_version")
                if version is not None and version > METRICS_SCHEMA_VERSION:
                    raise SystemExit(
                        f"{path}: metrics schema {version} is newer than "
                        f"this dashboard ({METRICS_SCHEMA_VERSION})")
                if record.get("type") == "serving_stats":
                    latest = record
    except FileNotFoundError:
        pass
    state["offset"] = offset
    state["latest"] = latest
    return latest


def _bar(fraction: float, width: int = 20) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def _rate(part: float, total: float) -> str:
    return f"{part / total * 100.0:5.1f}%" if total else "    -"


def render_dashboard(stats: dict | None, path="", now=None) -> str:
    """One dashboard frame over the latest ``serving_stats`` record."""
    width = 62
    head = f" repro ops dashboard — {path} "
    lines = [head.center(width, "="), ""]
    if stats is None:
        lines.append("  waiting for serving_stats records...")
        return "\n".join(lines)

    requests = stats.get("requests", 0)
    responses = stats.get("responses", 0)
    shed = stats.get("shed_deadline", 0)
    rejected = stats.get("rejected_overload", 0)
    errors = stats.get("errors", 0)
    lines.append(f"  requests {requests:>8}    responses {responses:>8}"
                 f"    sustained {stats.get('sustained_req_per_s', 0.0):8.2f}"
                 " req/s")
    lines.append(f"  shed {_rate(shed, requests)}   overload "
                 f"{_rate(rejected, requests)}   errors "
                 f"{_rate(errors, requests)}")
    depth = stats.get("queue_depth", 0)
    peak = stats.get("queue_depth_peak", 0)
    lines.append(f"  queue depth {depth:>5}  (peak {peak})  "
                 f"[{_bar(depth / peak if peak else 0.0)}]")
    lines.append("")

    slo = stats.get("slo")
    if slo:
        latency = slo.get("latency_ms", {})
        lines.append(f"  latency (rolling {slo.get('window_s', 0):g}s "
                     f"window, n={latency.get('count', 0)})")
        for key in ("p50", "p95", "p99"):
            if key in latency:
                lines.append(f"    {key:<4} {latency[key]:10.2f} ms")
        budget = slo.get("budget_used", 0.0)
        lines.append(f"  error budget used {budget * 100.0:6.1f}%  "
                     f"[{_bar(budget)}]")
        active = slo.get("alerts_active", [])
        if active:
            lines.append(f"  ALERTS ACTIVE: {', '.join(active)}  "
                         f"(fired {slo.get('alerts_fired', 0)} total)")
    else:
        latency = stats.get("latency_ms", {})
        if latency.get("count"):
            lines.append(f"  latency (lifetime, n={latency['count']})")
            for key in ("p50", "p95", "p99"):
                if key in latency:
                    lines.append(f"    {key:<4} {latency[key]:10.2f} ms")
    lines.append("")

    batch = stats.get("batch_size", {})
    if batch.get("count"):
        lines.append(f"  batch width mean {batch['mean']:.2f} "
                     f"max {batch['max']:g} (n={batch['count']})")
    stages = stats.get("stages")
    if stages:
        for label, key in (("admission wait", "admission_wait_ms"),
                           ("coalesce wait", "coalesce_wait_ms"),
                           ("engine execute", "execute_ms")):
            summary = stages.get(key, {})
            if summary.get("count"):
                lines.append(f"  {label:<15} p50 {summary['p50']:8.2f} ms"
                             f"   p99 {summary['p99']:8.2f} ms")
    engine = stats.get("engine", {})
    if engine:
        hits, misses = engine.get("env_hits", 0), engine.get("env_misses", 0)
        lines.append(f"  env cache   {_rate(hits, hits + misses)} hit  "
                     f"({hits}/{hits + misses}, "
                     f"warm={engine.get('warm_instances', 0)})")
        if "statics_hits" in engine:
            shits = engine["statics_hits"]
            smiss = engine.get("statics_misses", 0)
            lines.append(f"  statics     {_rate(shits, shits + smiss)} hit  "
                         f"({shits}/{shits + smiss})")
    lines.append("")
    lines.append("=" * width)
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.obs.dashboard")
    parser.add_argument("path", help="metrics JSONL to tail")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="seconds between redraws (default 1)")
    parser.add_argument("--frames", type=int, default=0,
                        help="stop after N frames (0 = run until ^C)")
    parser.add_argument("--no-clear", action="store_true",
                        help="do not clear the screen between frames "
                             "(plain sequential output; CI mode)")
    args = parser.parse_args(argv)

    state: dict = {}
    frames = 0
    try:
        while True:
            stats = tail_stats(args.path, state)
            frame = render_dashboard(stats, path=args.path)
            if not args.no_clear:
                sys.stdout.write(_CLEAR)
            sys.stdout.write(frame + "\n")
            sys.stdout.flush()
            frames += 1
            if args.frames and frames >= args.frames:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
