"""Synthetic dataset machinery shared by the three dataset families.

The paper evaluates on proprietary JD Logistics data ("Delivery"), Flickr
check-ins ("Tourism") and Cainiao's LaDe.  None is redistributable or
reachable offline, so each family is reproduced as a calibrated generator
(see DESIGN.md): the spatial process (clustered deliveries vs POI-driven
tourism), the travel-task-count distribution, the per-instance worker
counts and the service times follow the paper's setup (Section V-A/B) and
its Figure 4 distributions.

Workers are built so their mandatory route is feasible by construction:
the latest arrival is the worker's own-route travel time inflated by a
random slack factor — slack is exactly the resource the sensing platform
buys with incentives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.entities import TravelTask, Worker
from ..core.geometry import DEFAULT_SPEED, Grid, Location, Region
from ..tsptw.insertion import InsertionSolver

__all__ = ["WorkerGenerator", "DatasetSpec", "uniform_point", "clustered_points",
           "city_scale_spec", "city_generator", "make_city_instance"]


def uniform_point(rng: np.random.Generator, region: Region) -> Location:
    """Uniform random location inside the region."""
    return Location(rng.uniform(0.0, region.width), rng.uniform(0.0, region.height))


def clustered_points(rng: np.random.Generator, region: Region, center: Location,
                     count: int, spread: float) -> list[Location]:
    """``count`` points scattered normally around ``center``, clamped inside."""
    points = []
    for _ in range(count):
        raw = Location(rng.normal(center.x, spread), rng.normal(center.y, spread))
        points.append(region.clamp(raw))
    return points


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one dataset family."""

    name: str
    region: Region
    grid_nx: int
    grid_ny: int
    time_span: float                 # minutes (240 delivery/lade, 360 tourism)
    travel_service_time: float       # 10 for couriers, 20 for tourists
    workers_per_instance: tuple[int, int]      # inclusive range
    travel_tasks_per_worker: tuple[int, int]   # inclusive range
    slack_range: tuple[float, float] = (1.35, 1.9)
    speed: float = DEFAULT_SPEED

    @property
    def grid(self) -> Grid:
        return Grid(self.region, self.grid_nx, self.grid_ny)


@dataclass
class WorkerGenerator:
    """Builds feasible multi-destination workers for a dataset family.

    ``location_fn(rng, region, count)`` supplies the travel-task locations
    (clustered for couriers, POI-based for tourists);
    ``endpoint_fn(rng, region, tasks)`` supplies origin and destination.
    """

    spec: DatasetSpec
    location_fn: Callable[[np.random.Generator, Region, int], list[Location]]
    endpoint_fn: Callable[[np.random.Generator, Region, list[Location]],
                          tuple[Location, Location]]
    _planner: InsertionSolver = field(init=False)

    def __post_init__(self):
        self._planner = InsertionSolver(speed=self.spec.speed)

    def sample_travel_task_count(self, rng: np.random.Generator) -> int:
        low, high = self.spec.travel_tasks_per_worker
        # Right-skewed like the paper's Figure 4: most trips are short,
        # a tail of long ones.  Rejection-sample the geometric tail so the
        # histogram decays instead of piling up at the cap.
        p = 2.0 / (low + high)
        for _ in range(32):
            value = low + int(rng.geometric(p=p)) - 1
            if value <= high:
                return value
        return high

    def make_worker(self, worker_id: int, rng: np.random.Generator) -> Worker:
        spec = self.spec
        count = self.sample_travel_task_count(rng)
        locations = self.location_fn(rng, spec.region, count)
        origin, destination = self.endpoint_fn(rng, spec.region, locations)
        travel_tasks = tuple(
            TravelTask(worker_id * 1000 + k, loc, spec.travel_service_time)
            for k, loc in enumerate(locations)
        )

        # Own-route travel time -> time budget with random slack, clipped
        # into the project span.
        probe = Worker(worker_id, origin, destination, 0.0, float("inf"),
                       travel_tasks)
        base_rtt = self._planner.base_route(probe).route_travel_time
        slack = rng.uniform(*spec.slack_range)
        duration = min(base_rtt * slack, spec.time_span)
        if base_rtt > spec.time_span:
            # Trip longer than the project: trim travel tasks until it fits.
            while travel_tasks and base_rtt > spec.time_span:
                travel_tasks = travel_tasks[:-1]
                probe = Worker(worker_id, origin, destination, 0.0,
                               float("inf"), travel_tasks)
                base_rtt = self._planner.base_route(probe).route_travel_time
            duration = min(base_rtt * slack, spec.time_span)
        latest_start = max(0.0, spec.time_span - duration)
        departure = rng.uniform(0.0, latest_start) if latest_start > 0 else 0.0
        return Worker(worker_id, origin, destination, departure,
                      departure + duration, travel_tasks)

    def make_workers(self, rng: np.random.Generator,
                     count: int | None = None) -> list[Worker]:
        if count is None:
            low, high = self.spec.workers_per_instance
            count = int(rng.integers(low, high + 1))
        return [self.make_worker(i, rng) for i in range(count)]


# ---------------------------------------------------------------------- #
# City scale (PR 10): the two-orders-of-magnitude-up generator that the
# sharding pipeline targets — 10k+ sensing tasks over a city-sized region,
# 1k+ couriers each confined to a local corridor.
# ---------------------------------------------------------------------- #
_CITY_CELL_SIZE = 200.0      # metres, same cell granularity as the families
_CITY_CLUSTER_SPREAD = 300.0  # travel-task scatter around a courier's patch
_CITY_ENDPOINT_JITTER = 400.0  # origin/destination scatter around the patch


def city_scale_spec(num_tasks: int, time_span: float = 240.0,
                    window_minutes: float = 30.0) -> DatasetSpec:
    """A dataset spec whose sensing grid holds ~``num_tasks`` candidates.

    The region keeps the Delivery family's 200 m cells and ~5:6 aspect
    ratio and grows until cells x slots reaches ``num_tasks`` — 10k tasks
    is roughly a 5 km x 6.3 km city at a 30-minute slotting.
    """
    if num_tasks < 1:
        raise ValueError(f"num_tasks must be >= 1, got {num_tasks}")
    num_slots = max(1, int(time_span // window_minutes))
    cells = max(1, math.ceil(num_tasks / num_slots))
    nx = max(1, round(math.sqrt(cells * 5.0 / 6.0)))
    ny = max(1, math.ceil(cells / nx))
    return DatasetSpec(
        name=f"city-{num_tasks}",
        region=Region(nx * _CITY_CELL_SIZE, ny * _CITY_CELL_SIZE),
        grid_nx=nx,
        grid_ny=ny,
        time_span=time_span,
        travel_service_time=10.0,
        workers_per_instance=(1000, 1000),
        travel_tasks_per_worker=(2, 8),
    )


def _city_locations(rng: np.random.Generator, region: Region,
                    count: int) -> list[Location]:
    # Each courier works one local patch: a fresh uniform patch centre per
    # worker, deliveries scattered tightly around it.  Local corridors are
    # what makes a spatial split natural — most workers land wholly inside
    # one shard.
    center = uniform_point(rng, region)
    return clustered_points(rng, region, center, count, _CITY_CLUSTER_SPREAD)


def _city_endpoints(rng: np.random.Generator, region: Region,
                    locations) -> tuple[Location, Location]:
    cx = sum(loc.x for loc in locations) / len(locations)
    cy = sum(loc.y for loc in locations) / len(locations)

    def near_patch() -> Location:
        return region.clamp(Location(rng.normal(cx, _CITY_ENDPOINT_JITTER),
                                     rng.normal(cy, _CITY_ENDPOINT_JITTER)))

    return near_patch(), near_patch()


def city_generator(spec: DatasetSpec | None = None,
                   num_tasks: int = 10_000) -> WorkerGenerator:
    """Worker generator for the city-scale synthetic family."""
    spec = spec or city_scale_spec(num_tasks)
    return WorkerGenerator(spec, _city_locations, _city_endpoints)


def make_city_instance(num_tasks: int = 10_000, num_workers: int = 1_000,
                       seed: int = 0, budget: float = 2_000.0,
                       mu: float = 1.0, time_span: float = 240.0,
                       window_minutes: float = 30.0, alpha: float = 0.5,
                       sensing_service_time: float = 5.0):
    """One city-scale USMDW instance (default: 10k tasks / 1k workers).

    The sensing-task set is the uniform cell x slot grid subsampled to
    exactly ``num_tasks``; workers follow the city corridor process above.
    Defaults scale the paper's Delivery setting up ~70x in tasks while
    keeping its cell size, slotting, alpha and incentive rate.
    """
    from ..core.coverage import CoverageModel
    from ..core.instance import USMDWInstance, make_sensing_grid_tasks

    spec = city_scale_spec(num_tasks, time_span=time_span,
                           window_minutes=window_minutes)
    rng = np.random.default_rng(seed)
    workers = city_generator(spec).make_workers(rng, count=num_workers)
    num_slots = max(1, int(time_span // window_minutes))
    candidates = spec.grid_nx * spec.grid_ny * num_slots
    tasks = make_sensing_grid_tasks(
        spec.grid, time_span, window_minutes,
        service_time=sensing_service_time,
        density=min(1.0, num_tasks / candidates), rng=rng)
    coverage = CoverageModel(spec.grid, time_span,
                             slot_minutes=window_minutes, alpha=alpha)
    return USMDWInstance(
        workers=tuple(workers),
        sensing_tasks=tuple(tasks),
        budget=budget,
        mu=mu,
        coverage=coverage,
        speed=spec.speed,
        name=f"{spec.name}-w{num_workers}-s{seed}",
    )
