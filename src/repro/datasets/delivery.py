"""The "Delivery" dataset family (JD Logistics, Beijing).

Paper setup (Section V-A/B): 3 months of courier trips over a 2 km x
2.4 km region, 10 x 12 grid, 4-hour sensing span, 10-minute delivery
service time.  Couriers serve a contiguous sub-region: the generator
scatters each courier's parcels around a per-trip cluster center and
starts/ends the trip at a depot near the region edge.
"""

from __future__ import annotations

import numpy as np

from ..core.geometry import Location, Region
from .synthetic import DatasetSpec, WorkerGenerator, clustered_points, uniform_point

__all__ = ["DELIVERY_SPEC", "delivery_generator"]

DELIVERY_SPEC = DatasetSpec(
    name="delivery",
    region=Region(2000.0, 2400.0),
    grid_nx=10,
    grid_ny=12,
    time_span=240.0,
    travel_service_time=10.0,
    workers_per_instance=(4, 8),
    travel_tasks_per_worker=(2, 10),
)

#: Depot at the south-west corner of the delivery region; couriers leave
#: from and return near it, as in last-mile station operations.
_DEPOT = Location(150.0, 150.0)
_DEPOT_JITTER = 120.0
_CLUSTER_SPREAD = 280.0

#: Residential hot spots couriers serve.  Deliberately skewed toward one
#: side of the region: the paper's case study (Figure 6a) shows courier
#: trips covering only part of the sensing region, which is exactly what
#: makes balanced sensing hard and distinguishes value- from cost-greedy
#: assignment.
_HOTSPOTS = (
    Location(500.0, 700.0),
    Location(900.0, 400.0),
    Location(650.0, 1500.0),
)
_HOTSPOT_SPREAD = 260.0


def _delivery_locations(rng: np.random.Generator, region: Region,
                        count: int) -> list[Location]:
    hotspot = _HOTSPOTS[int(rng.integers(0, len(_HOTSPOTS)))]
    center = region.clamp(Location(
        rng.normal(hotspot.x, _HOTSPOT_SPREAD),
        rng.normal(hotspot.y, _HOTSPOT_SPREAD)))
    return clustered_points(rng, region, center, count, _CLUSTER_SPREAD)


def _delivery_endpoints(rng: np.random.Generator, region: Region,
                        _locations) -> tuple[Location, Location]:
    def near_depot() -> Location:
        return region.clamp(Location(
            rng.normal(_DEPOT.x, _DEPOT_JITTER),
            rng.normal(_DEPOT.y, _DEPOT_JITTER)))
    return near_depot(), near_depot()


def delivery_generator() -> WorkerGenerator:
    """Worker generator calibrated to the Delivery dataset."""
    return WorkerGenerator(DELIVERY_SPEC, _delivery_locations, _delivery_endpoints)
