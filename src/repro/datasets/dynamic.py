"""Streaming task-arrival schedules for the dynamic sensing scenario.

The paper's pipeline is static: every sensing task is known before workers
depart.  Real sensing campaigns are not — tasks are posted while workers
are already en route.  This module describes *when* each task of an
instance enters and leaves the availability pool, keeping the instance
itself untouched: a schedule is a pure overlay of
``(task_id, arrival, expiry)`` records over ``instance.sensing_tasks``,
so every static component (planners, policies, coverage) keeps working on
the same immutable instance.

Two seeded generators cover the regimes used in the experiments:
:func:`poisson_arrivals` (memoryless posting at a uniform rate, the
classic mobile-crowdsensing arrival model) and :func:`burst_arrivals`
(tasks posted in clustered bursts, e.g. event-driven sensing demand).
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass

import numpy as np

from ..core.instance import USMDWInstance

__all__ = ["TaskArrival", "ArrivalSchedule", "poisson_arrivals",
           "burst_arrivals"]


@dataclass(frozen=True, slots=True)
class TaskArrival:
    """When one sensing task is available: ``[arrival, expiry)``.

    A task with ``arrival == 0`` is present before workers depart (the
    static core).  ``expiry`` is when an *unselected* task leaves the pool
    and counts as rejected; a selected task is committed and never
    expires.  Expiry never needs to exceed the task's window end — past
    it the task is unservable anyway — and generators clamp accordingly.
    """

    task_id: int
    arrival: float
    expiry: float

    def __post_init__(self):
        if self.arrival < 0:
            raise ValueError(f"arrival must be >= 0, got {self.arrival}")
        if self.expiry < self.arrival:
            raise ValueError(
                f"expiry {self.expiry} before arrival {self.arrival}")


@dataclass(frozen=True)
class ArrivalSchedule:
    """Arrival/expiry overlay for one instance's sensing-task set.

    ``arrivals`` holds one record per scheduled task, sorted by
    ``(arrival, task_id)`` — ties broken by id so replays are
    deterministic.  Tasks of the instance that have no record simply
    never appear (useful for truncated schedules); most generators cover
    the full set.
    """

    horizon: float
    arrivals: tuple[TaskArrival, ...]

    def __post_init__(self):
        ordered = tuple(sorted(self.arrivals,
                               key=lambda a: (a.arrival, a.task_id)))
        object.__setattr__(self, "arrivals", ordered)
        seen: set[int] = set()
        for record in ordered:
            if record.task_id in seen:
                raise ValueError(f"duplicate schedule entry for task "
                                 f"{record.task_id}")
            seen.add(record.task_id)

    # ------------------------------------------------------------------ #
    @property
    def initial(self) -> tuple[TaskArrival, ...]:
        """Records present at time zero (the static core)."""
        return tuple(a for a in self.arrivals if a.arrival <= 0.0)

    @property
    def streamed(self) -> tuple[TaskArrival, ...]:
        """Records that arrive strictly after departure, in event order."""
        return tuple(a for a in self.arrivals if a.arrival > 0.0)

    def event_times(self) -> list[float]:
        """Sorted distinct epochs at which the pool changes.

        Every strictly-positive arrival time and every expiry time of a
        scheduled task, deduplicated; the final horizon is appended so
        the episode always closes with a terminal epoch.
        """
        times: list[float] = []
        seen: set[float] = set()
        for record in self.arrivals:
            for t in (record.arrival, record.expiry):
                if 0.0 < t <= self.horizon and t not in seen:
                    seen.add(t)
                    insort(times, t)
        if self.horizon not in seen:
            insort(times, self.horizon)
        return times

    def record_for(self, task_id: int) -> TaskArrival | None:
        for record in self.arrivals:
            if record.task_id == task_id:
                return record
        return None

    def validate(self, instance: USMDWInstance) -> None:
        """Check every record refers to a task of ``instance``."""
        known = {s.task_id for s in instance.sensing_tasks}
        for record in self.arrivals:
            if record.task_id not in known:
                raise ValueError(
                    f"schedule references unknown task {record.task_id}")


# ---------------------------------------------------------------------- #
def _split_pool(instance: USMDWInstance, rng: np.random.Generator,
                initial_fraction: float):
    """Partition the task set into the static core and the streamed tail."""
    if not 0.0 <= initial_fraction <= 1.0:
        raise ValueError(
            f"initial_fraction must be in [0, 1], got {initial_fraction}")
    tasks = list(instance.sensing_tasks)
    order = rng.permutation(len(tasks))
    n_initial = int(round(initial_fraction * len(tasks)))
    initial = [tasks[i] for i in sorted(order[:n_initial])]
    streamed = [tasks[i] for i in sorted(order[n_initial:])]
    return initial, streamed


def _expiry_for(task, arrival: float, ttl: float | None) -> float:
    """Expiry clamped into ``[arrival, tw_end]`` — past the window end the
    task is unservable regardless of the schedule."""
    if ttl is None:
        return max(arrival, task.tw_end)
    return min(max(arrival, arrival + ttl), max(arrival, task.tw_end))


def poisson_arrivals(instance: USMDWInstance, rng: np.random.Generator,
                     initial_fraction: float = 0.5,
                     horizon: float | None = None,
                     ttl: float | None = None) -> ArrivalSchedule:
    """Memoryless streaming: the tail arrives as a Poisson process.

    Conditioned on the number of arrivals, Poisson event times are
    i.i.d. uniform over the span — so each streamed task draws a uniform
    arrival over ``(0, min(horizon, latest_start)]``, which guarantees it
    is at least momentarily servable when posted.  ``ttl`` bounds how
    long an unselected task stays in the pool (default: until its window
    closes).
    """
    horizon = float(horizon if horizon is not None
                    else instance.coverage.time_span)
    initial, streamed = _split_pool(instance, rng, initial_fraction)
    records = [TaskArrival(t.task_id, 0.0, _expiry_for(t, 0.0, ttl))
               for t in initial]
    for task in streamed:
        latest = min(horizon, max(task.latest_start, 0.0))
        arrival = float(rng.uniform(0.0, latest)) if latest > 0 else 0.0
        records.append(
            TaskArrival(task.task_id, arrival,
                        _expiry_for(task, arrival, ttl)))
    return ArrivalSchedule(horizon=horizon, arrivals=tuple(records))


def burst_arrivals(instance: USMDWInstance, rng: np.random.Generator,
                   num_bursts: int = 3, burst_width: float = 10.0,
                   initial_fraction: float = 0.5,
                   horizon: float | None = None,
                   ttl: float | None = None) -> ArrivalSchedule:
    """Clustered streaming: the tail arrives in Gaussian bursts.

    Burst centres are uniform over the horizon; each streamed task joins
    a random burst and arrives at ``centre + N(0, burst_width)``, clipped
    into ``[0, min(horizon, latest_start)]``.  Models event-driven demand
    spikes (incidents, flash campaigns) that stress the repair path with
    large same-epoch arrival batches.
    """
    if num_bursts < 1:
        raise ValueError(f"num_bursts must be >= 1, got {num_bursts}")
    horizon = float(horizon if horizon is not None
                    else instance.coverage.time_span)
    initial, streamed = _split_pool(instance, rng, initial_fraction)
    centres = rng.uniform(0.0, horizon, size=num_bursts)
    records = [TaskArrival(t.task_id, 0.0, _expiry_for(t, 0.0, ttl))
               for t in initial]
    for task in streamed:
        centre = centres[int(rng.integers(num_bursts))]
        jitter = float(rng.normal(0.0, burst_width))
        latest = min(horizon, max(task.latest_start, 0.0))
        arrival = float(np.clip(centre + jitter, 0.0, latest))
        records.append(
            TaskArrival(task.task_id, arrival,
                        _expiry_for(task, arrival, ttl)))
    return ArrivalSchedule(horizon=horizon, arrivals=tuple(records))
