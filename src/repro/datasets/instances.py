"""Building USMDW instances from dataset families.

The paper constructs problem instances by grouping users by trip time
intervals (Section V-B); here an instance is a sampled cohort of workers
active in the sensing span plus the uniformly created sensing-task set.
:func:`generate_instances` produces deterministic, seeded instance lists;
:func:`train_val_test_split` mirrors the paper's per-dataset splits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.coverage import CoverageModel
from ..core.instance import USMDWInstance, make_sensing_grid_tasks
from .delivery import delivery_generator
from .lade import lade_generator
from .synthetic import WorkerGenerator
from .tourism import tourism_generator

__all__ = ["InstanceOptions", "generate_instance", "generate_instances",
           "train_val_test_split", "generator_for", "DATASET_NAMES"]

DATASET_NAMES = ("delivery", "tourism", "lade")

_GENERATORS = {
    "delivery": delivery_generator,
    "tourism": tourism_generator,
    "lade": lade_generator,
}


def generator_for(name: str) -> WorkerGenerator:
    """Worker generator for a dataset family by name."""
    try:
        return _GENERATORS[name]()
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")


@dataclass(frozen=True)
class InstanceOptions:
    """Experiment knobs (paper defaults: budget 300, mu 1, window 30, alpha 0.5).

    ``task_density`` subsamples the full cell x slot sensing-task grid to
    keep CPU runs tractable; 1.0 reproduces the paper's full task set.
    """

    budget: float = 300.0
    mu: float = 1.0
    window_minutes: float = 30.0
    alpha: float = 0.5
    sensing_service_time: float = 5.0
    task_density: float = 0.25
    num_workers: int | None = None


def generate_instance(generator: WorkerGenerator, options: InstanceOptions,
                      rng: np.random.Generator,
                      name: str | None = None) -> USMDWInstance:
    """One USMDW instance from a worker generator and experiment options."""
    spec = generator.spec
    workers = generator.make_workers(rng, count=options.num_workers)
    tasks = make_sensing_grid_tasks(
        spec.grid, spec.time_span, options.window_minutes,
        service_time=options.sensing_service_time,
        density=options.task_density, rng=rng)
    coverage = CoverageModel(spec.grid, spec.time_span,
                             slot_minutes=options.window_minutes,
                             alpha=options.alpha)
    return USMDWInstance(
        workers=tuple(workers),
        sensing_tasks=tuple(tasks),
        budget=options.budget,
        mu=options.mu,
        coverage=coverage,
        speed=spec.speed,
        name=name or spec.name,
    )


def generate_instances(dataset: str, count: int, seed: int = 0,
                       options: InstanceOptions | None = None) -> list[USMDWInstance]:
    """``count`` seeded instances of a dataset family."""
    generator = generator_for(dataset)
    options = options or InstanceOptions()
    rng = np.random.default_rng(seed)
    return [
        generate_instance(generator, options, rng, name=f"{dataset}-{i}")
        for i in range(count)
    ]


def train_val_test_split(instances: list[USMDWInstance],
                         val_fraction: float = 0.125,
                         test_fraction: float = 0.125
                         ) -> tuple[list[USMDWInstance], list[USMDWInstance],
                                    list[USMDWInstance]]:
    """Split in the paper's proportions (Delivery: 120/20/20 = 75/12.5/12.5%)."""
    n = len(instances)
    n_val = max(1, int(round(n * val_fraction))) if n > 2 else 0
    n_test = max(1, int(round(n * test_fraction))) if n > 2 else 0
    n_train = n - n_val - n_test
    if n_train <= 0:
        raise ValueError(f"too few instances ({n}) for a three-way split")
    return (instances[:n_train],
            instances[n_train:n_train + n_val],
            instances[n_train + n_val:])
