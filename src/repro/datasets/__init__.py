"""``repro.datasets`` — the three dataset families of the paper.

Synthetic, seeded generators calibrated to the paper's Delivery (JD
Logistics), Tourism (Flickr) and LaDe (Cainiao) datasets — see DESIGN.md
for the substitution rationale.
"""

from .delivery import DELIVERY_SPEC, delivery_generator
from .dynamic import (
    ArrivalSchedule,
    TaskArrival,
    burst_arrivals,
    poisson_arrivals,
)
from .distributions import (
    DistributionSummary,
    summarize_dataset,
    travel_task_histogram,
    worker_count_histogram,
)
from .instances import (
    DATASET_NAMES,
    InstanceOptions,
    generate_instance,
    generate_instances,
    generator_for,
    train_val_test_split,
)
from .lade import LADE_SPEC, LADE_STATIONS, lade_generator
from .synthetic import DatasetSpec, WorkerGenerator, clustered_points, uniform_point
from .tourism import TOURISM_POIS, TOURISM_SPEC, tourism_generator
from .trajectories import (
    StayPoint,
    Trajectory,
    TrajectoryPoint,
    detect_stay_points,
    synthesize_trip,
    worker_from_trajectory,
)

__all__ = [
    "DatasetSpec", "WorkerGenerator", "uniform_point", "clustered_points",
    "DELIVERY_SPEC", "delivery_generator",
    "TOURISM_SPEC", "TOURISM_POIS", "tourism_generator",
    "LADE_SPEC", "LADE_STATIONS", "lade_generator",
    "InstanceOptions", "generate_instance", "generate_instances",
    "generator_for", "train_val_test_split", "DATASET_NAMES",
    "TaskArrival", "ArrivalSchedule", "poisson_arrivals", "burst_arrivals",
    "DistributionSummary", "travel_task_histogram", "worker_count_histogram",
    "summarize_dataset",
    "Trajectory", "TrajectoryPoint", "StayPoint", "synthesize_trip",
    "detect_stay_points", "worker_from_trajectory",
]
