"""Trajectory substrate: trip logs and stay-point extraction.

The paper's datasets are *trajectory* data — courier GPS traces (Delivery,
LaDe) and geo-tagged photo sequences (Tourism) — from which the
multi-destination worker objects are derived.  This module reproduces that
pipeline stage:

* :func:`synthesize_trip` renders a worker's route as a sampled,
  noise-perturbed trip log (the forward model);
* :func:`detect_stay_points` recovers the visited locations with the
  classic stay-point detection of Li et al. (2008): a maximal run of
  consecutive points within ``radius`` of its anchor lasting at least
  ``min_duration`` becomes one stay;
* :func:`worker_from_trajectory` turns a trip log into a
  :class:`~repro.core.entities.Worker` — endpoints from the first/last
  samples, travel tasks from the interior stay points, time bounds from
  the timestamps.

Round-tripping a worker through synthesize -> detect -> rebuild recovers
the original stop structure (see ``tests/datasets/test_trajectories.py``),
which validates both directions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.entities import TravelTask, Worker
from ..core.geometry import DEFAULT_SPEED, Location
from ..core.route import simulate_route

__all__ = ["TrajectoryPoint", "Trajectory", "StayPoint", "synthesize_trip",
           "detect_stay_points", "worker_from_trajectory"]


@dataclass(frozen=True, slots=True)
class TrajectoryPoint:
    """One timestamped sample of a trip log (minutes, meters)."""

    t: float
    x: float
    y: float

    @property
    def location(self) -> Location:
        return Location(self.x, self.y)


@dataclass(frozen=True)
class Trajectory:
    """A time-ordered trip log."""

    points: tuple[TrajectoryPoint, ...]

    def __post_init__(self):
        if not isinstance(self.points, tuple):
            object.__setattr__(self, "points", tuple(self.points))
        times = [p.t for p in self.points]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("trajectory timestamps must be non-decreasing")

    def __len__(self) -> int:
        return len(self.points)

    @property
    def duration(self) -> float:
        if not self.points:
            return 0.0
        return self.points[-1].t - self.points[0].t


@dataclass(frozen=True, slots=True)
class StayPoint:
    """A detected stop: mean location plus the stay interval."""

    location: Location
    arrival: float
    departure: float

    @property
    def duration(self) -> float:
        return self.departure - self.arrival


def synthesize_trip(worker: Worker, sample_period: float = 1.0,
                    noise_std: float = 0.0,
                    speed: float = DEFAULT_SPEED,
                    rng: np.random.Generator | None = None) -> Trajectory:
    """Render the worker's own route as a sampled trip log.

    The worker departs at ``earliest_departure``, travels the base route
    through their travel tasks at constant ``speed``, and dwells at each
    stop for its service time.  Positions are sampled every
    ``sample_period`` minutes with optional Gaussian GPS noise.
    """
    timing = simulate_route(worker, list(worker.travel_tasks), speed=speed)
    # Build a piecewise-linear position function from the stop timings.
    knots: list[tuple[float, Location]] = [(timing.departure, worker.origin)]
    for stop in timing.stops:
        knots.append((stop.arrival, stop.task.location))
        knots.append((stop.finish, stop.task.location))
    knots.append((timing.arrival_at_destination, worker.destination))

    rng = rng or np.random.default_rng()
    points: list[TrajectoryPoint] = []
    t = timing.departure
    end = timing.arrival_at_destination
    while t <= end + 1e-9:
        x, y = _interpolate(knots, min(t, end))
        if noise_std > 0:
            x += rng.normal(0.0, noise_std)
            y += rng.normal(0.0, noise_std)
        points.append(TrajectoryPoint(min(t, end), x, y))
        t += sample_period
    if points[-1].t < end - 1e-9:
        x, y = _interpolate(knots, end)
        points.append(TrajectoryPoint(end, x, y))
    return Trajectory(tuple(points))


def _interpolate(knots: list[tuple[float, Location]], t: float) -> tuple[float, float]:
    if t <= knots[0][0]:
        return knots[0][1].x, knots[0][1].y
    for (t0, a), (t1, b) in zip(knots, knots[1:]):
        if t0 <= t <= t1:
            if t1 - t0 <= 1e-12:
                return b.x, b.y
            frac = (t - t0) / (t1 - t0)
            return a.x + frac * (b.x - a.x), a.y + frac * (b.y - a.y)
    return knots[-1][1].x, knots[-1][1].y


def detect_stay_points(trajectory: Trajectory, radius: float = 50.0,
                       min_duration: float = 5.0) -> list[StayPoint]:
    """Stay-point detection after Li et al. (2008).

    Scans the trip log for maximal runs of consecutive points that all lie
    within ``radius`` of the run's first point and span at least
    ``min_duration`` minutes; each such run yields one stay point at the
    run's centroid.
    """
    points = trajectory.points
    stays: list[StayPoint] = []
    i = 0
    n = len(points)
    while i < n:
        anchor = points[i]
        j = i + 1
        while j < n and math.hypot(points[j].x - anchor.x,
                                   points[j].y - anchor.y) <= radius:
            j += 1
        span = points[j - 1].t - anchor.t
        if span >= min_duration:
            xs = [p.x for p in points[i:j]]
            ys = [p.y for p in points[i:j]]
            stays.append(StayPoint(
                Location(float(np.mean(xs)), float(np.mean(ys))),
                anchor.t, points[j - 1].t))
            i = j
        else:
            i += 1
    return stays


def worker_from_trajectory(trajectory: Trajectory, worker_id: int,
                           radius: float = 50.0, min_duration: float = 5.0,
                           service_time: float | None = None,
                           slack: float = 1.0) -> Worker:
    """Derive a multi-destination worker from a trip log.

    The first and last samples become origin and destination; interior
    stay points become mandatory travel tasks (service time defaults to
    each stay's observed duration); the observed trip times, inflated by
    ``slack``, become the worker's feasibility window.
    """
    if len(trajectory) < 2:
        raise ValueError("trajectory needs at least two samples")
    points = trajectory.points
    stays = detect_stay_points(trajectory, radius=radius,
                               min_duration=min_duration)

    # Drop stays that are the endpoints themselves (long dwell at the
    # depot before departure / after arrival).
    def near(a: Location, b: Location) -> bool:
        return a.distance_to(b) <= radius

    origin = points[0].location
    destination = points[-1].location
    interior = [s for s in stays
                if not near(s.location, origin) and not near(s.location, destination)]

    travel_tasks = tuple(
        TravelTask(worker_id * 1000 + k, stay.location,
                   service_time if service_time is not None else stay.duration)
        for k, stay in enumerate(interior)
    )
    departure = points[0].t
    arrival = points[-1].t
    latest = departure + (arrival - departure) * max(slack, 1.0)
    return Worker(worker_id, origin, destination, departure, latest,
                  travel_tasks)
