"""Dataset distribution statistics (paper Figure 4).

Figure 4 shows, per dataset, the distribution of the number of travel
tasks per trip and the number of workers per instance.  These helpers
compute the same histograms over generated instances so the benchmark
harness can print Figure 4's series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import USMDWInstance

__all__ = ["DistributionSummary", "travel_task_histogram",
           "worker_count_histogram", "summarize_dataset"]


@dataclass(frozen=True)
class DistributionSummary:
    """Histogram plus moments for one Figure-4 panel."""

    name: str
    values: np.ndarray
    bin_edges: np.ndarray
    counts: np.ndarray

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values))

    @property
    def min(self) -> float:
        return float(np.min(self.values))

    @property
    def max(self) -> float:
        return float(np.max(self.values))

    def rows(self) -> list[tuple[str, float]]:
        """(bin label, count) pairs for text rendering."""
        return [
            (f"[{self.bin_edges[i]:g}, {self.bin_edges[i + 1]:g})", float(c))
            for i, c in enumerate(self.counts)
        ]


def _histogram(name: str, values: list[float], bins: int) -> DistributionSummary:
    arr = np.asarray(values, dtype=np.float64)
    counts, edges = np.histogram(arr, bins=bins)
    return DistributionSummary(name, arr, edges, counts)


def travel_task_histogram(instances: list[USMDWInstance],
                          bins: int = 10) -> DistributionSummary:
    """Distribution of travel tasks per worker (Figure 4, top row)."""
    values = [float(w.num_travel_tasks)
              for inst in instances for w in inst.workers]
    return _histogram("travel_tasks_per_worker", values, bins)


def worker_count_histogram(instances: list[USMDWInstance],
                           bins: int = 10) -> DistributionSummary:
    """Distribution of workers per instance (Figure 4, bottom row)."""
    values = [float(inst.num_workers) for inst in instances]
    return _histogram("workers_per_instance", values, bins)


def summarize_dataset(instances: list[USMDWInstance]) -> dict[str, DistributionSummary]:
    """Both Figure-4 panels for one dataset."""
    return {
        "travel_tasks": travel_task_histogram(instances),
        "workers": worker_count_histogram(instances),
    }
