"""The "Tourism" dataset family (Flickr check-ins, Melbourne).

Paper setup: geo-tagged photo sequences over an 8 km x 8 km region,
10 x 10 grid, 6-hour sensing span, 20-minute POI stays.  Tourists visit a
handful of attractions drawn from a fixed set of hot spots (check-in data
concentrates on landmarks), starting and ending anywhere (hotels).
"""

from __future__ import annotations

import numpy as np

from ..core.geometry import Location, Region
from .synthetic import DatasetSpec, WorkerGenerator, uniform_point

__all__ = ["TOURISM_SPEC", "tourism_generator", "TOURISM_POIS"]

TOURISM_SPEC = DatasetSpec(
    name="tourism",
    region=Region(8000.0, 8000.0),
    grid_nx=10,
    grid_ny=10,
    time_span=360.0,
    travel_service_time=20.0,
    workers_per_instance=(4, 8),
    travel_tasks_per_worker=(2, 6),
    speed=60.0,
)


def _fixed_pois(num: int = 18, seed: int = 20240101) -> list[Location]:
    """A reproducible set of attraction hot spots inside the region."""
    rng = np.random.default_rng(seed)
    return [uniform_point(rng, TOURISM_SPEC.region) for _ in range(num)]


TOURISM_POIS: list[Location] = _fixed_pois()

_POI_JITTER = 80.0  # check-ins scatter around the attraction itself


def _tourism_locations(rng: np.random.Generator, region: Region,
                       count: int) -> list[Location]:
    chosen = rng.choice(len(TOURISM_POIS), size=min(count, len(TOURISM_POIS)),
                        replace=False)
    points = []
    for idx in chosen:
        poi = TOURISM_POIS[int(idx)]
        points.append(region.clamp(Location(
            rng.normal(poi.x, _POI_JITTER), rng.normal(poi.y, _POI_JITTER))))
    return points


def _tourism_endpoints(rng: np.random.Generator, region: Region,
                       _locations) -> tuple[Location, Location]:
    return uniform_point(rng, region), uniform_point(rng, region)


def tourism_generator() -> WorkerGenerator:
    """Worker generator calibrated to the Tourism dataset."""
    return WorkerGenerator(TOURISM_SPEC, _tourism_locations, _tourism_endpoints)
