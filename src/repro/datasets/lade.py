"""The "LaDe" dataset family (Cainiao Network last-mile delivery).

Paper setup: 6 months of last-mile trips (66k after preprocessing),
10 x 10 grid, 4-hour sensing span, 10-minute deliveries.  Structurally a
larger delivery dataset: multiple dispatch stations, couriers serving
station-local clusters; instance counts in the paper are two orders of
magnitude above Delivery (13k train instances), which we scale down while
keeping the per-instance shape.
"""

from __future__ import annotations

import numpy as np

from ..core.geometry import Location, Region
from .synthetic import DatasetSpec, WorkerGenerator, clustered_points

__all__ = ["LADE_SPEC", "lade_generator", "LADE_STATIONS"]

LADE_SPEC = DatasetSpec(
    name="lade",
    region=Region(5000.0, 5000.0),
    grid_nx=10,
    grid_ny=10,
    time_span=240.0,
    travel_service_time=10.0,
    workers_per_instance=(5, 9),
    travel_tasks_per_worker=(2, 8),
    speed=60.0,
)


def _fixed_stations(num: int = 4, seed: int = 20240202) -> list[Location]:
    rng = np.random.default_rng(seed)
    return [
        Location(rng.uniform(500, LADE_SPEC.region.width - 500),
                 rng.uniform(500, LADE_SPEC.region.height - 500))
        for _ in range(num)
    ]


LADE_STATIONS: list[Location] = _fixed_stations()

_STATION_JITTER = 150.0
_CLUSTER_SPREAD = 450.0


def _lade_locations(rng: np.random.Generator, region: Region,
                    count: int) -> list[Location]:
    station = LADE_STATIONS[int(rng.integers(0, len(LADE_STATIONS)))]
    # Cluster center within dispatch distance of the station.
    center = region.clamp(Location(
        rng.normal(station.x, 800.0), rng.normal(station.y, 800.0)))
    return clustered_points(rng, region, center, count, _CLUSTER_SPREAD)


def _lade_endpoints(rng: np.random.Generator, region: Region,
                    locations) -> tuple[Location, Location]:
    # Start/end near the station closest to the trip's parcels.
    if locations:
        cx = float(np.mean([p.x for p in locations]))
        cy = float(np.mean([p.y for p in locations]))
        anchor = min(LADE_STATIONS,
                     key=lambda s: (s.x - cx) ** 2 + (s.y - cy) ** 2)
    else:
        anchor = LADE_STATIONS[int(rng.integers(0, len(LADE_STATIONS)))]

    def near_station() -> Location:
        return region.clamp(Location(
            rng.normal(anchor.x, _STATION_JITTER),
            rng.normal(anchor.y, _STATION_JITTER)))
    return near_station(), near_station()


def lade_generator() -> WorkerGenerator:
    """Worker generator calibrated to the LaDe dataset."""
    return WorkerGenerator(LADE_SPEC, _lade_locations, _lade_endpoints)
