"""Partition -> solve -> merge for city-scale instances.

:func:`solve_sharded` runs the divide-and-conquer pipeline:

1. **Partition** the instance spatially (:mod:`repro.shard.partition`)
   and split the budget across non-empty shards in proportion to their
   worker counts (the last share absorbs rounding so shares sum exactly
   to the instance budget).
2. **Solve** each shard as its own USMDW sub-problem — serially through
   the caller's solver, or fanned out over a
   :class:`~repro.parallel.PersistentPool` whose resident workers read
   the shard's packed arrays zero-copy from shared memory.
3. **Merge**: shard worker sets are disjoint, so routes and incentives
   union without translation; then a **boundary-repair** pass sweeps the
   unassigned boundary tasks (the ones a spatial split treats worst)
   against *every* worker's current route with the batched insertion
   kernels, greedily applying the best coverage-per-incentive insertions
   until the leftover budget is exhausted.  The merged solution observes
   exactly the invariants of an unsharded solve — feasible routes, no
   task served twice, Definition-6 incentives, total spend within the
   one global budget — checkable via
   :meth:`repro.core.solution.Solution.validate`.

Per-shard solves bind their *own* packed sub-instance, so candidate
sweeps run over shard-width rows: at P shards both the O(|W| x |S|)
init sweep and every per-step table scan shrink by ~P, which is where
the wall-time scaling comes from even on one core.

With ``shards=1`` the call delegates directly to ``solver.solve`` and
the output is bit-identical to the unsharded path.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..core.incentive import IncentiveModel
from ..core.instance import USMDWInstance
from ..core.packed import PackedInstance
from ..core.perf import PerfCounters
from ..core.route import WorkingRoute
from ..core.solution import Solution
from ..parallel import PersistentPool, derive_seeds, shared_arrays
from ..tsptw.insertion import InsertionSolver
from .partition import ShardPlan, partition_instance, sub_instance

__all__ = ["ShardReport", "solve_sharded"]

#: Ratio floor for the repair score gain/delta (a zero-cost insertion is
#: strictly best at equal gain).
_EPS = 1e-9


@dataclass
class ShardReport:
    """Accounting of one sharded solve, attached as ``solution.shard_report``."""

    num_shards: int
    method: str
    margin: float
    shard_tasks: tuple[int, ...] = ()
    shard_workers: tuple[int, ...] = ()
    budget_shares: tuple[float, ...] = ()
    boundary_tasks: int = 0
    used_pool: bool = False
    phi_shards: tuple[float, ...] = ()
    phi_before_repair: float = 0.0
    phi_after_repair: float = 0.0
    repair_candidates: int = 0
    repair_added: int = 0
    repair_spent: float = 0.0
    wall_partition: float = 0.0
    wall_solve: float = 0.0
    wall_repair: float = 0.0

    def to_dict(self) -> dict:
        return {
            "num_shards": self.num_shards,
            "method": self.method,
            "margin": self.margin,
            "shard_tasks": list(self.shard_tasks),
            "shard_workers": list(self.shard_workers),
            "budget_shares": list(self.budget_shares),
            "boundary_tasks": self.boundary_tasks,
            "used_pool": self.used_pool,
            "phi_shards": list(self.phi_shards),
            "phi_before_repair": self.phi_before_repair,
            "phi_after_repair": self.phi_after_repair,
            "repair_candidates": self.repair_candidates,
            "repair_added": self.repair_added,
            "repair_spent": self.repair_spent,
            "wall_partition": self.wall_partition,
            "wall_solve": self.wall_solve,
            "wall_repair": self.wall_repair,
        }


# ---------------------------------------------------------------------- #
# Per-shard solving (serial + pool payload)
# ---------------------------------------------------------------------- #
def _shard_seeds(rng, greedy: bool, num_samples: int, count: int) -> list:
    """One derived seed per shard, or all-None for pure greedy decoding.

    The root is drawn once off the caller's rng, so the schedule — and
    therefore the merged solution — is identical whether shards solve
    serially or across a pool, mirroring ``SMORESolver._rollout_plan``.
    """
    if rng is None and greedy and num_samples == 1:
        return [None] * count
    rng = rng or np.random.default_rng()
    root = int(rng.integers(0, 2**63 - 1))
    return list(derive_seeds(root, count))


def _solve_one_local(solver, sub: USMDWInstance, seed, greedy: bool,
                     num_samples: int):
    rng = None if seed is None else np.random.default_rng(seed)
    solution = solver.solve(sub, greedy=greedy, rng=rng,
                            num_samples=num_samples)
    return (solution.routes, solution.incentives, solution.perf,
            solution.objective)


def _portable_policy(policy):
    """A copy of the policy safe to ship to a pool worker.

    ``begin_episode`` re-binds ``_instance`` on arrival, so the parent's
    binding is dropped rather than pickling a whole instance per shard.
    """
    import copy

    clone = copy.copy(policy)
    if hasattr(clone, "__dict__"):
        clone.__dict__.pop("_instance", None)
    return clone


def _solve_shard_worker(payload):
    """Pool-side shard solve (module-level: picklable to a started pool).

    When the parent shared the shard's packed arrays, the worker attaches
    them zero-copy (:func:`repro.parallel.shared_arrays`) and rebuilds
    the :class:`PackedInstance` view around them; distances are the same
    ``math.hypot`` over the same floats, so results are bit-identical to
    a local solve.
    """
    (sub, greedy, seed, num_samples, shared_key, planner_cfg, policy,
     name) = payload
    from ..smore.solver import SMORESolver

    if shared_key is not None:
        arrays = shared_arrays(shared_key)
        if arrays is not None:
            packed = PackedInstance.from_arrays(sub.workers, arrays)
            object.__setattr__(sub, "_packed", packed)
    planner = InsertionSolver(**planner_cfg)
    solver = SMORESolver(planner, policy, name=name)
    rng = None if seed is None else np.random.default_rng(seed)
    solution = solver.solve(sub, greedy=greedy, rng=rng,
                            num_samples=num_samples)
    return (solution.routes, solution.incentives, solution.perf,
            solution.objective)


def _pool_solve(pool: PersistentPool, solver, subs: list[USMDWInstance],
                seeds: list, greedy: bool, num_samples: int):
    """Fan the shard solves out over a persistent pool, or None.

    Returns None — falling back to the serial path — when the solver's
    planner or policy cannot be reconstructed in a worker (only
    :class:`InsertionSolver` planners and picklable policies ship).
    """
    planner = solver.planner
    if type(planner) is not InsertionSolver:
        return None
    planner_cfg = dict(speed=planner.speed,
                       improvement_rounds=planner.improvement_rounds,
                       use_two_opt=planner.use_two_opt,
                       use_kernels=planner.use_kernels)
    policy = _portable_policy(solver.policy)
    payloads = []
    for i, (sub, seed) in enumerate(zip(subs, seeds)):
        key = f"shard:{sub.name}"
        packed = PackedInstance(sub.workers, sub.sensing_tasks)
        shared = pool.share_arrays(key, packed.export_arrays())
        payloads.append((sub, greedy, seed, num_samples,
                         key if shared else None, planner_cfg, policy,
                         solver.name))
    try:
        pickle.dumps(payloads)
    except Exception:
        return None
    try:
        return pool.map(_solve_shard_worker, payloads)
    except TypeError:
        return None


# ---------------------------------------------------------------------- #
# Boundary repair
# ---------------------------------------------------------------------- #
def _boundary_repair(instance: USMDWInstance, planner_cfg: dict,
                     plan: ShardPlan, routes: dict, incentives: dict):
    """Cross-shard insertion sweeps over the unassigned boundary tasks.

    Every worker — recruited or not, from any shard — is swept against
    the boundary pool with the batched insertion kernels
    (:meth:`InsertionSolver.plan_insertions_many`, running
    :func:`repro.tsptw.kernels.sweep_insertions` underneath), then the
    best coverage-gain-per-incentive insertions apply greedily until no
    feasible candidate fits the leftover global budget.  Gains are
    re-read from the live merged coverage state at every pick, and only
    the changed worker is re-swept (other workers' routes — and hence
    their candidate positions and rtts — are untouched), so the loop
    stays O(picks x pool) after the initial sweep.

    Incentives are maintained against Definition 6 exactly (the sweep's
    rtt is bit-identical to the merged route's simulation), so the
    repaired solution still passes ``Solution.validate``.
    """
    planner = InsertionSolver(**planner_cfg)
    model = IncentiveModel(mu=instance.mu)
    workers = {w.worker_id: w for w in instance.workers}

    assigned = {t.task_id for route in routes.values()
                for t in route.sensing_tasks}
    pool_by_id = {
        tid: instance.sensing_task(tid)
        for tid in plan.boundary_task_ids() if tid not in assigned
    }
    stats = {"candidates": 0, "added": 0, "spent": 0.0}
    if not pool_by_id:
        return stats

    order: dict[int, tuple] = {}
    cur_inc: dict[int, float] = {}
    for wid, worker in workers.items():
        base = planner.plan(worker, [])
        if not base.feasible:
            continue
        model.set_base_rtt(worker, base.route_travel_time)
        if wid in routes:
            order[wid] = tuple(routes[wid].tasks)
            cur_inc[wid] = incentives.get(wid, 0.0)
        else:
            order[wid] = tuple(base.route.tasks)
            cur_inc[wid] = 0.0

    state = instance.coverage.new_state()
    for route in routes.values():
        for task in route.sensing_tasks:
            state.add(task)
    remaining = instance.budget - sum(incentives.values())

    def sweep(wid: int) -> dict:
        tasks = list(pool_by_id.values())
        if not tasks:
            return {}
        row = {}
        results = planner.plan_insertions_many(workers[wid], order[wid],
                                               tasks)
        for task, result in zip(tasks, results):
            if result.feasible:
                row[task.task_id] = (task, result.pos,
                                     result.route_travel_time)
        return row

    with obs.span("shard.repair", pool=len(pool_by_id)):
        cand = {wid: sweep(wid) for wid in order}
        stats["candidates"] = sum(len(row) for row in cand.values())
        touched: set[int] = set()
        while True:
            best = None
            best_key = None
            for wid, row in cand.items():
                worker = workers[wid]
                for tid, (task, pos, rtt_new) in row.items():
                    inc_new = model.incentive(worker, rtt_new)
                    delta = inc_new - cur_inc[wid]
                    if delta > remaining + 1e-9:
                        continue
                    gain = state.gain(task)
                    if gain <= 0.0:
                        continue
                    key = (-gain / max(delta, _EPS), delta, tid, wid)
                    if best_key is None or key < best_key:
                        best_key = key
                        best = (wid, tid, task, pos, rtt_new, inc_new)
            if best is None:
                break
            wid, tid, task, pos, rtt_new, inc_new = best
            order[wid] = order[wid][:pos] + (task,) + order[wid][pos:]
            remaining -= inc_new - cur_inc[wid]
            stats["spent"] += inc_new - cur_inc[wid]
            cur_inc[wid] = inc_new
            state.add(task)
            del pool_by_id[tid]
            for row in cand.values():
                row.pop(tid, None)
            cand[wid] = sweep(wid)
            touched.add(wid)
            stats["added"] += 1

        for wid in touched:
            routes[wid] = WorkingRoute(workers[wid], order[wid],
                                       speed=planner.speed)
            incentives[wid] = cur_inc[wid]
    obs.count("shard.repair_added", stats["added"])
    return stats


# ---------------------------------------------------------------------- #
# The pipeline
# ---------------------------------------------------------------------- #
def solve_sharded(solver, instance: USMDWInstance, shards: int,
                  method: str = "grid", margin: float | None = None,
                  pool: PersistentPool | None = None, greedy: bool = True,
                  rng: np.random.Generator | None = None,
                  num_samples: int = 1, repair: bool = True) -> Solution:
    """Solve ``instance`` via spatial sharding; see the module docstring.

    ``shards=1`` delegates straight to ``solver.solve`` (bit-identical
    output).  ``pool`` optionally fans the shard solves out over a
    :class:`~repro.parallel.PersistentPool`; without one (or when the
    solver cannot ship to a worker) shards solve serially in-process,
    which still captures the divide-and-conquer savings.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards == 1:
        solution = solver.solve(instance, greedy=greedy, rng=rng,
                                num_samples=num_samples)
        solution.shard_report = ShardReport(
            num_shards=1, method=method, margin=0.0,
            shard_tasks=(instance.num_sensing_tasks,),
            shard_workers=(instance.num_workers,),
            budget_shares=(instance.budget,),
            phi_shards=(solution.objective,),
            phi_before_repair=solution.objective,
            phi_after_repair=solution.objective,
            wall_solve=solution.wall_time)
        return solution

    start = time.perf_counter()
    with obs.span("solve_sharded", shards=shards, method=method,
                  workers=instance.num_workers,
                  tasks=instance.num_sensing_tasks):
        t0 = time.perf_counter()
        plan = partition_instance(instance, shards, method=method,
                                  margin=margin)
        wall_partition = time.perf_counter() - t0

        active = [s for s in plan.shards if s.num_workers and s.num_tasks]
        shares: dict[int, float] = {}
        if active:
            total_workers = sum(s.num_workers for s in active)
            acc = 0.0
            for s in active[:-1]:
                share = instance.budget * s.num_workers / total_workers
                shares[s.index] = share
                acc += share
            shares[active[-1].index] = instance.budget - acc
        subs = [sub_instance(instance, s, shares[s.index]) for s in active]
        seeds = _shard_seeds(rng, greedy, num_samples, len(subs))

        t0 = time.perf_counter()
        results = None
        used_pool = False
        if pool is not None and subs:
            results = _pool_solve(pool, solver, subs, seeds, greedy,
                                  num_samples)
            used_pool = results is not None
        if results is None:
            results = [_solve_one_local(solver, sub, seed, greedy,
                                        num_samples)
                       for sub, seed in zip(subs, seeds)]
        wall_solve = time.perf_counter() - t0

        routes: dict[int, WorkingRoute] = {}
        incentives: dict[int, float] = {}
        perf = PerfCounters()
        phi_shards = []
        for shard_routes, shard_inc, shard_perf, shard_phi in results:
            routes.update(shard_routes)
            incentives.update(shard_inc)
            if shard_perf is not None:
                perf.merge(shard_perf)
            phi_shards.append(shard_phi)

        phi_before = instance.coverage.phi(
            [t for route in routes.values() for t in route.sensing_tasks])

        planner = solver.planner
        if type(planner) is InsertionSolver:
            planner_cfg = dict(speed=planner.speed,
                               improvement_rounds=planner.improvement_rounds,
                               use_two_opt=planner.use_two_opt,
                               use_kernels=planner.use_kernels)
        else:
            planner_cfg = None

        t0 = time.perf_counter()
        stats = {"candidates": 0, "added": 0, "spent": 0.0}
        if repair and planner_cfg is not None:
            stats = _boundary_repair(instance, planner_cfg, plan, routes,
                                     incentives)
        wall_repair = time.perf_counter() - t0

        phi_after = instance.coverage.phi(
            [t for route in routes.values() for t in route.sensing_tasks])
        elapsed = time.perf_counter() - start
        obs.gauge("shard.count", len(active))
        obs.gauge("shard.boundary_tasks", len(plan.boundary_task_ids()))
        obs.event("solve_sharded.done", shards=shards, method=method,
                  used_pool=used_pool, phi_before=round(phi_before, 6),
                  phi_after=round(phi_after, 6),
                  repair_added=stats["added"],
                  wall_time=round(elapsed, 6))

    solution = Solution(
        instance=instance,
        routes=routes,
        incentives=incentives,
        solver_name=solver.name,
        wall_time=elapsed,
        perf=perf,
    )
    solution.shard_report = ShardReport(
        num_shards=shards, method=method, margin=plan.margin,
        shard_tasks=tuple(s.num_tasks for s in plan.shards),
        shard_workers=tuple(s.num_workers for s in plan.shards),
        budget_shares=tuple(shares.get(s.index, 0.0) for s in plan.shards),
        boundary_tasks=len(plan.boundary_task_ids()),
        used_pool=used_pool,
        phi_shards=tuple(phi_shards),
        phi_before_repair=phi_before,
        phi_after_repair=phi_after,
        repair_candidates=stats["candidates"],
        repair_added=stats["added"],
        repair_spent=stats["spent"],
        wall_partition=wall_partition,
        wall_solve=wall_solve,
        wall_repair=wall_repair,
    )
    return solution
