"""City-scale sharding: spatial partition -> per-shard solve -> merge.

See :mod:`repro.shard.partition` for the grid / k-d partitioners and
:mod:`repro.shard.solve` for the solve-and-merge pipeline with
boundary repair.  Entry points: :func:`partition_instance` and
:func:`solve_sharded` (also reachable as ``SMORESolver.solve(shards=P)``
and ``python -m repro.experiments shard``).
"""

from .partition import (
    Shard,
    ShardPlan,
    default_margin,
    partition_instance,
    sub_instance,
)
from .solve import ShardReport, solve_sharded

__all__ = [
    "Shard",
    "ShardPlan",
    "ShardReport",
    "default_margin",
    "partition_instance",
    "solve_sharded",
    "sub_instance",
]
