"""Spatial partitioning of a USMDW instance into shards.

City-scale divide-and-conquer starts here: the sensing region is split
into ``P`` axis-aligned rectangles (a near-square grid or a recursive
k-d split balancing task counts), every sensing task is assigned to
exactly one shard by location, and every worker to exactly one shard by
the centroid of their trip (origin, travel tasks, destination).  Shard
rectangles tile the region exactly — interior edges are half-open and
cut coordinates are shared between neighbours, so membership is a
partition by construction, not by epsilon.

Each pair of edge-adjacent shards additionally carries a symmetric
*boundary set*: the sensing tasks within ``margin`` meters of the shared
border segment.  These are the tasks a spatial split treats worst (a
worker just across the border may serve them cheaply), and they are
exactly what the cross-shard repair pass of :mod:`repro.shard.solve`
revisits after the per-shard solves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.entities import Worker
from ..core.geometry import Location, Region
from ..core.instance import USMDWInstance

__all__ = ["Shard", "ShardPlan", "partition_instance", "sub_instance",
           "default_margin"]

#: (x0, y0, x1, y1) rectangle; interior edges half-open, region-border
#: edges closed.
Bounds = tuple[float, float, float, float]


def default_margin(region: Region, num_shards: int) -> float:
    """Boundary band width: 10% of the side of an average shard.

    Wide enough that a worker one cell across the border still sees the
    tasks it could serve cheaply, narrow enough that the repair sweep
    stays a small fraction of a shard solve.
    """
    return 0.1 * math.sqrt(region.area / max(1, num_shards))


@dataclass(frozen=True)
class Shard:
    """One spatial shard: its rectangle plus its task/worker membership."""

    index: int
    bounds: Bounds
    task_ids: tuple[int, ...]
    worker_ids: tuple[int, ...]

    @property
    def num_tasks(self) -> int:
        return len(self.task_ids)

    @property
    def num_workers(self) -> int:
        return len(self.worker_ids)


@dataclass(frozen=True)
class ShardPlan:
    """The partition of one instance: shards plus symmetric boundary sets.

    ``boundary`` is keyed by the normalised pair ``(a, b)`` with
    ``a < b``; :meth:`boundary_between` accepts either orientation, so
    the boundary relation is symmetric by construction.
    """

    instance: USMDWInstance
    method: str
    margin: float
    shards: tuple[Shard, ...]
    boundary: dict[tuple[int, int], tuple[int, ...]]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def boundary_between(self, a: int, b: int) -> tuple[int, ...]:
        """Boundary tasks of the (a, b) border; orientation-free."""
        if a == b:
            return ()
        return self.boundary.get((min(a, b), max(a, b)), ())

    def boundary_task_ids(self) -> tuple[int, ...]:
        """All boundary task ids, deduplicated, in sorted order."""
        seen: set[int] = set()
        for ids in self.boundary.values():
            seen.update(ids)
        return tuple(sorted(seen))

    def shard_of_task(self) -> dict[int, int]:
        return {tid: s.index for s in self.shards for tid in s.task_ids}

    def shard_of_worker(self) -> dict[int, int]:
        return {wid: s.index for s in self.shards for wid in s.worker_ids}

    # ------------------------------------------------------------------ #
    def validate(self) -> list[str]:
        """Check the partition invariants; return a list of violations.

        Verified: every sensing task and every worker lands in exactly
        one shard (union equals the instance's sets, no duplicates),
        boundary keys are normalised pairs of distinct valid shards, and
        every boundary task belongs to one of its pair's shards and lies
        within ``margin`` of the pair's shared border segment.
        """
        problems: list[str] = []
        task_owner: dict[int, int] = {}
        worker_owner: dict[int, int] = {}
        for shard in self.shards:
            for tid in shard.task_ids:
                if tid in task_owner:
                    problems.append(
                        f"task {tid} in shards {task_owner[tid]} and "
                        f"{shard.index}")
                task_owner[tid] = shard.index
            for wid in shard.worker_ids:
                if wid in worker_owner:
                    problems.append(
                        f"worker {wid} in shards {worker_owner[wid]} and "
                        f"{shard.index}")
                worker_owner[wid] = shard.index
        instance_tasks = {t.task_id for t in self.instance.sensing_tasks}
        instance_workers = {w.worker_id for w in self.instance.workers}
        if set(task_owner) != instance_tasks:
            missing = sorted(instance_tasks - set(task_owner))[:5]
            extra = sorted(set(task_owner) - instance_tasks)[:5]
            problems.append(f"task membership mismatch: missing={missing} "
                            f"extra={extra}")
        if set(worker_owner) != instance_workers:
            problems.append("worker membership mismatch")
        for (a, b), ids in self.boundary.items():
            if not (0 <= a < b < len(self.shards)):
                problems.append(f"boundary key ({a}, {b}) not a normalised "
                                "pair of distinct shards")
                continue
            segment = _shared_segment(self.shards[a].bounds,
                                      self.shards[b].bounds)
            if segment is None:
                problems.append(f"boundary pair ({a}, {b}) shares no border")
                continue
            members = set(self.shards[a].task_ids) | set(self.shards[b].task_ids)
            for tid in ids:
                if tid not in members:
                    problems.append(f"boundary task {tid} outside shards "
                                    f"{a}/{b}")
                    continue
                loc = self.instance.sensing_task(tid).location
                if _segment_distance(loc, segment) > self.margin + 1e-9:
                    problems.append(f"boundary task {tid} farther than "
                                    f"margin from the ({a}, {b}) border")
        return problems


# ---------------------------------------------------------------------- #
# Geometry helpers
# ---------------------------------------------------------------------- #
def _contains(bounds: Bounds, region: Region, x: float, y: float) -> bool:
    """Half-open membership, closed at the region's right/top border."""
    x0, y0, x1, y1 = bounds
    in_x = x0 <= x < x1 or (x1 >= region.width and x == x1)
    in_y = y0 <= y < y1 or (y1 >= region.height and y == y1)
    return in_x and in_y


def _locate(bounds_list: list[Bounds], region: Region,
            x: float, y: float) -> int:
    for k, bounds in enumerate(bounds_list):
        if _contains(bounds, region, x, y):
            return k
    raise ValueError(f"point ({x}, {y}) outside every shard rectangle")


#: A shared border segment: ("v", x, y_lo, y_hi) or ("h", y, x_lo, x_hi).
Segment = tuple[str, float, float, float]


def _shared_segment(a: Bounds, b: Bounds) -> Segment | None:
    """The border segment two rectangles share, or None.

    Cut coordinates are shared floats between neighbours, so exact
    equality is the correct adjacency test; corner-touching rectangles
    (zero-length overlap) are not adjacent.
    """
    ax0, ay0, ax1, ay1 = a
    bx0, by0, bx1, by1 = b
    for x in (ax1,) if ax1 == bx0 else (ax0,) if ax0 == bx1 else ():
        lo, hi = max(ay0, by0), min(ay1, by1)
        if hi > lo:
            return ("v", x, lo, hi)
    for y in (ay1,) if ay1 == by0 else (ay0,) if ay0 == by1 else ():
        lo, hi = max(ax0, bx0), min(ax1, bx1)
        if hi > lo:
            return ("h", y, lo, hi)
    return None


def _segment_distance(loc: Location, segment: Segment) -> float:
    kind, c, lo, hi = segment
    if kind == "v":
        along, across = loc.y, loc.x - c
    else:
        along, across = loc.x, loc.y - c
    overshoot = max(lo - along, along - hi, 0.0)
    return math.hypot(across, overshoot)


def _worker_centroid(worker: Worker) -> tuple[float, float]:
    locs = worker.all_locations()
    return (sum(l.x for l in locs) / len(locs),
            sum(l.y for l in locs) / len(locs))


# ---------------------------------------------------------------------- #
# Rectangle layouts
# ---------------------------------------------------------------------- #
def _grid_bounds(region: Region, num_shards: int) -> list[Bounds]:
    """A near-square nx x ny tiling with nx * ny == num_shards.

    Among the factor pairs the one minimising cell-aspect distortion
    wins, so a 2:2.4 region splits 2x2 at P=4 rather than 4x1.
    """
    best = None
    for nx in range(1, num_shards + 1):
        if num_shards % nx:
            continue
        ny = num_shards // nx
        aspect = abs(math.log((region.width / nx) / (region.height / ny)))
        if best is None or aspect < best[0]:
            best = (aspect, nx, ny)
    _, nx, ny = best
    x_edges = [region.width * i / nx for i in range(nx + 1)]
    y_edges = [region.height * j / ny for j in range(ny + 1)]
    return [(x_edges[i], y_edges[j], x_edges[i + 1], y_edges[j + 1])
            for i in range(nx) for j in range(ny)]


def _kd_bounds(points: list[tuple[float, float]], bounds: Bounds,
               parts: int) -> list[Bounds]:
    """Recursive k-d split balancing task counts between the halves.

    The cut is the spatial midpoint between the two tasks straddling the
    target count along the longer axis (the midpoint of the rectangle
    when too few tasks constrain it), clamped strictly inside so no slab
    degenerates.  Left and right children reuse the exact cut float, so
    the rectangles tile without gaps.
    """
    if parts <= 1:
        return [bounds]
    x0, y0, x1, y1 = bounds
    axis = 0 if (x1 - x0) >= (y1 - y0) else 1
    lo, hi = (x0, x1) if axis == 0 else (y0, y1)
    left_parts = parts // 2
    coords = sorted(p[axis] for p in points)
    cut = 0.5 * (lo + hi)
    if len(coords) >= 2:
        k = round(len(coords) * left_parts / parts)
        k = max(1, min(len(coords) - 1, k))
        candidate = 0.5 * (coords[k - 1] + coords[k])
        if lo < candidate < hi:
            cut = candidate
    left_pts = [p for p in points if p[axis] < cut]
    right_pts = [p for p in points if p[axis] >= cut]
    if axis == 0:
        left_b: Bounds = (x0, y0, cut, y1)
        right_b: Bounds = (cut, y0, x1, y1)
    else:
        left_b = (x0, y0, x1, cut)
        right_b = (x0, cut, x1, y1)
    return (_kd_bounds(left_pts, left_b, left_parts)
            + _kd_bounds(right_pts, right_b, parts - left_parts))


# ---------------------------------------------------------------------- #
# Public API
# ---------------------------------------------------------------------- #
def partition_instance(instance: USMDWInstance, num_shards: int,
                       method: str = "grid",
                       margin: float | None = None) -> ShardPlan:
    """Partition an instance into ``num_shards`` spatial shards.

    ``method`` is ``"grid"`` (near-square uniform tiling) or ``"kd"``
    (recursive task-count-balanced splits).  ``margin`` is the boundary
    band width in meters (:func:`default_margin` when None).
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    region = instance.coverage.grid.region
    if margin is None:
        margin = default_margin(region, num_shards)

    if method == "grid":
        bounds_list = _grid_bounds(region, num_shards)
    elif method == "kd":
        points = [(t.location.x, t.location.y)
                  for t in instance.sensing_tasks]
        bounds_list = _kd_bounds(points, (0.0, 0.0, region.width,
                                          region.height), num_shards)
    else:
        raise ValueError(f"unknown partition method {method!r}; "
                         "choose 'grid' or 'kd'")

    task_members: list[list[int]] = [[] for _ in bounds_list]
    for task in instance.sensing_tasks:
        k = _locate(bounds_list, region, task.location.x, task.location.y)
        task_members[k].append(task.task_id)
    worker_members: list[list[int]] = [[] for _ in bounds_list]
    for worker in instance.workers:
        cx, cy = _worker_centroid(worker)
        cx = min(max(cx, 0.0), region.width)
        cy = min(max(cy, 0.0), region.height)
        worker_members[k := _locate(bounds_list, region, cx, cy)].append(
            worker.worker_id)

    shards = tuple(
        Shard(index=k, bounds=bounds_list[k],
              task_ids=tuple(task_members[k]),
              worker_ids=tuple(worker_members[k]))
        for k in range(len(bounds_list)))

    boundary: dict[tuple[int, int], tuple[int, ...]] = {}
    for a in range(len(shards)):
        for b in range(a + 1, len(shards)):
            segment = _shared_segment(shards[a].bounds, shards[b].bounds)
            if segment is None:
                continue
            near = [
                tid for tid in shards[a].task_ids + shards[b].task_ids
                if _segment_distance(
                    instance.sensing_task(tid).location, segment) <= margin
            ]
            if near:
                boundary[(a, b)] = tuple(sorted(near))

    return ShardPlan(instance=instance, method=method, margin=margin,
                     shards=shards, boundary=boundary)


def sub_instance(instance: USMDWInstance, shard: Shard,
                 budget: float) -> USMDWInstance:
    """The shard's own USMDW sub-problem with its budget share.

    Workers and tasks are the *same objects* as the parent instance's
    (fork-pool children share them copy-on-write; route/incentive merges
    need no id translation), and the coverage model is shared so shard
    phi values are comparable with the global objective.
    """
    return USMDWInstance(
        workers=tuple(instance.worker(wid) for wid in shard.worker_ids),
        sensing_tasks=tuple(instance.sensing_task(tid)
                            for tid in shard.task_ids),
        budget=budget,
        mu=instance.mu,
        coverage=instance.coverage,
        speed=instance.speed,
        name=f"{instance.name}/shard{shard.index}",
    )
