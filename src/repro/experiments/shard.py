"""Shard-count scaling sweep on city-scale instances (ISSUE 10).

``python -m repro.experiments shard`` builds one city-scale synthetic
instance (:func:`repro.datasets.synthetic.make_city_instance`), solves it
at each requested shard count on one shared
:class:`~repro.parallel.PersistentPool`, and reports the scaling curve:
wall time and speedup vs the P=1 solve, plus the coverage delta that
the spatial decomposition costs.
"""

from __future__ import annotations

import time

from ..datasets.synthetic import make_city_instance
from ..parallel import PersistentPool
from ..shard import solve_sharded
from ..smore.solver import GreedySelectionRule, SMORESolver
from ..tsptw.insertion import InsertionSolver

__all__ = ["shard_scaling", "render_shard_scaling"]


def shard_scaling(num_tasks: int = 2_000, num_workers: int = 200,
                  budget: float = 600.0, seed: int = 1,
                  shard_counts: tuple[int, ...] = (1, 2, 4),
                  method: str = "grid",
                  pool_workers: int | None = None) -> dict:
    """Solve one city instance at each shard count; return the curve.

    Every entry records wall time, coverage, spend and the shard
    report's phase breakdown; ``speedup`` is vs the slowest requested
    shard count's wall time at P=1 (or the first entry when P=1 is not
    requested).
    """
    instance = make_city_instance(num_tasks=num_tasks,
                                  num_workers=num_workers,
                                  seed=seed, budget=budget)
    solver = SMORESolver(InsertionSolver(speed=instance.speed),
                         GreedySelectionRule())
    rows = []
    with PersistentPool(workers=pool_workers) as pool:
        for num_shards in shard_counts:
            start = time.perf_counter()
            solution = solve_sharded(solver, instance, num_shards,
                                     method=method, pool=pool)
            wall = time.perf_counter() - start
            report = solution.shard_report
            rows.append({
                "shards": num_shards,
                "wall_time": wall,
                "phi": solution.objective,
                "completed": solution.num_completed,
                "spent": solution.total_incentive,
                "used_pool": report.used_pool,
                "boundary_tasks": report.boundary_tasks,
                "repair_added": report.repair_added,
                "wall_solve": report.wall_solve,
                "wall_repair": report.wall_repair,
            })
    baseline = next((r for r in rows if r["shards"] == 1), rows[0])
    for row in rows:
        row["speedup"] = baseline["wall_time"] / max(row["wall_time"], 1e-9)
        row["phi_delta"] = (baseline["phi"] - row["phi"]) \
            / max(baseline["phi"], 1e-12)
    return {
        "instance": instance.describe(),
        "num_tasks": num_tasks,
        "num_workers": num_workers,
        "budget": budget,
        "seed": seed,
        "method": method,
        "rows": rows,
    }


def render_shard_scaling(results: dict) -> str:
    lines = [
        "Shard scaling — partition / solve / merge "
        f"({results['method']} split)",
        "=" * 72,
        results["instance"],
        "",
        f"{'P':>3} {'wall(s)':>9} {'speedup':>8} {'phi':>9} "
        f"{'phi gap':>8} {'done':>6} {'spent':>9} {'bnd':>5} "
        f"{'repair':>6} {'pool':>5}",
    ]
    for row in results["rows"]:
        lines.append(
            f"{row['shards']:>3} {row['wall_time']:>9.2f} "
            f"{row['speedup']:>7.2f}x {row['phi']:>9.3f} "
            f"{row['phi_delta']:>7.2%} {row['completed']:>6} "
            f"{row['spent']:>9.1f} {row['boundary_tasks']:>5} "
            f"{row['repair_added']:>6} "
            f"{'yes' if row['used_pool'] else 'no':>5}")
    return "\n".join(lines)
