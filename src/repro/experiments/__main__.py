"""Command-line entry point for regenerating the paper's tables and figures.

Usage::

    python -m repro.experiments table1 [--full] [--datasets delivery,tourism]
    python -m repro.experiments table2 [--json out.json]
    python -m repro.experiments table3
    python -m repro.experiments figure4
    python -m repro.experiments figure5
    python -m repro.experiments figure6 [--dataset delivery]
    python -m repro.experiments train --dataset tourism   # warm the cache

Any invocation accepts ``--trace out.jsonl``: the whole run executes
under a live :mod:`repro.obs` tracer, the JSONL event trace is written to
the given path, and a per-method span-summary table is appended to the
report output.  ``--profile out.jsonl`` additionally runs under the
op-level autograd profiler (:mod:`repro.obs.profile`) and appends the
per-op summary table; the two flags compose.
"""

from __future__ import annotations

import argparse

from .. import obs
from ..datasets import (
    DATASET_NAMES,
    generate_instances,
    summarize_dataset,
)
from .ablation import figure5_ablation, render_figure5
from .case_study import render_case_study, run_case_study
from .pretrained import get_trained_policy
from .reporting import render_grid, render_perf, render_spans
from .runner import FAST_PROFILE, FULL_PROFILE, ExperimentRunner
from .tables import table1_time_window, table2_budget, table3_alpha


def _figure4(runner: ExperimentRunner, datasets) -> str:
    lines = ["Figure 4 — Data Distributions", "=" * 40]
    for dataset in datasets:
        instances = generate_instances(dataset, 20, seed=runner.seed,
                                       options=runner.profile.options())
        summary = summarize_dataset(instances)
        lines.append(f"\n[{dataset}]")
        for panel, dist in summary.items():
            lines.append(f"  {panel}: mean={dist.mean:.2f} std={dist.std:.2f} "
                         f"min={dist.min:g} max={dist.max:g}")
            for label, count in dist.rows():
                bar = "#" * int(count)
                lines.append(f"    {label:<14} {bar}")
    return "\n".join(lines)


def _figure6(runner: ExperimentRunner, dataset: str,
             svg_path: str | None = None) -> str:
    instance = runner.test_instances(dataset)[0]
    policy = get_trained_policy(dataset, spec=runner.profile.pretrain,
                                cache_dir=runner.cache_dir)
    result = run_case_study(instance, policy)
    if svg_path:
        from .svg import render_solution_svg

        with open(svg_path, "w") as handle:
            handle.write(render_solution_svg(result.smore))
    return render_case_study(result)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.experiments")
    parser.add_argument("experiment",
                        choices=["table1", "table2", "table3",
                                 "figure4", "figure5", "figure6", "train",
                                 "dynamic", "shard", "all"])
    parser.add_argument("--full", action="store_true",
                        help="use the larger (slower) run profile")
    parser.add_argument("--latex", default=None, metavar="PATH",
                        help="also dump table results as LaTeX to PATH")
    parser.add_argument("--datasets", default=",".join(DATASET_NAMES),
                        help="comma-separated dataset subset")
    parser.add_argument("--dataset", default="delivery",
                        help="dataset for figure6 / train")
    parser.add_argument("--seed", type=int, default=100)
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool size for the method grid "
                             "(1 = serial; results are identical)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also dump table results as JSON to PATH")
    parser.add_argument("--schedule", default="poisson",
                        choices=["poisson", "burst"],
                        help="dynamic: the arrival process to stream")
    parser.add_argument("--rebuild-table", action="store_true",
                        help="dynamic: rebuild the candidate table per "
                             "event epoch instead of incremental repair "
                             "(identical results, slower)")
    parser.add_argument("--shards", default="1,2,4",
                        help="shard: comma-separated shard counts to sweep")
    parser.add_argument("--tasks", type=int, default=2000,
                        help="shard: sensing tasks in the city instance")
    parser.add_argument("--city-workers", type=int, default=200,
                        help="shard: workers in the city instance")
    parser.add_argument("--budget", type=float, default=600.0,
                        help="shard: incentive budget of the city instance")
    parser.add_argument("--method", default="grid", choices=["grid", "kd"],
                        help="shard: spatial partitioning method")
    parser.add_argument("--svg", default=None, metavar="PATH",
                        help="figure6: also write the SMORE plan as SVG")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a JSONL obs trace of the whole run to "
                             "PATH and append a span-summary table")
    parser.add_argument("--profile", default=None, metavar="PATH",
                        help="run under the op-level autograd profiler, "
                             "write the JSONL profile to PATH and append "
                             "the per-op summary table")
    args = parser.parse_args(argv)

    if args.profile:
        from ..obs.profile import render_profile

        with obs.profiling(args.profile) as profiler:
            code = _run_traced(args)
        print()
        print(render_profile(profiler))
        print(f"\nProfile written to {args.profile}")
        return code
    return _run_traced(args)


def _run_traced(args) -> int:
    if args.trace:
        with obs.tracing(args.trace) as tracer:
            code = _dispatch(args)
            spans = render_spans(tracer.metrics)
        if spans:
            print()
            print(spans)
        print(f"\nTrace written to {args.trace}")
        return code
    return _dispatch(args)


def _dispatch(args) -> int:
    profile = FULL_PROFILE if args.full else FAST_PROFILE
    runner = ExperimentRunner(profile=profile, seed=args.seed,
                              workers=args.workers)
    datasets = tuple(name.strip() for name in args.datasets.split(","))

    table_builders = {
        "table1": ("Table I — Effect of Sensing Task Time Window",
                   table1_time_window),
        "table2": ("Table II — Effect of Budget", table2_budget),
        "table3": ("Table III — Effect of Weight in Data Coverage",
                   table3_alpha),
    }
    if args.experiment == "all":
        for name, (title, builder) in table_builders.items():
            print(render_grid(title, builder(runner, datasets=datasets)))
            print()
        print(_figure4(runner, datasets))
        print()
        print(render_figure5(figure5_ablation(runner, datasets=datasets)))
        print()
        print(_figure6(runner, args.dataset))
        return 0
    if args.experiment in table_builders:
        title, builder = table_builders[args.experiment]
        results = builder(runner, datasets=datasets)
        print(render_grid(title, results))
        perf_block = render_perf(results)
        if perf_block:
            print()
            print(perf_block)
        if args.json:
            from .reporting import results_to_json

            with open(args.json, "w") as handle:
                handle.write(results_to_json(results))
            print(f"\nJSON written to {args.json}")
        if args.latex:
            from .reporting import results_to_latex

            with open(args.latex, "w") as handle:
                handle.write(results_to_latex(title, results))
            print(f"LaTeX written to {args.latex}")
    elif args.experiment == "figure4":
        print(_figure4(runner, datasets))
    elif args.experiment == "figure5":
        print(render_figure5(figure5_ablation(runner, datasets=datasets)))
    elif args.experiment == "figure6":
        print(_figure6(runner, args.dataset, svg_path=args.svg))
    elif args.experiment == "dynamic":
        from .dynamic import dynamic_curves, render_dynamic

        results = dynamic_curves(runner, datasets=datasets,
                                 schedule=args.schedule,
                                 repair=not args.rebuild_table)
        print(render_dynamic(results, schedule=args.schedule))
    elif args.experiment == "shard":
        from .shard import render_shard_scaling, shard_scaling

        shard_counts = tuple(int(p) for p in args.shards.split(","))
        results = shard_scaling(num_tasks=args.tasks,
                                num_workers=args.city_workers,
                                budget=args.budget, seed=args.seed,
                                shard_counts=shard_counts,
                                method=args.method,
                                pool_workers=args.workers)
        print(render_shard_scaling(results))
        if args.json:
            import json

            with open(args.json, "w") as handle:
                json.dump(results, handle, indent=2)
            print(f"\nJSON written to {args.json}")
    elif args.experiment == "train":
        policy = get_trained_policy(args.dataset, spec=runner.profile.pretrain,
                                    cache_dir=runner.cache_dir)
        print(f"trained TASNet for {args.dataset!r}: "
              f"{policy.net.num_parameters()} parameters "
              f"(cached under .cache/pretrained)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
