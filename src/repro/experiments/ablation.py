"""Figure 5 — ablation study of SMORE's main designs.

Four variants per dataset:

* **SMORE** — trained TASNet policy.
* **w/o RL-AS** — the iterative framework with the myopic
  maximum-coverage-gain rule instead of the learned policy.
* **w/o TASNet** — a single-stage flat pointer over all (worker, task)
  pairs, trained the same way.
* **w/o Soft Mask** — TASNet with the soft-mask modulation disabled,
  trained the same way.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..datasets import DATASET_NAMES, generate_instances, generator_for
from ..smore import (
    FlatSelectionNet,
    FlatSelectionPolicy,
    GreedySelectionRule,
    SMORESolver,
    TASNet,
    TASNetConfig,
    TASNetPolicy,
    TASNetTrainer,
    TrainingConfig,
    imitation_pretrain,
)
from ..tsptw import InsertionSolver
from .metrics import MethodResult, aggregate
from .pretrained import PretrainSpec, get_trained_policy
from .runner import ExperimentRunner

__all__ = ["ABLATION_VARIANTS", "figure5_ablation", "train_variant_policy"]

ABLATION_VARIANTS = ("SMORE", "w/o RL-AS", "w/o TASNet", "w/o Soft Mask")

#: Extension beyond the paper: also ablate the decoder's data fusion
#: (delta_phi / delta_in pointer-key signals) separately from the mask.
EXTENDED_VARIANTS = ABLATION_VARIANTS + ("w/o Fusion",)


def _trained_policy_for_net(net_factory, dataset: str, spec: PretrainSpec,
                            policy_cls):
    """Imitation + REINFORCE training for an ablation variant's network."""
    from ..datasets import InstanceOptions

    options = InstanceOptions(task_density=spec.task_density)
    train = generate_instances(dataset, spec.num_train, seed=spec.seed,
                               options=options)
    val = generate_instances(dataset, spec.num_val, seed=spec.seed + 7777,
                             options=options)
    planner = InsertionSolver()
    policy = policy_cls(net_factory())
    imitation_pretrain(policy, planner, train,
                       iterations=spec.imitation_iterations,
                       lr=spec.imitation_lr, seed=spec.seed + 1)
    trainer = TASNetTrainer(
        policy, planner,
        TrainingConfig(iterations=spec.rl_iterations,
                       batch_size=spec.batch_size, lr=spec.rl_lr,
                       seed=spec.seed + 2))
    trainer.train(train, val_instances=val)
    return policy


def train_variant_policy(variant: str, dataset: str,
                         spec: PretrainSpec, cache_dir=None):
    """Build the policy (or rule) behind one ablation variant."""
    grid = generator_for(dataset).spec.grid
    config = TASNetConfig(d_model=spec.d_model, num_heads=spec.num_heads,
                          num_layers=spec.num_layers,
                          conv_channels=spec.conv_channels)
    if variant == "SMORE":
        return get_trained_policy(dataset, spec=spec, cache_dir=cache_dir)
    if variant == "w/o RL-AS":
        return GreedySelectionRule()
    if variant == "w/o TASNet":
        rng = np.random.default_rng(spec.seed)
        return _trained_policy_for_net(
            lambda: FlatSelectionNet(config, grid.nx, grid.ny, rng=rng),
            dataset, spec, FlatSelectionPolicy)
    if variant == "w/o Soft Mask":
        no_mask = replace(config, use_soft_mask=False)
        rng = np.random.default_rng(spec.seed)
        return _trained_policy_for_net(
            lambda: TASNet(no_mask, grid.nx, grid.ny, rng=rng),
            dataset, spec, TASNetPolicy)
    if variant == "w/o Fusion":
        no_fusion = replace(config, use_heuristic_fusion=False)
        rng = np.random.default_rng(spec.seed)
        return _trained_policy_for_net(
            lambda: TASNet(no_fusion, grid.nx, grid.ny, rng=rng),
            dataset, spec, TASNetPolicy)
    raise KeyError(f"unknown ablation variant {variant!r}")


def figure5_ablation(runner: ExperimentRunner,
                     datasets=DATASET_NAMES,
                     variants=ABLATION_VARIANTS
                     ) -> dict[str, list[MethodResult]]:
    """Run the ablation grid; returns ``{dataset: [MethodResult, ...]}``."""
    planner = InsertionSolver()
    results: dict[str, list[MethodResult]] = {}
    for dataset in datasets:
        instances = runner.test_instances(dataset)
        solutions = {}
        for variant in variants:
            policy = train_variant_policy(variant, dataset,
                                          runner.profile.pretrain,
                                          cache_dir=runner.cache_dir)
            solver = SMORESolver(planner, policy, name=variant)
            solutions[variant] = [solver.solve(inst) for inst in instances]
        results[dataset] = aggregate(solutions)
    return results


def render_figure5(results: dict[str, list[MethodResult]]) -> str:
    """Bar-chart-as-text rendering of the ablation results."""
    lines = ["Figure 5 — Ablation Study (data coverage)",
             "=" * 46]
    for dataset, rows in results.items():
        lines.append(f"\n[{dataset}]")
        top = max(r.objective_mean for r in rows) or 1.0
        for result in rows:
            bar = "#" * int(round(30 * result.objective_mean / top))
            lines.append(f"  {result.method:<14} {result.objective_mean:6.3f} {bar}")
    return "\n".join(lines)
