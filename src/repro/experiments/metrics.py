"""Aggregation of solver runs into the rows the paper's tables report."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.perf import PerfCounters
from ..core.solution import Solution

__all__ = ["MethodResult", "ExperimentCell", "aggregate"]


@dataclass(frozen=True)
class MethodResult:
    """One (method, setting) cell: mean objective and wall time.

    ``perf`` aggregates the :class:`PerfCounters` of all solutions that
    reported them (planner calls, cache hit rate, init/selection wall
    time); it is None when no solution carried counters.
    """

    method: str
    objective_mean: float
    objective_std: float
    wall_time_mean: float
    num_instances: int
    num_completed_mean: float
    incentive_mean: float
    perf: PerfCounters | None = None

    def format_objective(self) -> str:
        return f"{self.objective_mean:.3f}"

    def format_time(self) -> str:
        seconds = self.wall_time_mean
        if seconds < 60:
            return f"{seconds:.2f} (s)"
        if seconds < 3600:
            return f"{seconds / 60:.1f} (m)"
        return f"{seconds / 3600:.1f} (h)"


@dataclass
class ExperimentCell:
    """All solutions of one method under one setting."""

    method: str
    solutions: list[Solution] = field(default_factory=list)

    def result(self) -> MethodResult:
        objectives = [s.objective for s in self.solutions]
        times = [s.wall_time for s in self.solutions]
        completed = [s.num_completed for s in self.solutions]
        incentives = [s.total_incentive for s in self.solutions]
        perf = None
        for solution in self.solutions:
            if solution.perf is not None:
                perf = PerfCounters() if perf is None else perf
                perf.merge(solution.perf)
        return MethodResult(
            method=self.method,
            objective_mean=float(np.mean(objectives)) if objectives else 0.0,
            objective_std=float(np.std(objectives)) if objectives else 0.0,
            wall_time_mean=float(np.mean(times)) if times else 0.0,
            num_instances=len(self.solutions),
            num_completed_mean=float(np.mean(completed)) if completed else 0.0,
            incentive_mean=float(np.mean(incentives)) if incentives else 0.0,
            perf=perf,
        )


def aggregate(solutions_by_method: dict[str, list[Solution]]) -> list[MethodResult]:
    """Aggregate per-method solution lists, preserving insertion order."""
    return [
        ExperimentCell(method, solutions).result()
        for method, solutions in solutions_by_method.items()
    ]
