"""Plain-text and JSON rendering of the paper-style result tables."""

from __future__ import annotations

import json

from .metrics import MethodResult

__all__ = ["render_table", "render_grid", "render_perf", "render_spans",
           "results_to_json", "results_to_latex"]


def render_spans(metrics) -> str:
    """Span-summary table from a :class:`~repro.obs.MetricsRegistry`.

    One row per span path (``setting/method.SMORE/solve/...``): call
    count, total and mean wall time.  Rows come from the
    ``span.<path>.time``/``.count`` timing aggregates, which include
    spans shipped back from fork-pool workers; returns the empty string
    when nothing was traced.
    """
    rows = []
    for path, count, total in metrics.span_summary():
        mean = total / count if count else 0.0
        rows.append([path, str(count), f"{total:.3f}s", f"{mean:.3f}s"])
    if not rows:
        return ""
    header = ["Span", "Count", "Total", "Mean"]
    table = [header] + rows
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    lines = ["Span summary", "=" * 12]
    for index, row in enumerate(table):
        line = "  ".join(cell.ljust(width)
                         for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)


def render_perf(results: dict[str, dict[str, list[MethodResult]]]) -> str:
    """Performance-counter table for every method that reported counters.

    One row per (dataset, setting, method): planner calls (with the
    candidate-initialisation share), cache hit rate, and init vs. selection
    wall time.  Methods without counters (most baselines) are omitted;
    returns the empty string when nothing reported any.
    """
    rows = []
    for dataset, settings in results.items():
        for setting, cell in settings.items():
            for result in cell:
                if result.perf is None:
                    continue
                perf = result.perf
                rows.append([
                    dataset, setting, result.method,
                    str(perf.planner_calls),
                    str(perf.init_planner_calls),
                    str(perf.backend_calls) if perf.backend_calls else "-",
                    f"{perf.cache_hit_rate:.0%}" if (perf.cache_hits
                                                     or perf.cache_misses)
                    else "-",
                    f"{perf.init_time:.2f}s",
                    f"{perf.selection_time:.2f}s",
                ])
    if not rows:
        return ""
    header = ["Dataset", "Setting", "Method", "Planner calls", "Init calls",
              "Backend calls", "Cache hits", "Init time", "Select time"]
    table = [header] + rows
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    lines = ["Performance counters", "=" * 20]
    for index, row in enumerate(table):
        line = "  ".join(cell.ljust(width)
                         for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)


def results_to_latex(title: str,
                     results: dict[str, dict[str, list[MethodResult]]]) -> str:
    """LaTeX tabular in the paper's layout (Obj./Time sub-columns).

    One tabular per dataset, booktabs-style rules, best objective per
    column in bold — ready to paste next to the paper's tables.
    """
    blocks: list[str] = []
    for dataset, settings in results.items():
        columns = list(settings)
        methods: list[str] = []
        for cell in settings.values():
            for result in cell:
                if result.method not in methods:
                    methods.append(result.method)
        best = {column: max(r.objective_mean for r in settings[column])
                for column in columns}

        spec = "l" + "rr" * len(columns)
        header = " & ".join(
            f"\\multicolumn{{2}}{{c}}{{{column}}}" for column in columns)
        subheader = " & ".join(["Obj. & Time"] * len(columns))
        lines = [
            f"% {title} — {dataset}",
            f"\\begin{{tabular}}{{{spec}}}",
            "\\toprule",
            f"Method & {header} \\\\",
            f" & {subheader} \\\\",
            "\\midrule",
        ]
        for method in methods:
            cells = []
            for column in columns:
                match = [r for r in settings[column] if r.method == method]
                if not match:
                    cells.extend(["--", "--"])
                    continue
                objective = match[0].format_objective()
                if match[0].objective_mean >= best[column] - 1e-9:
                    objective = f"\\textbf{{{objective}}}"
                cells.extend([objective, match[0].format_time()])
            lines.append(f"{method} & " + " & ".join(cells) + " \\\\")
        lines.extend(["\\bottomrule", "\\end{tabular}"])
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def results_to_json(results: dict[str, dict[str, list[MethodResult]]]) -> str:
    """Machine-readable dump of nested experiment results.

    Structure: ``{dataset: {setting: {method: {objective, objective_std,
    wall_time, instances, completed, incentive}}}}``.
    """
    payload: dict = {}
    for dataset, settings in results.items():
        payload[dataset] = {}
        for setting, cell in settings.items():
            payload[dataset][setting] = {}
            for r in cell:
                entry = {
                    "objective": r.objective_mean,
                    "objective_std": r.objective_std,
                    "wall_time": r.wall_time_mean,
                    "instances": r.num_instances,
                    "completed": r.num_completed_mean,
                    "incentive": r.incentive_mean,
                }
                if r.perf is not None:
                    entry["perf"] = r.perf.to_dict()
                payload[dataset][setting][r.method] = entry
    return json.dumps(payload, indent=2, sort_keys=True)


def render_table(title: str, columns: list[str],
                 rows: dict[str, list[tuple[str, str]]]) -> str:
    """Render a paper-style table.

    ``rows`` maps method -> list of (objective, time) string pairs, one
    pair per column; column headers get Obj./Time sub-columns, as in
    Tables I-III.
    """
    header_cells = ["Method"]
    for column in columns:
        header_cells.extend([f"{column} Obj.", f"{column} Time"])
    table_rows = [header_cells]
    for method, cells in rows.items():
        row = [method]
        for objective, wall_time in cells:
            row.extend([objective, wall_time])
        table_rows.append(row)

    widths = [max(len(row[i]) for row in table_rows)
              for i in range(len(header_cells))]
    lines = [title, "=" * len(title)]
    for index, row in enumerate(table_rows):
        line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)


def render_grid(title: str,
                results: dict[str, dict[str, list[MethodResult]]]) -> str:
    """Render one table per dataset from nested results.

    ``results[dataset][setting_label]`` is the method-result list for that
    cell.
    """
    blocks = []
    for dataset, settings in results.items():
        columns = list(settings)
        methods: list[str] = []
        for cell in settings.values():
            for result in cell:
                if result.method not in methods:
                    methods.append(result.method)
        rows = {}
        for method in methods:
            cells = []
            for column in columns:
                match = [r for r in settings[column] if r.method == method]
                if match:
                    cells.append((match[0].format_objective(),
                                  match[0].format_time()))
                else:
                    cells.append(("-", "-"))
            rows[method] = cells
        blocks.append(render_table(f"{title} — {dataset}", columns, rows))
    return "\n\n".join(blocks)
