"""Training and caching of TASNet policies per dataset family.

The paper pre-trains TASNet per dataset on a GPU; the benchmark harness
here trains once per dataset at the default setting (budget 300, window 30,
alpha 0.5) — imitation warm start followed by REINFORCE with validation
snapshots — and caches the weights under ``.cache/pretrained`` so repeated
benchmark runs are cheap.  The same policy is evaluated across the settings
of Tables I-III (the state featurisation is budget- and window-aware, so it
transfers); EXPERIMENTS.md documents this schedule substitution.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .. import nn
from ..datasets import InstanceOptions, generate_instances, generator_for
from ..smore import (
    TASNet,
    TASNetConfig,
    TASNetPolicy,
    TASNetTrainer,
    TrainingConfig,
    imitation_pretrain,
)
from ..tsptw import InsertionSolver

__all__ = ["PretrainSpec", "get_trained_policy", "train_policy",
           "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = Path(__file__).resolve().parents[3] / ".cache" / "pretrained"


@dataclass(frozen=True)
class PretrainSpec:
    """Training budget for one cached policy (CPU-scaled defaults)."""

    num_train: int = 10
    num_val: int = 2
    imitation_iterations: int = 25
    rl_iterations: int = 15
    imitation_lr: float = 3e-3
    rl_lr: float = 5e-4
    batch_size: int = 2
    seed: int = 0
    d_model: int = 16
    num_heads: int = 2
    num_layers: int = 1
    conv_channels: int = 2
    task_density: float = 0.15

    def cache_key(self, dataset: str) -> str:
        return (f"{dataset}-d{self.d_model}h{self.num_heads}l{self.num_layers}"
                f"c{self.conv_channels}-i{self.imitation_iterations}"
                f"r{self.rl_iterations}-n{self.num_train}-s{self.seed}"
                f"-td{self.task_density:g}")


def _build_net(spec: PretrainSpec, grid_nx: int, grid_ny: int) -> TASNet:
    config = TASNetConfig(d_model=spec.d_model, num_heads=spec.num_heads,
                          num_layers=spec.num_layers,
                          conv_channels=spec.conv_channels)
    return TASNet(config, grid_nx, grid_ny,
                  rng=np.random.default_rng(spec.seed))


def train_policy(dataset: str, spec: PretrainSpec | None = None,
                 options: InstanceOptions | None = None) -> TASNetPolicy:
    """Train a TASNet policy for ``dataset`` from scratch (no cache)."""
    spec = spec or PretrainSpec()
    options = options or InstanceOptions(task_density=spec.task_density)
    grid = generator_for(dataset).spec.grid
    train = generate_instances(dataset, spec.num_train, seed=spec.seed,
                               options=options)
    val = generate_instances(dataset, spec.num_val, seed=spec.seed + 7777,
                             options=options)
    planner = InsertionSolver()
    net = _build_net(spec, grid.nx, grid.ny)
    policy = TASNetPolicy(net)
    imitation_pretrain(policy, planner, train,
                       iterations=spec.imitation_iterations,
                       lr=spec.imitation_lr, seed=spec.seed + 1)
    trainer = TASNetTrainer(
        policy, planner,
        TrainingConfig(iterations=spec.rl_iterations,
                       batch_size=spec.batch_size, lr=spec.rl_lr,
                       seed=spec.seed + 2))
    trainer.train(train, val_instances=val)
    return policy


def get_trained_policy(dataset: str, spec: PretrainSpec | None = None,
                       cache_dir: Path | str | None = None,
                       options: InstanceOptions | None = None) -> TASNetPolicy:
    """Load a cached trained policy for ``dataset``, training if absent."""
    spec = spec or PretrainSpec()
    cache_dir = Path(cache_dir) if cache_dir is not None else DEFAULT_CACHE_DIR
    cache_dir.mkdir(parents=True, exist_ok=True)
    key = spec.cache_key(dataset)
    weights_path = cache_dir / f"{key}.npz"
    meta_path = cache_dir / f"{key}.json"

    grid = generator_for(dataset).spec.grid
    if weights_path.exists() and meta_path.exists():
        net = _build_net(spec, grid.nx, grid.ny)
        nn.load_module(net, weights_path)
        return TASNetPolicy(net)

    policy = train_policy(dataset, spec=spec, options=options)
    nn.save_module(policy.net, weights_path)
    meta_path.write_text(json.dumps({
        "dataset": dataset, "grid": [grid.nx, grid.ny],
        "spec": {k: getattr(spec, k) for k in spec.__dataclass_fields__},
    }, indent=2))
    return policy
