"""Tables I-III of the paper: the three parameter sweeps.

Each function runs the full method grid over the three datasets with one
varied parameter and returns nested results
``{dataset: {setting_label: [MethodResult, ...]}}``; ``render``ing them
prints the same rows the paper reports (Obj. / Time per setting).
"""

from __future__ import annotations

from ..datasets import DATASET_NAMES
from .metrics import MethodResult
from .reporting import render_grid
from .runner import ExperimentRunner

__all__ = ["table1_time_window", "table2_budget", "table3_alpha",
           "TABLE1_WINDOWS", "TABLE2_BUDGETS", "TABLE3_ALPHAS"]

TABLE1_WINDOWS = (30.0, 60.0, 120.0)
TABLE2_BUDGETS = (200.0, 300.0, 400.0)
TABLE3_ALPHAS = (0.2, 0.5, 0.8)

Results = dict[str, dict[str, list[MethodResult]]]


def table1_time_window(runner: ExperimentRunner,
                       datasets=DATASET_NAMES,
                       windows=TABLE1_WINDOWS,
                       methods=None) -> Results:
    """Table I: effect of the sensing-task time window (30/60/120 min)."""
    results: Results = {}
    for dataset in datasets:
        results[dataset] = {}
        for window in windows:
            label = f"Interval={window:g}"
            results[dataset][label] = runner.run_setting(
                dataset, methods=methods, window_minutes=window)
    return results


def table2_budget(runner: ExperimentRunner,
                  datasets=DATASET_NAMES,
                  budgets=TABLE2_BUDGETS,
                  methods=None) -> Results:
    """Table II: effect of the total budget (200/300/400)."""
    results: Results = {}
    for dataset in datasets:
        results[dataset] = {}
        for budget in budgets:
            label = f"Budget={budget:g}"
            results[dataset][label] = runner.run_setting(
                dataset, methods=methods, budget=budget)
    return results


def table3_alpha(runner: ExperimentRunner,
                 datasets=DATASET_NAMES,
                 alphas=TABLE3_ALPHAS,
                 methods=None) -> Results:
    """Table III: effect of the weight alpha in the data coverage."""
    results: Results = {}
    for dataset in datasets:
        results[dataset] = {}
        for alpha in alphas:
            label = f"alpha={alpha:g}"
            results[dataset][label] = runner.run_setting(
                dataset, methods=methods, alpha=alpha)
    return results


def render_table1(results: Results) -> str:
    return render_grid("Table I — Effect of Sensing Task Time Window", results)


def render_table2(results: Results) -> str:
    return render_grid("Table II — Effect of Budget", results)


def render_table3(results: Results) -> str:
    return render_grid("Table III — Effect of Weight in Data Coverage", results)
