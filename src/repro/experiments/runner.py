"""Experiment runner: solver grid over datasets and settings.

Reproduces the evaluation protocol of Section V: for each dataset and each
setting (sensing-task time window, budget, alpha), run every method on the
same test instances and report mean objective and wall time.

Scale is controlled by :class:`RunProfile`: the ``fast`` profile keeps
pytest-benchmark runs in seconds; ``paper`` approaches the paper's scale
(full task grid, paper MSA schedule) for offline runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from ..baselines import (
    JDRLSolver,
    MSAConfig,
    MSAGISolver,
    MSASolver,
    RandomSolver,
    TCPGSolver,
    TVPGSolver,
)
from .. import obs
from ..core.solution import Solution
from ..datasets import InstanceOptions, generate_instances
from ..parallel import parallel_map
from ..smore import SMORESolver
from ..tsptw import InsertionSolver
from .metrics import MethodResult, aggregate
from .pretrained import PretrainSpec, get_trained_policy

__all__ = ["RunProfile", "FAST_PROFILE", "FULL_PROFILE", "ExperimentRunner",
           "METHOD_ORDER"]

#: Row order used by every table, matching the paper.
METHOD_ORDER = ("RN", "TVPG", "TCPG", "MSA", "MSAGI", "JDRL", "SMORE")


@dataclass(frozen=True)
class RunProfile:
    """How big each experiment run is."""

    name: str
    num_test_instances: int
    task_density: float
    msa: MSAConfig
    pretrain: PretrainSpec
    methods: tuple[str, ...] = METHOD_ORDER

    def options(self, **overrides) -> InstanceOptions:
        base = InstanceOptions(task_density=self.task_density)
        return replace(base, **overrides)


FAST_PROFILE = RunProfile(
    name="fast",
    num_test_instances=2,
    task_density=0.15,
    msa=MSAConfig(num_starts=1, iterations_per_round=80,
                  patience_rounds=2, time_limit=20.0),
    pretrain=PretrainSpec(),
)

FULL_PROFILE = RunProfile(
    name="full",
    num_test_instances=5,
    task_density=0.3,
    msa=MSAConfig(num_starts=2, iterations_per_round=400,
                  patience_rounds=3, time_limit=120.0),
    pretrain=PretrainSpec(num_train=20, imitation_iterations=40,
                          rl_iterations=30, task_density=0.3),
)


class ExperimentRunner:
    """Runs the method grid of the paper's tables.

    ``workers > 1`` fans the per-setting method grid out over a ``fork``
    process pool (:mod:`repro.parallel`).  Each method keeps its serial
    per-instance order inside one process, so parallel runs produce
    bit-identical tables to serial ones under fixed seeds.
    """

    def __init__(self, profile: RunProfile = FAST_PROFILE, seed: int = 100,
                 cache_dir=None, workers: int = 1):
        self.profile = profile
        self.seed = seed
        self.cache_dir = cache_dir
        self.workers = workers
        self._policies: dict[str, object] = {}

    # ------------------------------------------------------------------ #
    def _smore_solver(self, dataset: str) -> SMORESolver:
        if dataset not in self._policies:
            self._policies[dataset] = get_trained_policy(
                dataset, spec=self.profile.pretrain, cache_dir=self.cache_dir)
        return SMORESolver(InsertionSolver(), self._policies[dataset],
                           name="SMORE")

    def _make_solver(self, method: str, dataset: str):
        factories: dict[str, Callable[[], object]] = {
            "RN": lambda: RandomSolver(seed=self.seed),
            "TVPG": TVPGSolver,
            "TCPG": TCPGSolver,
            "MSA": lambda: MSASolver(self.profile.msa, seed=self.seed),
            "MSAGI": lambda: MSAGISolver(self.profile.msa, seed=self.seed),
            "JDRL": lambda: JDRLSolver(seed=self.seed),
            "SMORE": lambda: self._smore_solver(dataset),
        }
        try:
            return factories[method]()
        except KeyError:
            raise KeyError(f"unknown method {method!r}")

    # ------------------------------------------------------------------ #
    def test_instances(self, dataset: str, **option_overrides):
        options = self.profile.options(**option_overrides)
        return generate_instances(dataset, self.profile.num_test_instances,
                                  seed=self.seed, options=options)

    def run_setting(self, dataset: str, methods: tuple[str, ...] | None = None,
                    **option_overrides) -> list[MethodResult]:
        """Run all methods on one (dataset, setting) cell."""
        methods = methods or self.profile.methods
        instances = self.test_instances(dataset, **option_overrides)
        if "SMORE" in methods and self.workers > 1:
            # Train (or load) the policy before forking so every child
            # inherits the trained weights instead of re-training.
            self._smore_solver(dataset)

        def run_method(method: str) -> list[Solution]:
            # One span per (setting, method) cell; with workers > 1 these
            # run in pool children and their span/counter telemetry is
            # shipped back and merged in method order (repro.parallel).
            with obs.span(f"method.{method}", dataset=dataset,
                          instances=len(instances)):
                solver = self._make_solver(method, dataset)
                return [solver.solve(inst) for inst in instances]

        with obs.span("setting", dataset=dataset):
            method_solutions = parallel_map(run_method, methods,
                                            workers=self.workers)
        solutions: dict[str, list[Solution]] = dict(
            zip(methods, method_solutions))
        return aggregate(solutions)
