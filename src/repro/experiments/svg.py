"""Dependency-free SVG rendering of instances and solutions.

The paper's Figure 6 shows worker routes and sensing-completion heatmaps
on the city map.  The benchmark harness renders those as text; this module
produces proper vector graphics (plain SVG strings, no plotting library)
for reports and dashboards::

    from repro.experiments.svg import render_solution_svg
    svg = render_solution_svg(solution)
    open("plan.svg", "w").write(svg)

Layers drawn: the grid, sensing tasks (grey = open, green = completed),
worker routes as colored polylines with origin/destination markers, and
mandatory travel-task stops.
"""

from __future__ import annotations

from ..core.instance import USMDWInstance
from ..core.route import WorkingRoute
from ..core.solution import Solution

__all__ = ["render_instance_svg", "render_solution_svg"]

_ROUTE_COLORS = ("#3366cc", "#dc3912", "#ff9900", "#109618", "#990099",
                 "#0099c6", "#dd4477", "#66aa00", "#b82e2e", "#316395")

_MARGIN = 20.0


class _Canvas:
    """Minimal SVG document builder with y-axis flip (map convention)."""

    def __init__(self, width: float, height: float, scale: float):
        self.scale = scale
        self.width = width * scale + 2 * _MARGIN
        self.height = height * scale + 2 * _MARGIN
        self._world_height = height
        self.elements: list[str] = []

    def to_xy(self, x: float, y: float) -> tuple[float, float]:
        return (_MARGIN + x * self.scale,
                _MARGIN + (self._world_height - y) * self.scale)

    def rect(self, x: float, y: float, w: float, h: float, **attrs) -> None:
        px, py = self.to_xy(x, y + h)
        self.elements.append(
            f'<rect x="{px:.1f}" y="{py:.1f}" width="{w * self.scale:.1f}" '
            f'height="{h * self.scale:.1f}" {_fmt(attrs)}/>')

    def circle(self, x: float, y: float, r: float, **attrs) -> None:
        px, py = self.to_xy(x, y)
        self.elements.append(
            f'<circle cx="{px:.1f}" cy="{py:.1f}" r="{r:.1f}" {_fmt(attrs)}/>')

    def polyline(self, points: list[tuple[float, float]], **attrs) -> None:
        coords = " ".join(
            "{:.1f},{:.1f}".format(*self.to_xy(x, y)) for x, y in points)
        self.elements.append(f'<polyline points="{coords}" {_fmt(attrs)}/>')

    def text(self, x: float, y: float, content: str, **attrs) -> None:
        px, py = self.to_xy(x, y)
        self.elements.append(
            f'<text x="{px:.1f}" y="{py:.1f}" {_fmt(attrs)}>{content}</text>')

    def render(self) -> str:
        body = "\n  ".join(self.elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width:.0f}" height="{self.height:.0f}" '
            f'viewBox="0 0 {self.width:.0f} {self.height:.0f}">\n'
            f'  <rect width="100%" height="100%" fill="white"/>\n'
            f'  {body}\n</svg>\n')


def _fmt(attrs: dict) -> str:
    return " ".join(f'{k.replace("_", "-")}="{v}"' for k, v in attrs.items())


def _draw_grid(canvas: _Canvas, instance: USMDWInstance) -> None:
    grid = instance.coverage.grid
    for i in range(grid.nx):
        for j in range(grid.ny):
            canvas.rect(i * grid.cell_width, j * grid.cell_height,
                        grid.cell_width, grid.cell_height,
                        fill="none", stroke="#dddddd", stroke_width=0.5)


def _draw_tasks(canvas: _Canvas, instance: USMDWInstance,
                completed_ids: set[int]) -> None:
    for task in instance.sensing_tasks:
        done = task.task_id in completed_ids
        canvas.circle(task.location.x, task.location.y,
                      4.0 if done else 2.0,
                      fill="#2ca02c" if done else "#bbbbbb",
                      fill_opacity="0.9" if done else "0.6")


def _draw_route(canvas: _Canvas, route: WorkingRoute, color: str) -> None:
    worker = route.worker
    points = ([(worker.origin.x, worker.origin.y)]
              + [(t.location.x, t.location.y) for t in route.tasks]
              + [(worker.destination.x, worker.destination.y)])
    canvas.polyline(points, fill="none", stroke=color, stroke_width=1.5,
                    stroke_opacity="0.85")
    canvas.circle(worker.origin.x, worker.origin.y, 5.0,
                  fill=color, stroke="black", stroke_width=0.8)
    canvas.rect(worker.destination.x - 4 / canvas.scale,
                worker.destination.y - 4 / canvas.scale,
                8 / canvas.scale, 8 / canvas.scale,
                fill=color, stroke="black", stroke_width=0.8)
    for task in route.travel_tasks:
        canvas.circle(task.location.x, task.location.y, 3.0,
                      fill="white", stroke=color, stroke_width=1.2)


def render_instance_svg(instance: USMDWInstance, scale: float = 0.25) -> str:
    """SVG of the raw instance: grid, sensing tasks, worker trips."""
    region = instance.coverage.grid.region
    canvas = _Canvas(region.width, region.height, scale)
    _draw_grid(canvas, instance)
    _draw_tasks(canvas, instance, set())
    for index, worker in enumerate(instance.workers):
        color = _ROUTE_COLORS[index % len(_ROUTE_COLORS)]
        route = WorkingRoute(worker, worker.travel_tasks, speed=instance.speed)
        _draw_route(canvas, route, color)
    canvas.text(5 / scale, region.height - 5 / scale, instance.name,
                font_size="12", fill="#333333")
    return canvas.render()


def render_solution_svg(solution: Solution, scale: float = 0.25) -> str:
    """SVG of a solved instance: completed tasks and re-planned routes."""
    instance = solution.instance
    region = instance.coverage.grid.region
    canvas = _Canvas(region.width, region.height, scale)
    _draw_grid(canvas, instance)
    completed = {t.task_id for t in solution.completed_tasks}
    _draw_tasks(canvas, instance, completed)
    for index, (worker_id, route) in enumerate(sorted(solution.routes.items())):
        color = _ROUTE_COLORS[index % len(_ROUTE_COLORS)]
        _draw_route(canvas, route, color)
    label = (f"{solution.solver_name}: phi={solution.objective:.3f} "
             f"tasks={solution.num_completed} "
             f"spent={solution.total_incentive:.0f}/{instance.budget:g}")
    canvas.text(5 / scale, region.height - 5 / scale, label,
                font_size="12", fill="#333333")
    return canvas.render()
