"""``repro.experiments`` — the paper's evaluation harness.

Regenerates every table and figure of Section V: Tables I-III (time-window,
budget and alpha sweeps over all methods and datasets), Figure 4 (dataset
distributions), Figure 5 (ablation) and Figure 6 (case study).  Run from
the command line with ``python -m repro.experiments <table1|table2|table3|
figure4|figure5|figure6>``.
"""

from .ablation import ABLATION_VARIANTS, figure5_ablation, render_figure5
from .analysis import SolutionReport, WorkerReport, analyze_solution, spatial_gini
from .case_study import (
    CaseStudyResult,
    opportunistic_solution,
    render_case_study,
    run_case_study,
)
from .metrics import ExperimentCell, MethodResult, aggregate
from .pretrained import DEFAULT_CACHE_DIR, PretrainSpec, get_trained_policy, train_policy
from .reporting import render_grid, render_table, results_to_json
from .svg import render_instance_svg, render_solution_svg
from .runner import FAST_PROFILE, FULL_PROFILE, METHOD_ORDER, ExperimentRunner, RunProfile
from .tables import (
    TABLE1_WINDOWS,
    TABLE2_BUDGETS,
    TABLE3_ALPHAS,
    table1_time_window,
    table2_budget,
    table3_alpha,
)

__all__ = [
    "ExperimentRunner", "RunProfile", "FAST_PROFILE", "FULL_PROFILE",
    "METHOD_ORDER",
    "MethodResult", "ExperimentCell", "aggregate",
    "PretrainSpec", "get_trained_policy", "train_policy", "DEFAULT_CACHE_DIR",
    "table1_time_window", "table2_budget", "table3_alpha",
    "TABLE1_WINDOWS", "TABLE2_BUDGETS", "TABLE3_ALPHAS",
    "figure5_ablation", "render_figure5", "ABLATION_VARIANTS",
    "run_case_study", "render_case_study", "CaseStudyResult",
    "opportunistic_solution",
    "render_table", "render_grid", "results_to_json",
    "render_instance_svg", "render_solution_svg",
    "analyze_solution", "spatial_gini", "SolutionReport", "WorkerReport",
]
