"""Post-hoc analytics of USMDW solutions.

The objective value alone hides *how* a solution spends its budget.  These
helpers break a :class:`~repro.core.solution.Solution` down the way a
sensing-platform operator would want to read it: per-worker workload and
detour, budget efficiency, and the spatial equity of the collected data
(Gini coefficient over grid cells — 0 is perfectly even, 1 is maximally
skewed, complementing the entropy in the objective).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.solution import Solution
from ..tsptw.insertion import InsertionSolver

__all__ = ["WorkerReport", "SolutionReport", "analyze_solution",
           "spatial_gini"]


@dataclass(frozen=True)
class WorkerReport:
    """One recruited worker's contribution."""

    worker_id: int
    sensing_tasks: int
    incentive: float
    route_travel_time: float
    base_travel_time: float
    waiting_time: float

    @property
    def detour_ratio(self) -> float:
        """Actual route time over the worker's own optimal route time."""
        if self.base_travel_time <= 0:
            return 1.0
        return self.route_travel_time / self.base_travel_time

    @property
    def incentive_per_task(self) -> float:
        if self.sensing_tasks == 0:
            return 0.0
        return self.incentive / self.sensing_tasks


@dataclass(frozen=True)
class SolutionReport:
    """Operator-facing summary of one solution."""

    objective: float
    num_completed: int
    total_incentive: float
    budget_utilisation: float
    workers: tuple[WorkerReport, ...]
    gini: float
    cells_covered: int
    cells_total: int

    @property
    def coverage_fraction(self) -> float:
        return self.cells_covered / max(self.cells_total, 1)

    def render(self) -> str:
        lines = [
            f"objective {self.objective:.3f} | tasks {self.num_completed} | "
            f"budget {self.budget_utilisation:.0%} used",
            f"spatial spread: {self.cells_covered}/{self.cells_total} cells, "
            f"Gini {self.gini:.3f}",
        ]
        for w in self.workers:
            lines.append(
                f"  worker {w.worker_id}: {w.sensing_tasks} tasks, "
                f"incentive {w.incentive:.1f} "
                f"({w.incentive_per_task:.1f}/task), "
                f"detour x{w.detour_ratio:.2f}, "
                f"waiting {w.waiting_time:.0f}m")
        return "\n".join(lines)


def spatial_gini(solution: Solution) -> float:
    """Gini coefficient of completed-task counts over grid cells."""
    grid = solution.instance.coverage.grid
    counts = np.zeros(grid.num_cells)
    for task in solution.completed_tasks:
        counts[grid.cell_index(task.location)] += 1
    if counts.sum() == 0:
        return 0.0
    sorted_counts = np.sort(counts)
    n = len(sorted_counts)
    cumulative = np.cumsum(sorted_counts)
    # Standard Gini over the (discrete) Lorenz curve.
    return float((n + 1 - 2 * (cumulative / cumulative[-1]).sum()) / n)


def analyze_solution(solution: Solution) -> SolutionReport:
    """Build the full operator report for a solution."""
    instance = solution.instance
    planner = InsertionSolver(speed=instance.speed)
    workers = []
    for worker_id, route in sorted(solution.routes.items()):
        worker = instance.worker(worker_id)
        timing = route.simulate()
        base = planner.base_route(worker).route_travel_time
        workers.append(WorkerReport(
            worker_id=worker_id,
            sensing_tasks=len(route.sensing_tasks),
            incentive=solution.incentives.get(worker_id, 0.0),
            route_travel_time=timing.route_travel_time,
            base_travel_time=base,
            waiting_time=timing.total_waiting_time,
        ))

    grid = instance.coverage.grid
    covered = {grid.cell_index(t.location) for t in solution.completed_tasks}
    budget = max(instance.budget, 1e-9)
    return SolutionReport(
        objective=solution.objective,
        num_completed=solution.num_completed,
        total_incentive=solution.total_incentive,
        budget_utilisation=solution.total_incentive / budget,
        workers=tuple(workers),
        gini=spatial_gini(solution),
        cells_covered=len(covered),
        cells_total=grid.num_cells,
    )
