"""Dynamic-scenario experiment: coverage vs. rejection rate.

The static tables ask "how much coverage does a budget buy"; the dynamic
scenario adds a second axis — how many streamed tasks *expire unserved*.
This experiment sweeps the arrival pressure (the time-to-live of a posted
task) and, for each setting, runs SMORE's trained policy and the greedy
coverage-gain baseline through the same
:class:`~repro.smore.dynamic.DynamicSelectionEnv` episodes, reporting the
mean coverage objective against the mean rejection rate.  Shorter TTLs
reject more tasks and depress coverage; the curves show how much of that
loss the learned policy recovers over the greedy rule at equal pressure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..datasets import burst_arrivals, poisson_arrivals
from ..smore import GreedySelectionRule, SMORESolver
from ..tsptw import InsertionSolver
from ..tsptw.cache import CachedPlanner
from .runner import ExperimentRunner

__all__ = ["DynamicPoint", "dynamic_curves", "render_dynamic"]

#: TTL sweep (minutes a posted task stays in the pool); None = until the
#: task's own window closes, the lowest-pressure point of the curve.
DEFAULT_TTLS = (15.0, 30.0, 60.0, None)

SCHEDULES = {
    "poisson": poisson_arrivals,
    "burst": burst_arrivals,
}


@dataclass(frozen=True)
class DynamicPoint:
    """One (method, ttl) point of a coverage-vs-rejection curve."""

    method: str
    ttl: float | None
    mean_phi: float
    mean_rejection_rate: float
    mean_selected: float
    mean_rejected: float
    mean_events: float
    mean_wall_time: float

    @property
    def ttl_label(self) -> str:
        return "window" if self.ttl is None else f"{self.ttl:g}m"


def _solvers_for(runner: ExperimentRunner, dataset: str) -> dict[str, SMORESolver]:
    """SMORE (trained policy) and the greedy rule, both insertion-backed.

    Each method gets its own memoising planner so per-method perf stays
    attributable; both decode through the same dynamic environment code.
    """
    smore = runner._smore_solver(dataset)
    return {
        "Greedy": SMORESolver(CachedPlanner(InsertionSolver()),
                              GreedySelectionRule(), name="Greedy"),
        "SMORE": SMORESolver(CachedPlanner(smore.planner), smore.policy,
                             name="SMORE"),
    }


def dynamic_curves(runner: ExperimentRunner,
                   datasets=("delivery", "tourism"),
                   schedule: str = "poisson",
                   ttls=DEFAULT_TTLS,
                   initial_fraction: float = 0.4,
                   num_samples: int = 1,
                   repair: bool = True) -> dict[str, list[DynamicPoint]]:
    """Coverage-vs-rejection curves per dataset.

    Every (method, ttl) cell replays the *same* seeded schedules — one
    per test instance, seeded off the runner seed — so curve points
    differ only in arrival pressure and policy, never in the stream.
    """
    try:
        make_schedule = SCHEDULES[schedule]
    except KeyError:
        raise KeyError(f"unknown schedule {schedule!r}; "
                       f"choose from {tuple(SCHEDULES)}")
    results: dict[str, list[DynamicPoint]] = {}
    for dataset in datasets:
        instances = runner.test_instances(dataset)
        solvers = _solvers_for(runner, dataset)
        points: list[DynamicPoint] = []
        for ttl in ttls:
            schedules = [
                make_schedule(instance, np.random.default_rng(
                    runner.seed + 7919 * i), ttl=ttl,
                    initial_fraction=initial_fraction)
                for i, instance in enumerate(instances)]
            for method, solver in solvers.items():
                with obs.span("dynamic.cell", dataset=dataset,
                              method=method,
                              ttl=-1.0 if ttl is None else ttl):
                    outcomes = [
                        solver.solve_dynamic(instance, sched,
                                             num_samples=num_samples,
                                             repair=repair)
                        for instance, sched in zip(instances, schedules)]
                n = len(outcomes)
                points.append(DynamicPoint(
                    method=method, ttl=ttl,
                    mean_phi=sum(o.phi for o in outcomes) / n,
                    mean_rejection_rate=sum(o.rejection_rate
                                            for o in outcomes) / n,
                    mean_selected=sum(len(o.selected_ids)
                                      for o in outcomes) / n,
                    mean_rejected=sum(len(o.rejected_ids)
                                      for o in outcomes) / n,
                    mean_events=sum(o.events for o in outcomes) / n,
                    mean_wall_time=sum(o.wall_time for o in outcomes) / n,
                ))
        results[dataset] = points
    return results


def render_dynamic(results: dict[str, list[DynamicPoint]],
                   schedule: str = "poisson") -> str:
    """Plain-text curve tables, one block per dataset."""
    lines = ["Dynamic scenario — coverage vs. rejection rate "
             f"({schedule} arrivals)", "=" * 60]
    for dataset, points in results.items():
        lines.append(f"\n[{dataset}]")
        lines.append(f"  {'ttl':>8} {'method':<8} {'phi':>8} "
                     f"{'reject%':>8} {'sel':>6} {'rej':>6} "
                     f"{'events':>7} {'time(s)':>8}")
        for point in points:
            lines.append(
                f"  {point.ttl_label:>8} {point.method:<8} "
                f"{point.mean_phi:>8.4f} "
                f"{100 * point.mean_rejection_rate:>7.1f}% "
                f"{point.mean_selected:>6.1f} {point.mean_rejected:>6.1f} "
                f"{point.mean_events:>7.1f} {point.mean_wall_time:>8.3f}")
        by_ttl: dict = {}
        for point in points:
            by_ttl.setdefault(point.ttl, {})[point.method] = point
        gains = [cell["SMORE"].mean_phi - cell["Greedy"].mean_phi
                 for cell in by_ttl.values()
                 if "SMORE" in cell and "Greedy" in cell]
        if gains:
            lines.append(f"  mean SMORE-vs-Greedy coverage gain: "
                         f"{sum(gains) / len(gains):+.4f}")
    return "\n".join(lines)
