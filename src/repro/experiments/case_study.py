"""Figure 6 — case study: route maps and sensing-completion heatmaps.

The paper contrasts (a) workers following their original routes and only
sensing opportunistically along the way with (b) SMORE re-planning the
routes: the former leaves the sensed data highly skewed over the region,
the latter covers it far more evenly.

:func:`run_case_study` reproduces both scenarios on one instance and
returns per-cell completion counts plus the worker routes;
:func:`render_case_study` draws them as text heatmaps (the paper's
Figures 6a-6d in terminal form).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.geometry import Grid
from ..core.instance import USMDWInstance
from ..core.route import WorkingRoute
from ..core.solution import Solution
from ..smore import SMORESolver
from ..tsptw import InsertionSolver

__all__ = ["CaseStudyResult", "run_case_study", "render_case_study",
           "opportunistic_solution", "completion_heatmap", "route_heatmap"]


def opportunistic_solution(instance: USMDWInstance) -> Solution:
    """The no-re-planning scenario: sense only along original routes.

    Each worker follows their own optimal route; whenever they stand in a
    grid cell at a time inside an unclaimed sensing task's window (and the
    task sits in that cell), the task is completed at zero incentive.
    """
    planner = InsertionSolver(speed=instance.speed)
    grid = instance.coverage.grid
    claimed: set[int] = set()
    routes: dict[int, WorkingRoute] = {}

    tasks_by_cell: dict[int, list] = {}
    for task in instance.sensing_tasks:
        tasks_by_cell.setdefault(grid.cell_index(task.location), []).append(task)

    for worker in instance.workers:
        base = planner.base_route(worker)
        if not base.feasible or base.route is None:
            continue
        timing = base.route.simulate()
        collected = []
        for stop in timing.stops:
            cell = grid.cell_index(stop.task.location)
            for task in tasks_by_cell.get(cell, []):
                if task.task_id in claimed:
                    continue
                # The worker is on site during [arrival, finish]; the task
                # is sensed if its full sensing period fits that presence
                # window and the task's own window.
                start = max(stop.arrival, task.tw_start)
                if (start + task.service_time <= task.tw_end
                        and start + task.service_time <= stop.finish + 1e-9):
                    claimed.add(task.task_id)
                    collected.append((task, stop))
        if collected:
            # Record the route annotated with its opportunistic pickups by
            # keeping the original order (tasks sensed in place, no detour).
            routes[worker.worker_id] = base.route

    solution = Solution(instance, routes, incentives={},
                        solver_name="no re-planning")
    solution.opportunistic_tasks = [  # type: ignore[attr-defined]
        task for task in instance.sensing_tasks if task.task_id in claimed]
    return solution


def completion_heatmap(instance: USMDWInstance, tasks) -> np.ndarray:
    """Per-cell completed-task counts, shape (nx, ny)."""
    grid = instance.coverage.grid
    heat = np.zeros((grid.nx, grid.ny))
    for task in tasks:
        i, j = grid.cell_of(task.location)
        heat[i, j] += 1
    return heat


def route_heatmap(instance: USMDWInstance,
                  routes: dict[int, WorkingRoute]) -> np.ndarray:
    """Per-cell visit counts of all route stops, shape (nx, ny)."""
    grid = instance.coverage.grid
    heat = np.zeros((grid.nx, grid.ny))
    for route in routes.values():
        for location in ([route.worker.origin, route.worker.destination]
                         + [t.location for t in route.tasks]):
            i, j = grid.cell_of(location)
            heat[i, j] += 1
    return heat


@dataclass
class CaseStudyResult:
    """Both scenarios on one instance."""

    instance: USMDWInstance
    baseline: Solution
    smore: Solution
    baseline_completed: list = field(default_factory=list)

    @property
    def baseline_phi(self) -> float:
        return self.instance.coverage.phi(self.baseline_completed)

    @property
    def smore_phi(self) -> float:
        return self.smore.objective

    def heatmaps(self) -> dict[str, np.ndarray]:
        return {
            "baseline_routes": route_heatmap(self.instance, self.baseline.routes),
            "baseline_completion": completion_heatmap(
                self.instance, self.baseline_completed),
            "smore_routes": route_heatmap(self.instance, self.smore.routes),
            "smore_completion": completion_heatmap(
                self.instance, self.smore.completed_tasks),
        }


def run_case_study(instance: USMDWInstance, policy) -> CaseStudyResult:
    """Run both scenarios; ``policy`` drives the SMORE side."""
    baseline = opportunistic_solution(instance)
    completed = getattr(baseline, "opportunistic_tasks", [])
    smore = SMORESolver(InsertionSolver(speed=instance.speed), policy,
                        name="SMORE").solve(instance)
    return CaseStudyResult(instance, baseline, smore, completed)


_SHADES = " .:-=+*#%@"


def _render_heat(heat: np.ndarray, grid: Grid) -> list[str]:
    top = heat.max() or 1.0
    lines = []
    for j in range(grid.ny - 1, -1, -1):  # north at the top
        row = ""
        for i in range(grid.nx):
            level = int(round((len(_SHADES) - 1) * heat[i, j] / top))
            row += _SHADES[level] * 2
        lines.append("|" + row + "|")
    return lines


def render_case_study(result: CaseStudyResult) -> str:
    """Figure 6 as four text heatmaps plus the headline numbers."""
    grid = result.instance.coverage.grid
    maps = result.heatmaps()
    titles = {
        "baseline_routes": "(a) original routes",
        "baseline_completion": "(b) completion w/o re-planning",
        "smore_routes": "(c) SMORE routes",
        "smore_completion": "(d) completion with SMORE",
    }
    blocks = [
        "Figure 6 — Case Study",
        "=" * 40,
        (f"no re-planning: |S'|={len(result.baseline_completed)} "
         f"phi={result.baseline_phi:.3f}"),
        (f"SMORE:          |S'|={result.smore.num_completed} "
         f"phi={result.smore_phi:.3f}"),
    ]
    for key, title in titles.items():
        blocks.append("")
        blocks.append(title)
        blocks.extend(_render_heat(maps[key], grid))
    return "\n".join(blocks)
