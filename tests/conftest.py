"""Session-wide guards: no PersistentPool workers may outlive the tests."""

import multiprocessing

import pytest

from repro.parallel import PersistentPool


@pytest.fixture(autouse=True, scope="session")
def no_pool_leaks():
    """Fail the session if any pool worker is still resident at the end.

    Pools must be closed (or garbage-collected through their atexit
    hook) by the tests that start them; an orphaned worker here means a
    leaked fork that would accumulate across CI runs.
    """
    yield
    leaked = PersistentPool.active_pools()
    assert leaked == [], f"PersistentPool leaked open pools: {leaked}"
    for proc in multiprocessing.active_children():
        proc.join(timeout=10)
    stragglers = [proc for proc in multiprocessing.active_children()
                  if proc.is_alive()]
    assert stragglers == [], f"orphaned worker processes: {stragglers}"
