"""Tests for the shared RouteBuilder machinery behind RN/TVPG/TCPG/MSA."""

import pytest

from repro.baselines import RouteBuilder


class TestInitialState:
    def test_nn_initial_routes(self, instance):
        builder = RouteBuilder(instance)
        for worker in instance.workers:
            route = builder.routes[worker.worker_id]
            assert len(route) == worker.num_travel_tasks
            assert builder.route_ok[worker.worker_id]

    def test_no_worker_committed_initially(self, instance):
        builder = RouteBuilder(instance)
        for worker in instance.workers:
            assert not builder.committed(worker.worker_id)
            assert builder.current_incentive(worker.worker_id) == 0.0

    def test_full_budget_available(self, instance):
        builder = RouteBuilder(instance)
        assert builder.budget_rest == instance.budget

    def test_unassigned_is_everything(self, instance):
        builder = RouteBuilder(instance)
        assert len(builder.unassigned_tasks()) == instance.num_sensing_tasks


class TestInsertion:
    def test_feasible_insertion_found(self, instance):
        builder = RouteBuilder(instance)
        task = instance.sensing_tasks[0]
        found = builder.feasible_insertion(1, task)
        assert found is not None
        position, rtt_after, delta = found
        assert delta >= 0.0
        assert rtt_after > 0.0

    def test_apply_updates_state(self, instance):
        builder = RouteBuilder(instance)
        task = instance.sensing_tasks[0]
        position, rtt_after, delta = builder.feasible_insertion(1, task)
        builder.apply(1, task, position, rtt_after, delta)
        assert builder.committed(1)
        assert task.task_id in builder.assigned_ids
        assert builder.budget_rest == pytest.approx(instance.budget - delta)
        assert builder.coverage.total == 1

    def test_assigned_task_not_reinsertable(self, instance):
        builder = RouteBuilder(instance)
        task = instance.sensing_tasks[0]
        builder.apply(1, task, *builder.feasible_insertion(1, task))
        assert builder.feasible_insertion(2, task) is None

    def test_first_insertion_pays_nn_inefficiency(self, instance):
        # Definition 6: incentive is rtt - optimal base rtt; the NN
        # backbone's inefficiency is charged on first commitment.
        builder = RouteBuilder(instance)
        task = instance.sensing_tasks[0]
        _, rtt_after, delta = builder.feasible_insertion(1, task)
        worker = instance.worker(1)
        base = builder.incentives.base_rtt(worker)
        assert delta == pytest.approx(
            max(0.0, instance.mu * (rtt_after - base)))

    def test_insertion_at_specific_position(self, instance):
        builder = RouteBuilder(instance)
        task = instance.sensing_tasks[0]
        result = builder.insertion_at(1, task, 0)
        assert result is not None
        rtt_after, delta = result
        assert rtt_after > 0

    def test_insertion_at_infeasible_position(self, instance):
        builder = RouteBuilder(instance)
        # A task whose window has closed by the time any route reaches it
        # from position 1 (after the travel task) may still fit at 0; use
        # budget exhaustion instead for determinism.
        builder.budget_rest = 0.0
        task = instance.sensing_tasks[0]
        assert builder.insertion_at(1, task, 0) is None


class TestClone:
    def test_clone_is_deep_for_mutable_state(self, instance):
        builder = RouteBuilder(instance)
        task = instance.sensing_tasks[0]
        twin = builder.clone()
        twin.apply(1, task, *twin.feasible_insertion(1, task))
        assert not builder.committed(1)
        assert builder.coverage.total == 0
        assert builder.budget_rest == instance.budget

    def test_clone_preserves_values(self, instance):
        builder = RouteBuilder(instance)
        task = instance.sensing_tasks[0]
        builder.apply(1, task, *builder.feasible_insertion(1, task))
        twin = builder.clone()
        assert twin.budget_rest == builder.budget_rest
        assert twin.coverage.phi() == pytest.approx(builder.coverage.phi())


class TestToSolution:
    def test_only_committed_workers_included(self, instance):
        builder = RouteBuilder(instance)
        task = instance.sensing_tasks[0]
        builder.apply(1, task, *builder.feasible_insertion(1, task))
        solution = builder.to_solution("test", 0.1)
        assert set(solution.routes) == {1}
        assert solution.validate() == []

    def test_incentives_recorded(self, instance):
        builder = RouteBuilder(instance)
        task = instance.sensing_tasks[0]
        builder.apply(1, task, *builder.feasible_insertion(1, task))
        solution = builder.to_solution("test", 0.1)
        assert solution.incentives[1] == pytest.approx(
            builder.current_incentive(1))
