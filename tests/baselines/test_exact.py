"""Tests for the exact branch-and-bound USMDW solver."""

import numpy as np
import pytest

from repro.baselines import ExactUSMDWSolver, TCPGSolver, TVPGSolver
from repro.core import (
    CoverageModel,
    Grid,
    Location,
    Region,
    SensingTask,
    TravelTask,
    USMDWInstance,
    Worker,
)
from repro.smore import RatioSelectionRule, SMORESolver
from repro.tsptw import InsertionSolver


def tiny_instance(seed=0, num_tasks=4, num_workers=2, budget=80.0):
    rng = np.random.default_rng(seed)
    grid = Grid(Region(1000, 1000), 4, 4)
    coverage = CoverageModel(grid, 240.0, 60.0)

    workers = []
    for i in range(num_workers):
        origin = Location(rng.uniform(0, 1000), rng.uniform(0, 1000))
        dest = Location(rng.uniform(0, 1000), rng.uniform(0, 1000))
        travel = (TravelTask(i * 10, Location(rng.uniform(0, 1000),
                                              rng.uniform(0, 1000)), 10.0),)
        workers.append(Worker(i + 1, origin, dest, 0.0, 200.0, travel))

    tasks = []
    for k in range(num_tasks):
        slot = int(rng.integers(0, 4))
        tasks.append(SensingTask(
            100 + k, Location(rng.uniform(0, 1000), rng.uniform(0, 1000)),
            slot * 60.0, slot * 60.0 + 60.0, 5.0))
    return USMDWInstance(workers=tuple(workers), sensing_tasks=tuple(tasks),
                         budget=budget, mu=1.0, coverage=coverage)


class TestExactSolver:
    def test_solution_valid(self):
        instance = tiny_instance()
        solution = ExactUSMDWSolver().solve(instance)
        assert solution.validate() == []

    def test_rejects_large_instances(self):
        instance = tiny_instance(num_tasks=4)
        with pytest.raises(ValueError):
            ExactUSMDWSolver(max_tasks=3).solve(instance)
        with pytest.raises(ValueError):
            ExactUSMDWSolver(max_workers=1).solve(instance)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_dominates_all_heuristics(self, seed):
        instance = tiny_instance(seed=seed)
        optimal = ExactUSMDWSolver().solve(instance).objective
        for solver in (TVPGSolver(), TCPGSolver(),
                       SMORESolver(InsertionSolver(), RatioSelectionRule())):
            heuristic = solver.solve(instance).objective
            assert optimal >= heuristic - 1e-9, (seed, solver)

    def test_matches_brute_force_on_micro_instance(self):
        """Cross-check against exhaustive enumeration without pruning."""
        from itertools import product

        from repro.core import IncentiveModel
        from repro.tsptw import ExactDPSolver

        instance = tiny_instance(seed=5, num_tasks=3, num_workers=2)
        planner = ExactDPSolver()
        incentives = IncentiveModel(
            mu=1.0, base_rtt_fn=lambda w: planner.base_route(w).route_travel_time)
        best = 0.0
        worker_ids = [w.worker_id for w in instance.workers]
        for labels in product([0] + worker_ids,
                              repeat=instance.num_sensing_tasks):
            per_worker = {w: [] for w in worker_ids}
            for task, label in zip(instance.sensing_tasks, labels):
                if label:
                    per_worker[label].append(task)
            total_cost = 0.0
            feasible = True
            completed = []
            for worker in instance.workers:
                chosen = per_worker[worker.worker_id]
                if not chosen:
                    continue
                result = planner.plan(worker, chosen)
                if not result.feasible:
                    feasible = False
                    break
                total_cost += incentives.incentive(
                    worker, result.route_travel_time)
                completed.extend(chosen)
            if not feasible or total_cost > instance.budget:
                continue
            best = max(best, instance.coverage.phi(completed))

        solution = ExactUSMDWSolver().solve(instance)
        assert solution.objective == pytest.approx(best, abs=1e-9)

    def test_zero_budget_yields_empty_or_free(self):
        instance = tiny_instance(budget=0.0)
        solution = ExactUSMDWSolver().solve(instance)
        assert solution.total_incentive == 0.0
        assert solution.validate() == []

    def test_time_limit_returns_incumbent(self):
        instance = tiny_instance(num_tasks=6, num_workers=3, budget=150.0)
        solution = ExactUSMDWSolver(time_limit=0.0).solve(instance)
        # Capped immediately: still a valid (possibly empty) solution.
        assert solution.validate() == []
        assert "time-capped" in solution.solver_name
