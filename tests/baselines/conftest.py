"""Shared fixture: a small instance all baselines can solve quickly."""

import pytest

from repro.core import (
    CoverageModel,
    Grid,
    Location,
    Region,
    SensingTask,
    TravelTask,
    USMDWInstance,
    Worker,
)


@pytest.fixture
def instance():
    region = Region(800, 800)
    grid = Grid(region, 4, 4)
    coverage = CoverageModel(grid, time_span=240.0, slot_minutes=60.0, alpha=0.5)
    workers = (
        Worker(1, Location(50, 50), Location(750, 50), 0.0, 150.0,
               (TravelTask(10, Location(400, 50), 10.0),)),
        Worker(2, Location(50, 750), Location(750, 750), 0.0, 150.0,
               (TravelTask(20, Location(400, 750), 10.0),)),
    )
    tasks = tuple(
        SensingTask(100 + k, Location(100 + 110 * k, 120 + 90 * (k % 3)),
                    60.0 * (k % 4), 60.0 * (k % 4) + 60.0, 5.0)
        for k in range(6)
    )
    return USMDWInstance(workers=workers, sensing_tasks=tasks,
                         budget=120.0, mu=1.0, coverage=coverage,
                         name="baseline-test")
