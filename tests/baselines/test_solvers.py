"""Behavioural tests for all baseline solvers."""

import numpy as np
import pytest

from repro.baselines import (
    JDRLSolver,
    MSAConfig,
    MSAGISolver,
    MSASolver,
    RandomSolver,
    TCPGSolver,
    TVPGSolver,
)

FAST_MSA = MSAConfig(num_starts=1, iterations_per_round=40,
                     patience_rounds=1, time_limit=10.0)

ALL_SOLVERS = [
    ("RN", lambda: RandomSolver(seed=1)),
    ("TVPG", TVPGSolver),
    ("TCPG", TCPGSolver),
    ("MSA", lambda: MSASolver(FAST_MSA, seed=2)),
    ("MSAGI", lambda: MSAGISolver(FAST_MSA, seed=2)),
    ("JDRL", lambda: JDRLSolver(seed=3)),
]


@pytest.mark.parametrize("name,factory", ALL_SOLVERS)
class TestAllSolvers:
    def test_solution_valid(self, name, factory, instance):
        solution = factory().solve(instance)
        assert solution.validate() == [], name

    def test_budget_respected(self, name, factory, instance):
        solution = factory().solve(instance)
        assert solution.total_incentive <= instance.budget + 1e-6

    def test_solver_name(self, name, factory, instance):
        solution = factory().solve(instance)
        assert solution.solver_name == name

    def test_wall_time_positive(self, name, factory, instance):
        assert factory().solve(instance).wall_time > 0.0


class TestRandomSolver:
    def test_deterministic_given_seed(self, instance):
        a = RandomSolver(seed=7).solve(instance)
        b = RandomSolver(seed=7).solve(instance)
        assert a.objective == pytest.approx(b.objective)

    def test_different_seeds_differ(self, instance):
        objectives = {round(RandomSolver(seed=s).solve(instance).objective, 6)
                      for s in range(6)}
        assert len(objectives) > 1

    def test_terminates_on_max_failures(self, instance):
        solver = RandomSolver(seed=0, max_failures=5)
        solution = solver.solve(instance)  # must not hang
        assert solution is not None


class TestGreedySolvers:
    def test_tvpg_selects_max_gain_first(self, instance):
        solution = TVPGSolver().solve(instance)
        assert solution.num_completed >= 1

    def test_tcpg_no_worse_count_than_tvpg(self, instance):
        # Cost-first fills at least as many tasks on a budget-bound instance.
        tvpg = TVPGSolver().solve(instance)
        tcpg = TCPGSolver().solve(instance)
        assert tcpg.num_completed >= tvpg.num_completed - 1

    def test_greedy_beats_random(self, instance):
        greedy = TVPGSolver().solve(instance).objective
        rand = np.mean([RandomSolver(seed=s).solve(instance).objective
                        for s in range(3)])
        assert greedy >= rand - 1e-9


class TestMSA:
    def test_msagi_at_least_greedy(self, instance):
        # Greedy-initialised annealing never returns below its start.
        greedy = TVPGSolver().solve(instance).objective
        msagi = MSAGISolver(FAST_MSA, seed=2).solve(instance).objective
        assert msagi >= greedy - 1e-6

    def test_deterministic_given_seed(self, instance):
        a = MSASolver(FAST_MSA, seed=5).solve(instance)
        b = MSASolver(FAST_MSA, seed=5).solve(instance)
        assert a.objective == pytest.approx(b.objective)

    def test_respects_time_limit(self, instance):
        config = MSAConfig(num_starts=3, iterations_per_round=10_000,
                           patience_rounds=100, time_limit=1.0)
        solution = MSASolver(config, seed=0).solve(instance)
        assert solution.wall_time < 5.0


class TestJDRL:
    def test_pretrain_reduces_loss(self, instance):
        solver = JDRLSolver(seed=0)
        losses = solver.pretrain([instance], iterations=20, lr=3e-2)
        assert len(losses) > 0
        assert np.mean(losses[-4:]) <= np.mean(losses[:4]) + 1e-6

    def test_pretrained_solver_still_valid(self, instance):
        solver = JDRLSolver(seed=0)
        solver.pretrain([instance], iterations=5)
        assert solver.solve(instance).validate() == []

    def test_epsilon_randomises(self, instance):
        greedy = JDRLSolver(seed=0, epsilon=0.0).solve(instance).objective
        noisy = {round(JDRLSolver(seed=s, epsilon=0.9).solve(instance).objective, 6)
                 for s in range(4)}
        assert len(noisy) > 1 or greedy in noisy
