"""Partitioner property tests (ISSUE 10 satellite).

Properties pinned over both methods, several shard counts and seeds:
every task and worker lands in exactly one shard, boundary sets are
symmetric, boundary tasks sit within the margin of the shared segment,
and ``ShardPlan.validate`` agrees.
"""

import numpy as np
import pytest

from repro.datasets.instances import (
    InstanceOptions,
    generate_instance,
    generator_for,
)
from repro.shard import (
    default_margin,
    partition_instance,
    sub_instance,
)


@pytest.fixture(scope="module")
def instances():
    built = []
    for seed, dataset in ((3, "delivery"), (11, "tourism")):
        options = InstanceOptions(num_workers=10)
        built.append(generate_instance(generator_for(dataset), options,
                                       np.random.default_rng(seed)))
    return built


METHODS = ("grid", "kd")
SHARD_COUNTS = (1, 2, 3, 4, 6)


class TestMembership:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_every_task_in_exactly_one_shard(self, instances, method,
                                             num_shards):
        for instance in instances:
            plan = partition_instance(instance, num_shards, method=method)
            assigned = [tid for shard in plan.shards
                        for tid in shard.task_ids]
            assert len(assigned) == len(set(assigned))
            assert set(assigned) == \
                {t.task_id for t in instance.sensing_tasks}

    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_every_worker_in_exactly_one_shard(self, instances, method,
                                               num_shards):
        for instance in instances:
            plan = partition_instance(instance, num_shards, method=method)
            assigned = [wid for shard in plan.shards
                        for wid in shard.worker_ids]
            assert len(assigned) == len(set(assigned))
            assert set(assigned) == {w.worker_id for w in instance.workers}

    @pytest.mark.parametrize("method", METHODS)
    def test_single_shard_holds_everything(self, instances, method):
        for instance in instances:
            plan = partition_instance(instance, 1, method=method)
            assert len(plan.shards) == 1
            assert plan.shards[0].num_tasks == instance.num_sensing_tasks
            assert plan.shards[0].num_workers == instance.num_workers
            assert plan.boundary_task_ids() == ()


class TestBoundaries:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("num_shards", (2, 3, 4, 6))
    def test_boundary_sets_symmetric(self, instances, method, num_shards):
        for instance in instances:
            plan = partition_instance(instance, num_shards, method=method)
            for a in range(len(plan.shards)):
                for b in range(len(plan.shards)):
                    assert plan.boundary_between(a, b) == \
                        plan.boundary_between(b, a)

    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("num_shards", (2, 4))
    def test_boundary_tasks_belong_to_the_pair(self, instances, method,
                                               num_shards):
        for instance in instances:
            plan = partition_instance(instance, num_shards, method=method)
            for (a, b), task_ids in plan.boundary.items():
                members = set(plan.shards[a].task_ids) | \
                    set(plan.shards[b].task_ids)
                assert set(task_ids) <= members

    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_validate_clean(self, instances, method, num_shards):
        for instance in instances:
            plan = partition_instance(instance, num_shards, method=method)
            assert plan.validate() == []

    def test_margin_override(self, instances):
        instance = instances[0]
        wide = partition_instance(instance, 2, margin=400.0)
        narrow = partition_instance(instance, 2, margin=1.0)
        assert wide.margin == 400.0
        assert len(wide.boundary_task_ids()) >= \
            len(narrow.boundary_task_ids())

    def test_default_margin_scales_down_with_shards(self, instances):
        region = instances[0].coverage.grid.region
        assert default_margin(region, 4) < default_margin(region, 1)


class TestSubInstances:
    @pytest.mark.parametrize("method", METHODS)
    def test_sub_instance_slices_cleanly(self, instances, method):
        instance = instances[0]
        plan = partition_instance(instance, 4, method=method)
        for shard in plan.shards:
            sub = sub_instance(instance, shard, budget=50.0)
            assert sub.budget == 50.0
            assert sub.mu == instance.mu
            assert sub.coverage is instance.coverage
            assert {t.task_id for t in sub.sensing_tasks} == \
                set(shard.task_ids)
            assert {w.worker_id for w in sub.workers} == \
                set(shard.worker_ids)
            assert sub.name.startswith(instance.name)

    def test_invalid_shard_count_rejected(self, instances):
        with pytest.raises(ValueError):
            partition_instance(instances[0], 0)

    def test_unknown_method_rejected(self, instances):
        with pytest.raises(ValueError):
            partition_instance(instances[0], 2, method="voronoi")
