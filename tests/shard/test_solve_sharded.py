"""solve_sharded: P=1 bit-identity, merge invariants, pool/serial parity."""

import numpy as np
import pytest

from repro.core.incentive import IncentiveModel
from repro.datasets.instances import (
    InstanceOptions,
    generate_instance,
    generator_for,
)
from repro.parallel import PersistentPool, fork_available
from repro.shard import ShardReport, solve_sharded
from repro.smore.solver import GreedySelectionRule, SMORESolver
from repro.tsptw.insertion import InsertionSolver

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="platform lacks fork")


@pytest.fixture(scope="module")
def instance():
    options = InstanceOptions(num_workers=12)
    return generate_instance(generator_for("delivery"), options,
                             np.random.default_rng(3))


@pytest.fixture(scope="module")
def solver(instance):
    return SMORESolver(InsertionSolver(speed=instance.speed),
                       GreedySelectionRule())


@pytest.fixture(scope="module")
def unsharded(solver, instance):
    return solver.solve(instance)


def routes_signature(solution):
    return {wid: tuple(t.task_id for t in route.tasks)
            for wid, route in solution.routes.items()}


def incentive_model_for(instance):
    planner = InsertionSolver(speed=instance.speed)
    model = IncentiveModel(mu=instance.mu)
    for worker in instance.workers:
        model.set_base_rtt(worker,
                           planner.plan(worker, []).route_travel_time)
    return model


class TestSingleShardIdentity:
    def test_bit_identical_to_unsharded(self, solver, instance, unsharded):
        sharded = solve_sharded(solver, instance, 1)
        assert routes_signature(sharded) == routes_signature(unsharded)
        assert sharded.incentives == unsharded.incentives
        assert sharded.objective == unsharded.objective

    def test_solver_entry_point_matches(self, solver, instance, unsharded):
        via_solver = solver.solve(instance, shards=1)
        assert routes_signature(via_solver) == routes_signature(unsharded)
        assert via_solver.incentives == unsharded.incentives

    def test_report_attached(self, solver, instance):
        sharded = solve_sharded(solver, instance, 1)
        report = sharded.shard_report
        assert isinstance(report, ShardReport)
        assert report.num_shards == 1
        assert report.budget_shares == (instance.budget,)


class TestMergedInvariants:
    @pytest.mark.parametrize("method", ("grid", "kd"))
    @pytest.mark.parametrize("num_shards", (2, 4))
    def test_merged_solution_validates(self, solver, instance, method,
                                       num_shards):
        solution = solve_sharded(solver, instance, num_shards,
                                 method=method)
        assert solution.validate(incentive_model_for(instance)) == []
        assert solution.total_incentive <= instance.budget + 1e-6

    def test_budget_shares_sum_to_budget(self, solver, instance):
        solution = solve_sharded(solver, instance, 4)
        report = solution.shard_report
        assert sum(report.budget_shares) == pytest.approx(instance.budget)
        assert report.num_shards == 4
        assert report.phi_after_repair >= report.phi_before_repair - 1e-12
        assert report.phi_after_repair == pytest.approx(solution.objective)

    def test_coverage_close_to_unsharded(self, solver, instance, unsharded):
        # Small instance, so allow more slack than the city-scale 2% gate
        # (benchmarks/test_shard_regression.py pins that one).
        solution = solve_sharded(solver, instance, 2)
        gap = (unsharded.objective - solution.objective) \
            / unsharded.objective
        assert gap <= 0.05

    def test_repair_can_be_disabled(self, solver, instance):
        repaired = solve_sharded(solver, instance, 4)
        raw = solve_sharded(solver, instance, 4, repair=False)
        assert raw.shard_report.repair_added == 0
        assert repaired.objective >= raw.objective - 1e-12

    def test_via_solver_entry_point(self, solver, instance):
        solution = solver.solve(instance, shards=3, shard_method="kd")
        assert solution.shard_report.num_shards == 3
        assert solution.validate(incentive_model_for(instance)) == []


class TestDeterminism:
    def test_greedy_is_deterministic(self, solver, instance):
        a = solve_sharded(solver, instance, 3)
        b = solve_sharded(solver, instance, 3)
        assert routes_signature(a) == routes_signature(b)
        assert a.incentives == b.incentives

    def test_seeded_sampling_is_deterministic(self, solver, instance):
        a = solve_sharded(solver, instance, 3, greedy=False,
                          rng=np.random.default_rng(7), num_samples=2)
        b = solve_sharded(solver, instance, 3, greedy=False,
                          rng=np.random.default_rng(7), num_samples=2)
        assert routes_signature(a) == routes_signature(b)
        assert a.objective == b.objective


@needs_fork
class TestPoolPath:
    def test_pool_matches_serial(self, solver, instance):
        serial = solve_sharded(solver, instance, 4)
        with PersistentPool(workers=2) as pool:
            pooled = solve_sharded(solver, instance, 4, pool=pool)
        assert pooled.shard_report.used_pool
        assert routes_signature(pooled) == routes_signature(serial)
        assert pooled.incentives == serial.incentives
        assert pooled.objective == serial.objective

    def test_pool_reused_across_solves(self, solver, instance):
        with PersistentPool(workers=2) as pool:
            first = solve_sharded(solver, instance, 4, pool=pool)
            assert pool.started
            pids = set(pool.pids())
            second = solve_sharded(solver, instance, 4, method="kd",
                                   pool=pool)
            assert set(pool.pids()) == pids
        assert first.shard_report.used_pool
        assert second.shard_report.used_pool

    def test_seeded_pool_matches_serial(self, solver, instance):
        serial = solve_sharded(solver, instance, 3, greedy=False,
                               rng=np.random.default_rng(5), num_samples=2)
        with PersistentPool(workers=2) as pool:
            pooled = solve_sharded(solver, instance, 3, greedy=False,
                                   rng=np.random.default_rng(5),
                                   num_samples=2, pool=pool)
        assert routes_signature(pooled) == routes_signature(serial)
        assert pooled.objective == serial.objective


class TestArguments:
    def test_invalid_shard_count(self, solver, instance):
        with pytest.raises(ValueError):
            solve_sharded(solver, instance, 0)

    def test_report_serialises(self, solver, instance):
        report = solve_sharded(solver, instance, 2).shard_report
        payload = report.to_dict()
        assert payload["num_shards"] == 2
        assert len(payload["shard_tasks"]) == 2
