"""Shared fixtures for SMORE tests: a small, fully controlled instance."""

import numpy as np
import pytest

from repro.core import (
    CoverageModel,
    Grid,
    Location,
    Region,
    SensingTask,
    TravelTask,
    USMDWInstance,
    Worker,
)
from repro.smore import TASNet, TASNetConfig, TASNetPolicy
from repro.tsptw import InsertionSolver

GRID_NX, GRID_NY = 4, 4


@pytest.fixture
def small_instance():
    """2 workers, 6 sensing tasks, tight but solvable."""
    region = Region(800, 800)
    grid = Grid(region, GRID_NX, GRID_NY)
    coverage = CoverageModel(grid, time_span=240.0, slot_minutes=60.0, alpha=0.5)
    workers = (
        Worker(1, Location(50, 50), Location(750, 50), 0.0, 120.0,
               (TravelTask(10, Location(400, 50), 10.0),)),
        Worker(2, Location(50, 750), Location(750, 750), 0.0, 120.0,
               (TravelTask(20, Location(400, 750), 10.0),)),
    )
    tasks = tuple(
        SensingTask(100 + k, Location(100 + 120 * k, 100 + 100 * (k % 3)),
                    60.0 * (k % 4), 60.0 * (k % 4) + 60.0, 5.0)
        for k in range(6)
    )
    return USMDWInstance(workers=workers, sensing_tasks=tasks,
                         budget=100.0, mu=1.0, coverage=coverage,
                         name="small")


@pytest.fixture
def planner():
    return InsertionSolver()


@pytest.fixture
def tasnet():
    config = TASNetConfig(d_model=8, num_heads=2, num_layers=1, conv_channels=2)
    return TASNet(config, GRID_NX, GRID_NY, rng=np.random.default_rng(0))


@pytest.fixture
def policy(tasnet):
    return TASNetPolicy(tasnet)
