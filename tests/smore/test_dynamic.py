"""Dynamic selection environment: streaming arrivals, expiries, locks.

Covers the episode mechanics (accounting, termination, lock monotonicity,
dead-on-arrival handling, late workers), the equivalence of repair and
per-epoch rebuild at the episode level, the static-schedule degeneration
to the classic solver, and solve_dynamic's serial-vs-pool determinism.
"""

import numpy as np
import pytest

from repro.datasets import (
    InstanceOptions,
    burst_arrivals,
    generate_instances,
    poisson_arrivals,
)
from repro.datasets.dynamic import ArrivalSchedule, TaskArrival
from repro.smore import (
    DynamicSelectionEnv,
    GreedySelectionRule,
    SMORESolver,
    run_dynamic_episode,
)
from repro.tsptw import InsertionSolver
from repro.tsptw.cache import CachedPlanner


def _instance(seed=3, density=0.05, workers=4):
    return generate_instances(
        "delivery", 1, seed=seed,
        options=InstanceOptions(task_density=density,
                                num_workers=workers))[0]


def _episode(instance, schedule, repair=True, **env_kwargs):
    planner = CachedPlanner(InsertionSolver(speed=instance.speed))
    env = DynamicSelectionEnv(instance, planner, schedule, repair=repair,
                              **env_kwargs)
    state, reward = run_dynamic_episode(env, GreedySelectionRule())
    return env, state, reward


# --------------------------------------------------------------------- #
# Episode accounting and termination
# --------------------------------------------------------------------- #
def test_every_arrived_task_selected_or_rejected():
    instance = _instance()
    schedule = poisson_arrivals(instance, np.random.default_rng(0),
                                initial_fraction=0.5)
    _, state, _ = _episode(instance, schedule)
    assert state.done
    assert not state.unselected and not state.pending_arrivals
    selected = {t.task_id for t in state.selected}
    rejected = set(state.rejected)
    assert not selected & rejected
    assert state.arrived == len(schedule.arrivals)
    assert len(selected) + len(rejected) == state.arrived


def test_positive_coverage_and_events():
    instance = _instance()
    schedule = burst_arrivals(instance, np.random.default_rng(1),
                              initial_fraction=0.3)
    _, state, reward = _episode(instance, schedule)
    assert state.events > 0
    assert reward == pytest.approx(state.phi())
    assert state.phi() > 0


def test_locks_monotonic_and_budget_respected():
    instance = _instance()
    schedule = poisson_arrivals(instance, np.random.default_rng(2))
    planner = CachedPlanner(InsertionSolver(speed=instance.speed))
    env = DynamicSelectionEnv(instance, planner, schedule)
    policy = GreedySelectionRule()
    state = env.reset()
    policy.begin_episode(instance)
    seen_locks = {w.worker_id: 0 for w in instance.workers}
    while True:
        while not state.candidates.empty:
            action = policy.act(state)
            state, _, _ = env.step_state(state, action.worker_id,
                                         action.task_id)
            assert state.budget_rest >= 0.0
        if not env.advance(state):
            break
        for worker_id, lock in state.locks.items():
            assert lock >= seen_locks[worker_id], "locks must only advance"
            seen_locks[worker_id] = lock
    assert any(lock > 0 for lock in seen_locks.values())


def test_committed_prefix_never_reordered():
    """Once a worker departs toward a stop, later plans keep that prefix."""
    instance = _instance(seed=11)
    schedule = poisson_arrivals(instance, np.random.default_rng(3),
                                initial_fraction=0.5)
    planner = CachedPlanner(InsertionSolver(speed=instance.speed))
    env = DynamicSelectionEnv(instance, planner, schedule)
    policy = GreedySelectionRule()
    state = env.reset()
    policy.begin_episode(instance)
    committed: dict[int, list] = {}
    while True:
        while not state.candidates.empty:
            action = policy.act(state)
            state, _, _ = env.step_state(state, action.worker_id,
                                         action.task_id)
        if not env.advance(state):
            break
        for worker_id, lock in state.locks.items():
            route = env._committed_route(state, worker_id)
            if route is None:
                continue
            prefix = [t.task_id for t in route.tasks[:lock]]
            old = committed.get(worker_id, [])
            assert prefix[:len(old)] == old, \
                "a committed stop was reordered or dropped"
            committed[worker_id] = prefix


def test_dead_on_arrival_is_rejected():
    instance = _instance()
    task = instance.sensing_tasks[0]
    arrival = max(task.tw_start, 1.0)
    schedule = ArrivalSchedule(
        horizon=instance.coverage.time_span,
        arrivals=(TaskArrival(task.task_id, arrival, arrival),))
    _, state, _ = _episode(instance, schedule)
    assert state.rejected == [task.task_id]
    assert not state.selected


def test_zero_pressure_schedule_matches_static_solver():
    """All tasks at t=0 with full windows: the dynamic episode's selection
    decisions are exactly the static solver's."""
    instance = _instance(seed=7)
    records = tuple(TaskArrival(s.task_id, 0.0, s.tw_end)
                    for s in instance.sensing_tasks)
    schedule = ArrivalSchedule(horizon=instance.coverage.time_span,
                               arrivals=records)
    _, state, _ = _episode(instance, schedule)

    static = SMORESolver(CachedPlanner(InsertionSolver(
        speed=instance.speed)), GreedySelectionRule()).solve(instance)
    assert state.phi() == static.objective
    routes = {w: [t.task_id for t in r.tasks]
              for w, r in state.assignments.routes().items()}
    static_routes = {w: [t.task_id for t in r.tasks]
                     for w, r in static.routes.items()}
    assert routes == static_routes


# --------------------------------------------------------------------- #
# Repair vs rebuild, late workers, solver surface
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("make_schedule", [poisson_arrivals, burst_arrivals])
def test_repair_equals_rebuild_episode(make_schedule):
    instance = _instance(seed=5)
    schedule = make_schedule(instance, np.random.default_rng(9),
                             initial_fraction=0.4)
    _, repaired, _ = _episode(instance, schedule, repair=True)
    _, rebuilt, _ = _episode(instance, schedule, repair=False)
    assert repaired.phi() == rebuilt.phi()
    assert [t.task_id for t in repaired.selected] == \
        [t.task_id for t in rebuilt.selected]
    assert repaired.rejected == rebuilt.rejected
    assert repaired.events == rebuilt.events


def test_late_worker_joins_and_contributes():
    instance = _instance(seed=13, workers=3)
    late = instance.workers[-1].worker_id
    schedule = poisson_arrivals(instance, np.random.default_rng(4),
                                initial_fraction=0.6)
    late_at = {late: 30.0}
    _, with_late, _ = _episode(instance, schedule, worker_arrivals=late_at)
    # Before its arrival epoch the late worker holds no assignments made
    # at t=0; afterwards it participates normally.
    assert late in with_late.locks
    _, rebuilt, _ = _episode(instance, schedule, repair=False,
                             worker_arrivals=late_at)
    assert with_late.phi() == rebuilt.phi()
    assert with_late.rejected == rebuilt.rejected


def test_solve_dynamic_accounting_and_result():
    instance = _instance(seed=17)
    schedule = poisson_arrivals(instance, np.random.default_rng(6),
                                initial_fraction=0.5, ttl=40.0)
    solver = SMORESolver(CachedPlanner(InsertionSolver(
        speed=instance.speed)), GreedySelectionRule())
    result = solver.solve_dynamic(instance, schedule)
    assert result.arrived == len(schedule.arrivals)
    assert len(result.selected_ids) + len(result.rejected_ids) \
        == result.arrived
    assert 0.0 <= result.rejection_rate <= 1.0
    assert result.events > 0
    assert result.perf.planner_calls > 0
    assert set(result.routes) <= {w.worker_id for w in instance.workers}


def test_solve_dynamic_serial_equals_pool():
    """Sampled dynamic decoding: workers=4 must match workers=1 exactly."""
    instance = _instance(seed=19, density=0.03)
    schedule = poisson_arrivals(instance, np.random.default_rng(8),
                                initial_fraction=0.5)

    def run(workers):
        solver = SMORESolver(CachedPlanner(InsertionSolver(
            speed=instance.speed)), GreedySelectionRule())
        return solver.solve_dynamic(
            instance, schedule, num_samples=4, workers=workers,
            rng=np.random.default_rng(123))

    serial = run(1)
    pooled = run(4)
    assert serial.phi == pooled.phi
    assert serial.selected_ids == pooled.selected_ids
    assert serial.rejected_ids == pooled.rejected_ids
    assert serial.incentives == pooled.incentives


def test_schedule_validation():
    instance = _instance()
    with pytest.raises(ValueError):
        ArrivalSchedule(horizon=100.0, arrivals=(
            TaskArrival(0, 0.0, 10.0), TaskArrival(0, 5.0, 10.0)))
    with pytest.raises(ValueError):
        TaskArrival(0, 10.0, 5.0)
    bogus = ArrivalSchedule(horizon=100.0,
                            arrivals=(TaskArrival(10 ** 9, 0.0, 10.0),))
    with pytest.raises(ValueError):
        bogus.validate(instance)
    with pytest.raises(ValueError):
        DynamicSelectionEnv(instance, InsertionSolver(speed=instance.speed),
                            poisson_arrivals(instance,
                                             np.random.default_rng(0)),
                            worker_arrivals={10 ** 9: 5.0})
