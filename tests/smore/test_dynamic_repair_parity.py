"""Property test: incremental repair is row-identical to a fresh rebuild.

The tentpole invariant of the dynamic environment: after every event
epoch, the incrementally repaired candidate table must equal — same
worker order, same row key order, same route travel times, same
incentive deltas, same recorded insertion positions — a from-scratch
anchored build over the current task pool and committed worker states.

The sweep runs 200+ randomized configurations: seeds x arrival process x
planner backend (vectorized kernels on/off) x memoised vs. raw planner.
Each configuration replays a full greedy dynamic episode and checks the
invariant at every epoch, so arrivals, expiries, mid-route re-anchoring
and within-episode selection all hit the repair paths.
"""

import numpy as np
import pytest

from repro.datasets import (
    InstanceOptions,
    burst_arrivals,
    generate_instances,
    poisson_arrivals,
)
from repro.smore import DynamicSelectionEnv, GreedySelectionRule
from repro.smore.candidates import CandidateTable
from repro.tsptw import InsertionSolver
from repro.tsptw.cache import CachedPlanner

SEEDS = range(25)
SCHEDULES = {"poisson": poisson_arrivals, "burst": burst_arrivals}
BACKENDS = {
    "kernels": lambda speed: InsertionSolver(speed=speed, use_kernels=True),
    "object": lambda speed: InsertionSolver(speed=speed, use_kernels=False),
    "cached-kernels": lambda speed: CachedPlanner(
        InsertionSolver(speed=speed, use_kernels=True)),
    "cached-object": lambda speed: CachedPlanner(
        InsertionSolver(speed=speed, use_kernels=False)),
}
# 25 seeds x 2 schedules x 4 backends = 200 configurations.
CONFIGS = [(seed, sched, backend) for seed in SEEDS
           for sched in SCHEDULES for backend in BACKENDS]


def _instance(seed):
    rng = np.random.default_rng(seed)
    return generate_instances(
        "delivery", 1, seed=seed,
        options=InstanceOptions(task_density=0.015 + 0.01 * rng.random(),
                                num_workers=2 + int(rng.integers(3))))[0]


def _assert_tables_identical(repaired: CandidateTable,
                             reference: CandidateTable, context: str):
    assert list(repaired._table) == list(reference._table), \
        f"worker order diverged ({context})"
    for worker_id, ref_row in reference._table.items():
        row = repaired._table[worker_id]
        assert list(row) == list(ref_row), \
            f"row key order diverged for worker {worker_id} ({context})"
        for task_id, ref_entry in ref_row.items():
            entry = row[task_id]
            assert entry.route_travel_time == ref_entry.route_travel_time, \
                f"rtt diverged at C[{worker_id}][{task_id}] ({context})"
            assert entry.delta_incentive == ref_entry.delta_incentive, \
                f"delta diverged at C[{worker_id}][{task_id}] ({context})"
            if entry.position is not None and ref_entry.position is not None:
                assert entry.position == ref_entry.position, \
                    f"position diverged at C[{worker_id}][{task_id}] " \
                    f"({context})"
    assert repaired._task_workers == reference._task_workers, \
        f"reverse index diverged ({context})"
    assert repaired._nonempty == reference._nonempty, \
        f"nonempty index diverged ({context})"


def _reference_table(env: DynamicSelectionEnv, state) -> CandidateTable:
    reference = CandidateTable(env.planner, env.incentives)
    reference.rebuild(env._worker_states(state, stranded=True),
                      list(state.unselected.values()), state.budget_rest)
    return reference


@pytest.mark.parametrize("seed,schedule_kind,backend", CONFIGS)
def test_repair_row_identical_to_rebuild(seed, schedule_kind, backend):
    instance = _instance(seed)
    schedule = SCHEDULES[schedule_kind](
        instance, np.random.default_rng(1000 + seed),
        initial_fraction=0.3 + 0.05 * (seed % 5))
    planner = BACKENDS[backend](instance.speed)
    env = DynamicSelectionEnv(instance, planner, schedule, repair=True)
    policy = GreedySelectionRule()
    state = env.reset()
    policy.begin_episode(instance)
    epochs_checked = 0
    while True:
        _assert_tables_identical(state.candidates,
                                 _reference_table(env, state),
                                 f"epoch t={state.now:g}")
        while not state.candidates.empty:
            action = policy.act(state)
            state, _, _ = env.step_state(state, action.worker_id,
                                         action.task_id)
        if not env.advance(state):
            break
        epochs_checked += 1
    assert epochs_checked > 0, "schedule produced no events to repair over"
    assert len(state.selected) + len(state.rejected) == state.arrived
