"""Tests for TASNetPolicy and FlatSelectionPolicy over the real MDP."""

import numpy as np
import pytest

from repro import nn
from repro.smore import (
    FlatSelectionNet,
    FlatSelectionPolicy,
    SelectionEnv,
    TASNetConfig,
    sensing_task_features,
    worker_travel_grid,
)

from .conftest import GRID_NX, GRID_NY


class TestFeaturisation:
    def test_worker_grid_values(self, small_instance):
        worker = small_instance.workers[0]
        grid = worker_travel_grid(small_instance, worker)
        assert grid.shape == (GRID_NX, GRID_NY)
        values = set(np.unique(grid).tolist())
        assert values.issubset({0.0, 1 / 3, 2 / 3, 1.0})
        assert (grid == 1 / 3).sum() >= 1  # origin marked

    def test_travel_tasks_override_endpoints(self, small_instance):
        worker = small_instance.workers[0]
        grid = worker_travel_grid(small_instance, worker)
        coverage_grid = small_instance.coverage.grid
        for task in worker.travel_tasks:
            i, j = coverage_grid.cell_of(task.location)
            assert grid[i, j] == pytest.approx(1.0)

    def test_task_features_normalised(self, small_instance):
        features = sensing_task_features(small_instance)
        assert features.shape == (small_instance.num_sensing_tasks, 4)
        assert features.min() >= 0.0
        assert features.max() <= 1.0 + 1e-9


class TestTASNetPolicy:
    def test_act_before_begin_raises(self, policy, small_instance, planner):
        env = SelectionEnv(small_instance, planner)
        state = env.reset()
        with pytest.raises(RuntimeError):
            policy.act(state)

    def test_act_returns_feasible_pair(self, policy, small_instance, planner):
        env = SelectionEnv(small_instance, planner)
        state = env.reset()
        policy.begin_episode(small_instance)
        action = policy.act(state)
        assert state.candidates.get(action.worker_id, action.task_id) is not None

    def test_greedy_deterministic(self, policy, small_instance, planner):
        env = SelectionEnv(small_instance, planner)
        state = env.reset()
        policy.begin_episode(small_instance)
        a = policy.act(state, greedy=True)
        b = policy.act(state, greedy=True)
        assert (a.worker_id, a.task_id) == (b.worker_id, b.task_id)

    def test_log_prob_is_log_probability(self, policy, small_instance, planner):
        env = SelectionEnv(small_instance, planner)
        state = env.reset()
        policy.begin_episode(small_instance)
        action = policy.act(state, greedy=False, rng=np.random.default_rng(0))
        assert action.log_prob.item() <= 0.0

    def test_log_prob_of_matches_act(self, policy, small_instance, planner):
        env = SelectionEnv(small_instance, planner)
        state = env.reset()
        policy.begin_episode(small_instance)
        action = policy.act(state, greedy=True)
        recomputed = policy.log_prob_of(state, action.worker_id, action.task_id)
        assert recomputed.item() == pytest.approx(action.log_prob.item())

    def test_full_episode_runs(self, policy, small_instance, planner):
        env = SelectionEnv(small_instance, planner)
        state = env.reset()
        policy.begin_episode(small_instance)
        steps = 0
        while not state.done and steps < 100:
            action = policy.act(state)
            state, _, _ = env.step(action.worker_id, action.task_id)
            steps += 1
        assert state.done

    def test_gradients_flow_through_episode(self, policy, small_instance,
                                            planner):
        env = SelectionEnv(small_instance, planner)
        state = env.reset()
        policy.begin_episode(small_instance)
        total = None
        rng = np.random.default_rng(0)
        while not state.done:
            action = policy.act(state, greedy=False, rng=rng)
            total = (action.log_prob if total is None
                     else total + action.log_prob)
            state, _, _ = env.step(action.worker_id, action.task_id)
        assert total is not None
        total.backward()
        grads = [p for p in policy.parameters() if p.grad is not None
                 and np.any(p.grad != 0)]
        assert grads, "no nonzero gradients reached TASNet parameters"


class TestFlatSelectionPolicy:
    @pytest.fixture
    def flat_policy(self):
        config = TASNetConfig(d_model=8, num_heads=2, num_layers=1,
                              conv_channels=2)
        net = FlatSelectionNet(config, GRID_NX, GRID_NY,
                               rng=np.random.default_rng(1))
        return FlatSelectionPolicy(net)

    def test_act_returns_feasible_pair(self, flat_policy, small_instance,
                                       planner):
        env = SelectionEnv(small_instance, planner)
        state = env.reset()
        flat_policy.begin_episode(small_instance)
        action = flat_policy.act(state)
        assert state.candidates.get(action.worker_id, action.task_id) is not None

    def test_log_prob_of(self, flat_policy, small_instance, planner):
        env = SelectionEnv(small_instance, planner)
        state = env.reset()
        flat_policy.begin_episode(small_instance)
        action = flat_policy.act(state, greedy=True)
        lp = flat_policy.log_prob_of(state, action.worker_id, action.task_id)
        assert lp.item() == pytest.approx(action.log_prob.item())

    def test_full_episode(self, flat_policy, small_instance, planner):
        env = SelectionEnv(small_instance, planner)
        state = env.reset()
        flat_policy.begin_episode(small_instance)
        while not state.done:
            action = flat_policy.act(state)
            state, _, _ = env.step(action.worker_id, action.task_id)
        assert state.done
