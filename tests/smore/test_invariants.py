"""Property-based invariants of the selection environment.

At every step of every episode, regardless of policy: the candidate table
contains only feasible, affordable pairs; the budget never goes negative;
the coverage state equals the batch recomputation; and committed routes
stay feasible.  These are the invariants Algorithm 1's correctness rests
on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CoverageModel,
    Grid,
    IncentiveModel,
    Location,
    Region,
    SensingTask,
    TravelTask,
    USMDWInstance,
    Worker,
)
from repro.smore import SelectionEnv
from repro.tsptw import InsertionSolver


def random_instance(seed: int) -> USMDWInstance:
    rng = np.random.default_rng(seed)
    grid = Grid(Region(1000, 1000), 4, 4)
    coverage = CoverageModel(grid, 240.0, 60.0,
                             alpha=float(rng.choice([0.2, 0.5, 0.8])))
    workers = []
    for i in range(int(rng.integers(1, 4))):
        origin = Location(rng.uniform(0, 1000), rng.uniform(0, 1000))
        dest = Location(rng.uniform(0, 1000), rng.uniform(0, 1000))
        k = int(rng.integers(0, 3))
        travel = tuple(
            TravelTask(i * 10 + m,
                       Location(rng.uniform(0, 1000), rng.uniform(0, 1000)),
                       10.0)
            for m in range(k))
        workers.append(Worker(i + 1, origin, dest, 0.0,
                              float(rng.uniform(80, 240)), travel))
    tasks = []
    for k in range(int(rng.integers(3, 9))):
        slot = int(rng.integers(0, 4))
        tasks.append(SensingTask(
            100 + k, Location(rng.uniform(0, 1000), rng.uniform(0, 1000)),
            slot * 60.0, slot * 60.0 + 60.0, 5.0))
    return USMDWInstance(workers=tuple(workers), sensing_tasks=tuple(tasks),
                         budget=float(rng.uniform(30, 150)), mu=1.0,
                         coverage=coverage)


def check_invariants(instance: USMDWInstance, state) -> None:
    # 1. Every candidate entry is feasible and affordable.
    for worker in instance.workers:
        for task_id, entry in state.candidates.worker_candidates(
                worker.worker_id).items():
            assert entry.delta_incentive < state.budget_rest + 1e-9
            timing = entry.route.simulate()
            assert timing.feasible
            assert entry.route.covers_all_travel_tasks()
    # 2. Budget conservation.
    assert state.budget_rest >= -1e-9
    spent = state.assignments.total_incentive()
    assert spent + state.budget_rest == pytest.approx(instance.budget)
    # 3. Incremental coverage equals batch recomputation.
    assert state.coverage.phi() == pytest.approx(
        instance.coverage.phi(state.selected))
    # 4. Committed routes are feasible and contain exactly the assignment.
    for slot in state.assignments:
        if slot.route is None:
            assert slot.assigned == []
            continue
        assert slot.route.simulate().feasible
        assert ({t.task_id for t in slot.route.sensing_tasks}
                == {t.task_id for t in slot.assigned})


class TestEnvironmentInvariants:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 10_000))
    def test_invariants_hold_throughout_random_episodes(self, seed):
        instance = random_instance(seed)
        env = SelectionEnv(instance, InsertionSolver())
        state = env.reset()
        check_invariants(instance, state)
        rng = np.random.default_rng(seed + 1)
        steps = 0
        while not state.done and steps < 50:
            worker_id = state.feasible_worker_ids()[
                int(rng.integers(0, len(state.feasible_worker_ids())))]
            candidates = sorted(state.candidates.worker_candidates(worker_id))
            task_id = candidates[int(rng.integers(0, len(candidates)))]
            state, reward, _ = env.step(worker_id, task_id)
            check_invariants(instance, state)
            steps += 1

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_episode_total_reward_equals_final_phi(self, seed):
        instance = random_instance(seed)
        env = SelectionEnv(instance, InsertionSolver())
        state = env.reset()
        total = 0.0
        while not state.done:
            worker_id = state.feasible_worker_ids()[0]
            task_id = sorted(state.candidates.worker_candidates(worker_id))[0]
            state, reward, _ = env.step(worker_id, task_id)
            total += reward
        assert total == pytest.approx(state.phi())

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_final_solution_validates(self, seed):
        from repro.smore import RatioSelectionRule, SMORESolver

        instance = random_instance(seed)
        planner = InsertionSolver()
        solution = SMORESolver(planner, RatioSelectionRule()).solve(instance)
        model = IncentiveModel(
            mu=instance.mu,
            base_rtt_fn=lambda w: planner.base_route(w).route_travel_time)
        assert solution.validate(model) == []
