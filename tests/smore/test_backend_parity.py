"""End-to-end backend parity: SMORE decoding/training across nn backends.

The fused executor's forward passes replay the reference arithmetic
bit-for-bit, so greedy decoding — argmax over identical logits — must
produce identical routes and objectives, and sampled decoding consumes
identical uniforms at identical cumulative probabilities.  Training
gradients come from handwritten flat backwards; parameters after a few
Adam steps agree to tight tolerance rather than bitwise.
"""

import numpy as np
import pytest

from repro import nn
from repro.datasets.instances import InstanceOptions, generate_instances
from repro.smore import (
    SMORESolver,
    TASNet,
    TASNetConfig,
    TASNetPolicy,
    TASNetTrainer,
    TrainingConfig,
)
from repro.tsptw import InsertionSolver

CONFIG = TASNetConfig(d_model=16, num_heads=2, num_layers=1, conv_channels=4)


@pytest.fixture(scope="module")
def instances():
    opts = InstanceOptions(task_density=0.04, budget=120.0)
    return generate_instances("delivery", 2, seed=21, options=opts)


def _solver(instances):
    grid = instances[0].coverage.grid
    net = TASNet(CONFIG, grid_nx=grid.nx, grid_ny=grid.ny,
                 rng=np.random.default_rng(0))
    return SMORESolver(InsertionSolver(), TASNetPolicy(net))


def _routes(solution):
    return sorted((wid, tuple(t.task_id for t in route.tasks))
                  for wid, route in solution.routes.items())


class TestSolveParity:
    def test_greedy_solve_bit_identical(self, instances):
        results = {}
        for name in ("reference", "fused"):
            solver = _solver(instances)
            with nn.use_backend(name):
                results[name] = [solver.solve(inst) for inst in instances]
        for ref, fused in zip(results["reference"], results["fused"]):
            assert _routes(ref) == _routes(fused)
            assert ref.objective == fused.objective

    def test_sampled_solve_bit_identical(self, instances):
        """Identical logits -> identical cdfs -> identical samples."""
        results = {}
        for name in ("reference", "fused"):
            solver = _solver(instances)
            with nn.use_backend(name):
                results[name] = [
                    solver.solve(inst, greedy=False,
                                 rng=np.random.default_rng(77 + i),
                                 num_samples=3)
                    for i, inst in enumerate(instances)]
        for ref, fused in zip(results["reference"], results["fused"]):
            assert _routes(ref) == _routes(fused)
            assert ref.objective == fused.objective

    def test_solve_many_bit_identical_across_backends(self, instances):
        results = {}
        for name in ("reference", "fused"):
            solver = _solver(instances)
            with nn.use_backend(name):
                results[name] = solver.solve_many(instances)
        for ref, fused in zip(results["reference"], results["fused"]):
            assert _routes(ref) == _routes(fused)


class TestTrainParity:
    @pytest.mark.parametrize("cross", [False, True],
                             ids=["per-instance", "cross-instance"])
    def test_train_iteration_params_close(self, instances, cross):
        trainers = {}
        metrics = {}
        for name in ("reference", "fused"):
            grid = instances[0].coverage.grid
            net = TASNet(CONFIG, grid_nx=grid.nx, grid_ny=grid.ny,
                         rng=np.random.default_rng(0))
            cfg = TrainingConfig(batch_size=2, rollouts_per_instance=2,
                                 cross_instance_batch=cross, seed=9)
            trainer = TASNetTrainer(TASNetPolicy(net), InsertionSolver(), cfg)
            with nn.use_backend(name):
                metrics[name] = [trainer.train_iteration(instances)
                                 for _ in range(2)]
            trainers[name] = trainer
        # Bit-identical forwards -> identical sampled actions -> equal
        # reward curves; backward formulas differ only in association.
        assert metrics["reference"] == metrics["fused"]
        ref_params = trainers["reference"].policy.parameters()
        fused_params = trainers["fused"].policy.parameters()
        for ref, fused in zip(ref_params, fused_params):
            np.testing.assert_allclose(fused.data, ref.data,
                                       rtol=1e-9, atol=1e-11)
