"""Tests for TASNet training: critic, REINFORCE, imitation pretraining."""

import numpy as np
import pytest

from repro.smore import (
    CriticNetwork,
    SelectionEnv,
    TASNetTrainer,
    TrainingConfig,
    critic_features,
    imitation_pretrain,
)
from repro.smore.critic import NUM_CRITIC_FEATURES


class TestCritic:
    def test_feature_vector_shape(self, small_instance, planner):
        env = SelectionEnv(small_instance, planner)
        state = env.reset()
        features = critic_features(small_instance, state)
        assert features.shape == (NUM_CRITIC_FEATURES,)
        assert np.all(np.isfinite(features))

    def test_value_is_scalar_tensor(self, small_instance, planner):
        env = SelectionEnv(small_instance, planner)
        state = env.reset()
        critic = CriticNetwork(rng=np.random.default_rng(0))
        value = critic.value(small_instance, state)
        assert value.shape == ()

    def test_critic_learns_constant_target(self):
        critic = CriticNetwork(rng=np.random.default_rng(0))
        from repro import nn

        optimizer = nn.Adam(critic.parameters(), lr=1e-2)
        features = np.random.default_rng(1).random(NUM_CRITIC_FEATURES)
        for _ in range(150):
            value = critic.value_from_features(features)
            loss = (value - 5.0) ** 2.0
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert critic.value_from_features(features).item() == pytest.approx(
            5.0, abs=0.3)


class TestTASNetTrainer:
    def test_train_iteration_returns_reward(self, policy, planner,
                                            small_instance):
        trainer = TASNetTrainer(policy, planner,
                                TrainingConfig(iterations=1, batch_size=1))
        reward = trainer.train_iteration([small_instance])
        assert reward >= 0.0
        assert len(trainer.history["reward"]) == 1

    def test_training_changes_parameters(self, policy, planner,
                                         small_instance):
        before = policy.net.state_dict()
        trainer = TASNetTrainer(policy, planner,
                                TrainingConfig(iterations=3, batch_size=1,
                                               lr=1e-2, seed=0))
        trainer.train([small_instance])
        after = policy.net.state_dict()
        assert any(not np.allclose(before[k], after[k]) for k in before)

    def test_evaluate_greedy(self, policy, planner, small_instance):
        trainer = TASNetTrainer(policy, planner, TrainingConfig())
        score = trainer.evaluate([small_instance])
        assert score >= 0.0

    def test_validation_restores_best(self, policy, planner, small_instance):
        trainer = TASNetTrainer(policy, planner,
                                TrainingConfig(iterations=4, batch_size=1,
                                               lr=5e-2, seed=0))
        trainer.train([small_instance], val_instances=[small_instance],
                      eval_every=2)
        # The recorded best score is achievable by the restored policy.
        best = trainer.history["val"][-1]
        assert trainer.evaluate([small_instance]) == pytest.approx(best, abs=1e-9)

    def test_critic_loss_recorded(self, policy, planner, small_instance):
        trainer = TASNetTrainer(policy, planner,
                                TrainingConfig(iterations=2, batch_size=1))
        trainer.train([small_instance])
        assert len(trainer.history["critic_loss"]) == 2


class TestTrainingTelemetry:
    """Per-epoch observability: history series and trace events."""

    def test_history_records_epoch_series(self, policy, planner,
                                          small_instance):
        trainer = TASNetTrainer(policy, planner,
                                TrainingConfig(iterations=2, batch_size=1))
        trainer.train([small_instance])
        for name in ("reward", "reward_std", "loss", "grad_norm", "entropy"):
            assert len(trainer.history.series(name)) == 2, name
            assert all(np.isfinite(v) for v in trainer.history[name])
        assert trainer.history.last("reward") == trainer.history["reward"][-1]

    def test_evaluate_records_eval_series(self, policy, planner,
                                          small_instance):
        trainer = TASNetTrainer(policy, planner, TrainingConfig())
        score = trainer.evaluate([small_instance])
        assert trainer.history.series("eval") == [score]

    def test_history_summary_covers_series(self, policy, planner,
                                           small_instance):
        trainer = TASNetTrainer(policy, planner,
                                TrainingConfig(iterations=1, batch_size=1))
        trainer.train([small_instance])
        text = trainer.history.summary()
        assert "reward: n=1" in text
        assert "entropy: n=1" in text

    def test_iteration_emits_trace_event(self, policy, planner,
                                         small_instance):
        from repro import obs
        from repro.obs import ListSink

        trainer = TASNetTrainer(policy, planner,
                                TrainingConfig(iterations=1, batch_size=1))
        sink = ListSink()
        with obs.tracing(sink=sink) as tracer:
            trainer.train_iteration([small_instance])
            counters = dict(tracer.metrics.counters)
        assert counters["train.iterations"] == 1
        events = [r for r in sink.records if r["type"] == "event"]
        assert events[0]["name"] == "train.iteration"
        assert events[0]["epoch"] == 1
        assert "span.train.rollouts.time" in tracer.metrics.timings


class TestBaselineVariants:
    def test_invalid_baseline_rejected(self):
        with pytest.raises(ValueError):
            TrainingConfig(baseline="magic")

    def test_rollout_baseline_trains(self, policy, planner, small_instance):
        trainer = TASNetTrainer(
            policy, planner,
            TrainingConfig(iterations=2, batch_size=1, baseline="rollout"))
        trainer.train([small_instance])
        assert len(trainer.history["reward"]) == 2
        # No critic regression happens under the rollout baseline.
        assert trainer.history["critic_loss"] == []

    def test_no_baseline_trains(self, policy, planner, small_instance):
        trainer = TASNetTrainer(
            policy, planner,
            TrainingConfig(iterations=2, batch_size=1, baseline="none"))
        trainer.train([small_instance])
        assert len(trainer.history["reward"]) == 2

    def test_rollout_value_matches_greedy_eval(self, policy, planner,
                                               small_instance):
        trainer = TASNetTrainer(
            policy, planner, TrainingConfig(baseline="rollout"))
        value = trainer._greedy_rollout_value(small_instance)
        assert value == pytest.approx(trainer.evaluate([small_instance]))


class TestCheckpointing:
    def test_roundtrip_restores_everything(self, policy, planner,
                                           small_instance, tmp_path):
        trainer = TASNetTrainer(policy, planner,
                                TrainingConfig(iterations=2, batch_size=1,
                                               lr=1e-2, seed=0))
        trainer.train([small_instance])
        path = tmp_path / "ckpt.npz"
        trainer.save_checkpoint(path)
        score_before = trainer.evaluate([small_instance])

        # Diverge, then restore.
        trainer.train([small_instance])
        trainer.load_checkpoint(path)
        assert trainer.evaluate([small_instance]) == pytest.approx(
            score_before)

    def test_optimizer_state_restored(self, policy, planner, small_instance,
                                      tmp_path):
        trainer = TASNetTrainer(policy, planner,
                                TrainingConfig(iterations=1, batch_size=1))
        trainer.train([small_instance])
        steps = trainer.optimizer._step_count
        path = tmp_path / "ckpt.npz"
        trainer.save_checkpoint(path)
        trainer.train([small_instance])
        trainer.load_checkpoint(path)
        assert trainer.optimizer._step_count == steps

    def test_early_stopping_halts(self, policy, planner, small_instance):
        trainer = TASNetTrainer(policy, planner,
                                TrainingConfig(iterations=30, batch_size=1,
                                               lr=0.0, seed=0))
        # Zero learning rate: validation never improves, so patience=1
        # stops after the second evaluation round.
        trainer.train([small_instance], val_instances=[small_instance],
                      eval_every=1, patience=1)
        assert len(trainer.history["reward"]) < 30


class TestImitationPretrain:
    def test_loss_history_length(self, policy, planner, small_instance):
        history = imitation_pretrain(policy, planner, [small_instance],
                                     iterations=3, seed=0)
        assert len(history) == 3
        assert all(np.isfinite(h) for h in history)

    def test_cloning_reduces_loss(self, policy, planner, small_instance):
        history = imitation_pretrain(policy, planner, [small_instance],
                                     iterations=12, lr=1e-2, explore=0.0,
                                     seed=0)
        assert np.mean(history[-3:]) < np.mean(history[:3])

    def test_changes_parameters(self, policy, planner, small_instance):
        before = policy.net.state_dict()
        imitation_pretrain(policy, planner, [small_instance], iterations=2,
                           seed=0)
        after = policy.net.state_dict()
        assert any(not np.allclose(before[k], after[k]) for k in before)

    def test_custom_teacher(self, policy, planner, small_instance):
        from repro.smore import GreedySelectionRule

        history = imitation_pretrain(policy, planner, [small_instance],
                                     iterations=2, seed=0,
                                     teacher=GreedySelectionRule())
        assert len(history) == 2
