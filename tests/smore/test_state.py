"""Tests for the assignment state M and the MDP state container."""

import pytest

from repro.core import IncentiveModel
from repro.smore import AssignmentState, CandidateTable, SelectionEnv


@pytest.fixture
def env(small_instance, planner):
    return SelectionEnv(small_instance, planner)


class TestAssignmentState:
    def test_initial_slots(self, small_instance):
        state = AssignmentState(small_instance.workers)
        for worker in small_instance.workers:
            slot = state[worker.worker_id]
            assert slot.assigned == []
            assert slot.route is None
            assert slot.incentive == 0.0
            assert slot.num_assigned == 0

    def test_iteration_covers_all_workers(self, small_instance):
        state = AssignmentState(small_instance.workers)
        ids = {slot.worker.worker_id for slot in state}
        assert ids == {w.worker_id for w in small_instance.workers}

    def test_apply_accumulates(self, small_instance, planner):
        incentives = IncentiveModel(mu=small_instance.mu)
        table = CandidateTable(planner, incentives)
        table.initialize(small_instance.workers, small_instance.sensing_tasks,
                         small_instance.budget)
        state = AssignmentState(small_instance.workers)
        worker_id = table.workers_with_candidates()[0]
        task_id, entry = next(iter(
            table.worker_candidates(worker_id).items()))
        task = small_instance.sensing_task(task_id)
        state.apply(worker_id, task, entry)
        slot = state[worker_id]
        assert slot.num_assigned == 1
        assert slot.incentive == pytest.approx(entry.delta_incentive)
        assert slot.route is entry.route

    def test_routes_and_incentives_exclude_idle_workers(self, small_instance):
        state = AssignmentState(small_instance.workers)
        assert state.routes() == {}
        assert state.incentives() == {}
        assert state.total_incentive() == 0.0


class TestSelectionState:
    def test_done_reflects_candidates(self, env):
        state = env.reset()
        assert state.done == state.candidates.empty

    def test_feasible_worker_ids_subset(self, env, small_instance):
        state = env.reset()
        ids = set(state.feasible_worker_ids())
        assert ids.issubset({w.worker_id for w in small_instance.workers})

    def test_phi_starts_at_zero(self, env):
        state = env.reset()
        assert state.phi() == 0.0

    def test_step_count_advances(self, env):
        state = env.reset()
        worker_id = state.feasible_worker_ids()[0]
        task_id = next(iter(state.candidates.worker_candidates(worker_id)))
        state, _, _ = env.step(worker_id, task_id)
        assert state.step_count == 1
